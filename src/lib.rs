//! # cashmere-repro — umbrella crate
//!
//! Re-exports the whole reproduction stack of *Cashmere: Heterogeneous
//! Many-Core Computing* (Hijma et al., IPDPS 2015) under one roof, for the
//! examples and cross-crate integration tests. See the individual crates:
//!
//! * [`des`] — deterministic discrete-event simulation engine
//! * [`hwdesc`] — MCL hardware-description hierarchy + HDL
//! * [`mcl`] — MCPL kernel language, SIMT interpreter, analyzer, cost model
//! * [`devsim`] — many-core device simulator
//! * [`netsim`] — cluster interconnect model
//! * [`satin`] — divide-and-conquer runtime (real threads + simulated cluster)
//! * [`cashmere`] — the paper's contribution: the integration
//! * [`apps`] — the four evaluation applications

pub use cashmere;
pub use cashmere_apps as apps;
pub use cashmere_des as des;
pub use cashmere_devsim as devsim;
pub use cashmere_hwdesc as hwdesc;
pub use cashmere_mcl as mcl;
pub use cashmere_netsim as netsim;
pub use cashmere_satin as satin;
