//! Heterogeneous execution: K-means on the paper's Table III cluster —
//! ten GTX480s, two C2050s, a GTX680, a Titan, an HD7970, seven K20s and
//! a Xeon Phi sharing a K20 node — with the two-phase device load balancer
//! spreading work across all of them.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use cashmere::{build_cluster, initialize, ClusterSpec, RuntimeConfig};
use cashmere_apps::kmeans::{run_iterations, KmeansApp, KmeansProblem};
use cashmere_apps::KernelSet;
use cashmere_netsim::NetConfig;
use cashmere_satin::SimConfig;
use std::collections::BTreeMap;

fn main() {
    let spec = ClusterSpec::paper_hetero_kmeans();
    println!(
        "cluster: {} nodes — {:?}",
        spec.nodes(),
        spec.distinct_devices()
    );

    // A scaled-down problem so the example finishes instantly; the paper's
    // full 268M-point run is `cargo run --release -p cashmere-bench --bin hetero`.
    let problem = KmeansProblem {
        n: 50_000_000,
        k: 4096,
        d: 4,
        iterations: 3,
    };
    let app = KmeansApp::phantom(problem, 800_000, 8);
    let centroids = app.centroids.clone();
    let registry = KmeansApp::registry(KernelSet::Optimized);

    // The initialization phase (paper Sec. III-B): the master broadcasts
    // run-time information, every node compiles the most specific kernel
    // version for its devices.
    let init = initialize(&registry, &spec, &NetConfig::qdr_infiniband());
    println!(
        "initialization: {} kernels compiled across the cluster, {} virtual time",
        init.kernels_compiled, init.duration
    );
    assert!(init.suggestions.is_empty(), "{:?}", init.suggestions);

    let mut cluster = build_cluster(
        app,
        registry,
        &spec,
        SimConfig {
            max_concurrent_leaves: 2,
            ..SimConfig::default()
        },
        RuntimeConfig::default(),
    )
    .expect("cluster builds");

    let (_, elapsed) = run_iterations(&mut cluster, &problem, &centroids, false);
    let gflops = problem.total_flops() / elapsed.as_secs_f64() / 1e9;

    println!(
        "\n{} iterations in {elapsed} of virtual time — {gflops:.0} GFLOPS\n",
        problem.iterations
    );

    // Which device kinds did the balancer use, and how much?
    let rt = cluster.leaf_runtime();
    let mut per_kind: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    for node in &rt.nodes {
        for dev in &node.devices {
            let e = per_kind.entry(dev.sim.level_name.clone()).or_default();
            e.0 += dev.jobs_run;
            e.1 += dev.sim.exec.busy_total().as_secs_f64();
        }
    }
    println!("device            jobs   kernel-busy");
    for (kind, (jobs, busy)) in &per_kind {
        println!("{kind:<16} {jobs:>5}   {busy:>8.2}s");
    }

    // The paper's Fig. 16 observation: on the K20+Phi node the balancer
    // sends roughly 7 jobs to the K20 for every 1 to the Phi.
    let phi_node = rt
        .nodes
        .iter()
        .find(|n| n.devices.len() == 2)
        .expect("the K20+Phi node exists");
    println!(
        "\nK20+Phi node split: K20 = {} jobs, Xeon Phi = {} jobs",
        phi_node.devices[0].jobs_run, phi_node.devices[1].jobs_run
    );

    let report = cluster.report();
    println!(
        "steals: {}/{} ok, network traffic {:.1} MB",
        report.steals_ok,
        report.steal_attempts,
        report.bytes_total() as f64 / 1e6
    );
}
