//! The real (non-simulated) Satin backend: Cilk-style fork–join on this
//! machine's cores, the programming model of the paper's Fig. 1 executed
//! natively.
//!
//! ```text
//! cargo run --release --example satin_threads
//! ```

use cashmere_satin::{join, parallel_reduce, SatinPool};
use std::time::Instant;

/// The classic spawnable function of Fig. 1: divide, recurse, sync, combine.
fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    // spawn f(n-1); spawn f(n-2); sync
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

/// A compute-heavy leaf for the reduction demo.
fn chunk_work(lo: u64, hi: u64) -> f64 {
    let mut acc = 0.0f64;
    for i in lo..hi {
        let x = (i as f64 + 0.5) * 1e-7;
        acc += (x * x + 1.0).sqrt().ln_1p();
    }
    acc
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host has {cores} core(s) available\n");

    // Divide-and-conquer fibonacci through spawn/sync.
    let pool = SatinPool::new(cores);
    let t0 = Instant::now();
    let f = pool.run(|| fib(30));
    println!("fib(30) = {f}  ({:?})", t0.elapsed());
    assert_eq!(f, 832_040);

    // A parallel reduction over 40M elements, one pool per thread count so
    // the scaling is visible on multi-core hosts.
    println!("\nparallel_reduce over 40M elements:");
    let mut base = None;
    for threads in [1, 2, 4, 8] {
        if threads > cores.max(1) * 2 {
            break;
        }
        let pool = SatinPool::new(threads);
        let t0 = Instant::now();
        let sum = pool.run(|| parallel_reduce(0, 40_000_000, 1 << 16, &chunk_work, &|a, b| a + b));
        let dt = t0.elapsed();
        let b = *base.get_or_insert(dt.as_secs_f64());
        println!(
            "  {threads} thread(s): sum = {sum:.6}  {dt:?}  (speedup {:.2}x)",
            b / dt.as_secs_f64()
        );
    }
    if cores == 1 {
        println!("\n(single-core host: no speedup possible, correctness still holds)");
    }
}
