//! Quickstart: multiply two matrices on a simulated two-node GPU cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This shows the whole Cashmere pipeline end to end:
//!
//! 1. write an MCPL kernel (here: the paper's Fig. 3 matmul, plus a tiled
//!    `gpu`-level version) and register it;
//! 2. describe the computation as divide-and-conquer (the `MatmulApp`
//!    splits the result matrix's rows, leaves expand into 8 device jobs);
//! 3. build a simulated cluster and run — kernels really execute through
//!    the MCL interpreter, so the numbers below are the actual product.

use cashmere::{build_cluster, ClusterSpec, RuntimeConfig};
use cashmere_apps::matmul::{assemble, MatmulApp, MatmulProblem};
use cashmere_apps::KernelSet;
use cashmere_satin::SimConfig;

fn main() {
    // A small real problem (the paper-scale 32768² run is in the bench
    // harness; it uses shape-only buffers).
    let problem = MatmulProblem {
        n: 128,
        m: 64,
        p: 96,
    };
    let app = MatmulApp::real(problem, 32, 8, 42);

    // CPU reference for verification.
    let data = MatmulApp::real(problem, 32, 8, 42);
    let reference = data
        .data_ref()
        .expect("real mode has data")
        .reference_rows(&problem, 0, problem.n);

    let root = app.row_job(0, problem.n);
    let mut cluster = build_cluster(
        app,
        MatmulApp::registry(KernelSet::Optimized),
        &ClusterSpec::homogeneous(2, "gtx480"),
        // Two management slots per node: surplus node jobs stay stealable,
        // so the second node actually participates.
        SimConfig {
            max_concurrent_leaves: 2,
            ..SimConfig::default()
        },
        RuntimeConfig {
            functional: true,
            ..RuntimeConfig::default()
        },
    )
    .expect("cluster builds");

    let segments = cluster.run_root(root);

    // Assemble and verify.
    let result = assemble(&segments, problem.n, problem.m);
    let max_err = result
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    let report = cluster.report();
    let runtime = cluster.leaf_runtime();
    println!(
        "matmul {}x{}x{} on 2 simulated GTX480 nodes",
        problem.n, problem.m, problem.p
    );
    println!("  result matches CPU reference, max abs error = {max_err:.2e}");
    println!("  virtual makespan     : {}", report.makespan);
    println!("  jobs created         : {}", report.jobs_created);
    println!("  device kernels run   : {}", runtime.kernels_run);
    println!(
        "  work steals          : {} ok / {} attempts",
        report.steals_ok, report.steal_attempts
    );
    println!("  network bytes        : {}", report.bytes_total());
    assert!(max_err < 1e-3);
    println!("ok");
}
