//! Fault tolerance, three ways:
//!
//! 1. Satin "recovers from nodes that are no longer responding" (paper
//!    Sec. II-A): a node is crashed in the middle of an n-body step; the
//!    lost subtrees are re-executed on the surviving nodes and the result
//!    is still exactly right.
//! 2. A node's only GPU dies mid-run: the Cashmere runtime drains the
//!    device and degrades that node's device jobs to the `leafCPU`
//!    fallback (the paper's try/catch pattern) — the answer survives.
//! 3. Lossy links: steal messages are dropped and delayed; timed-out
//!    steals retry with backoff, lost result returns are retransmitted,
//!    and the computation still completes exactly.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use cashmere::{build_cluster, ClusterSpec, RuntimeConfig};
use cashmere_apps::kmeans::{run_iterations, KmeansApp, KmeansProblem};
use cashmere_apps::nbody::{NbodyApp, NbodyProblem};
use cashmere_apps::{AppMode, KernelSet};
use cashmere_des::fault::{DeviceFailure, FaultPlan, LinkFault};
use cashmere_des::SimTime;
use cashmere_satin::{ClusterSim, SimConfig};
use std::sync::Arc;

/// Build the example's 4-node n-body cluster plus the reference positions
/// to verify against.
fn nbody_cluster(
    faults: FaultPlan,
) -> (
    ClusterSim<NbodyApp, impl cashmere_satin::LeafRuntime<NbodyApp>>,
    NbodyProblem,
    Vec<f64>,
) {
    let problem = NbodyProblem {
        n: 4_000,
        iterations: 1,
        dt: 0.01,
    };
    let app = Arc::new(NbodyApp::real(problem, 125, 1, 11));
    let (ref_pos, _) = app
        .state
        .read()
        .unwrap()
        .reference_step(0, problem.n, problem.dt);
    let runtime = app.satin_runtime();
    let app2 = NbodyApp {
        problem,
        mode: AppMode::Real,
        node_grain_bodies: 125,
        device_jobs: 1,
        cpu_model: cashmere_apps::CpuLeafModel::REGULAR,
        state: Arc::clone(&app.state),
    };
    let cluster = ClusterSim::new(
        app2,
        runtime,
        SimConfig {
            nodes: 4,
            seed: 3,
            faults,
            ..SimConfig::default()
        },
    );
    (cluster, problem, ref_pos)
}

fn max_error(segs: &[cashmere_apps::nbody::NbSeg], ref_pos: &[f64]) -> f64 {
    let mut got = Vec::new();
    for s in segs {
        got.extend_from_slice(s.pos.as_ref().expect("real mode"));
    }
    got.iter()
        .zip(ref_pos)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
}

/// Demo 1: a whole node dies; its subtrees are re-executed.
fn node_crash_demo() {
    let (mut cluster, problem, ref_pos) = nbody_cluster(FaultPlan::none());
    cluster
        .schedule_crash(2, SimTime::from_millis(2))
        .expect("valid crash request");

    let segs = cluster.run_root((0, problem.n));
    let max_err = max_error(&segs, &ref_pos);

    let r = cluster.report();
    println!(
        "n-body step for {} bodies on 4 nodes, node 2 crashed at 2ms:",
        problem.n
    );
    println!("  crashes observed     : {}", r.crashes);
    println!("  jobs re-executed     : {}", r.jobs_restarted);
    println!("  leaves run (total)   : {} (32 needed)", r.leaves);
    println!("  recovery time cost   : {}", r.recovery_time);
    println!("  virtual makespan     : {}", r.makespan);
    println!("  max abs error vs ref : {max_err:.2e}");
    assert_eq!(r.crashes, 1);
    assert!(r.jobs_restarted > 0, "the crash must have cost something");
    assert!(max_err < 1e-9, "results identical despite the failure");
    println!("ok — the computation survived the node failure\n");
}

/// Demo 2: a node's only GPU fails; its jobs degrade to `leafCPU`.
fn device_death_demo() {
    let problem = KmeansProblem {
        n: 2_000_000,
        k: 256,
        d: 4,
        iterations: 2,
    };
    let app = KmeansApp::phantom(problem, 100_000, 8);
    let centroids = app.centroids.clone();
    let registry = KmeansApp::registry(KernelSet::Optimized);
    let spec = ClusterSpec::homogeneous(2, "gtx480");
    let faults = FaultPlan {
        device_failures: vec![DeviceFailure {
            node: 1,
            device: 0,
            at: SimTime::from_micros(100),
        }],
        ..FaultPlan::default()
    };
    let mut cluster = build_cluster(
        app,
        registry,
        &spec,
        SimConfig {
            faults,
            ..SimConfig::default()
        },
        RuntimeConfig::default(),
    )
    .expect("cluster builds");

    let (_, elapsed) = run_iterations(&mut cluster, &problem, &centroids, false);
    let r = cluster.report();
    println!("k-means on 2 GTX480 nodes, node 1's GPU dies at 100µs:");
    println!("{}", r.failure_summary());
    println!("  virtual time: {elapsed}");
    assert_eq!(r.devices_lost, 1);
    assert!(
        r.fault_cpu_fallbacks > 0,
        "node 1's jobs must have degraded to the CPU leaf"
    );
    let rt = cluster.leaf_runtime();
    assert!(rt.nodes[1].devices[0].dead);
    println!("ok — the node degraded to leafCPU and kept contributing\n");
}

/// Demo 3: lossy links; steals time out and retry, results retransmit.
fn lossy_link_demo() {
    let faults = FaultPlan {
        link_faults: vec![LinkFault {
            src: None,
            dst: None,
            from: SimTime::ZERO,
            until: SimTime::from_millis(20),
            loss: 0.5,
            spike: SimTime::from_micros(300),
            spike_probability: 0.25,
        }],
        ..FaultPlan::default()
    };
    let (mut cluster, problem, ref_pos) = nbody_cluster(faults);
    let segs = cluster.run_root((0, problem.n));
    let max_err = max_error(&segs, &ref_pos);

    let r = cluster.report();
    println!("the same n-body step with every link 50% lossy for 20ms:");
    println!("{}", r.failure_summary());
    println!("  virtual makespan     : {}", r.makespan);
    println!("  max abs error vs ref : {max_err:.2e}");
    assert!(
        r.messages_lost > 0,
        "the lossy window must have dropped something"
    );
    assert!(
        max_err < 1e-9,
        "results identical despite the lossy network"
    );
    println!("ok — timeouts, backoff and retransmits rode out the bad network");
}

fn main() {
    node_crash_demo();
    device_death_demo();
    lossy_link_demo();
}
