//! Fault tolerance: Satin "recovers from nodes that are no longer
//! responding" (paper Sec. II-A). A node is crashed in the middle of an
//! n-body step; the lost subtrees are re-executed on the surviving nodes
//! and the result is still exactly right.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use cashmere_apps::nbody::{NbodyApp, NbodyProblem};
use cashmere_apps::AppMode;
use cashmere_des::SimTime;
use cashmere_satin::{ClusterSim, SimConfig};
use std::sync::Arc;

fn main() {
    let problem = NbodyProblem {
        n: 4_000,
        iterations: 1,
        dt: 0.01,
    };

    // Reference: the same step on an undisturbed single node.
    let app = Arc::new(NbodyApp::real(problem, 125, 1, 11));
    let (ref_pos, _) = app
        .state
        .read()
        .unwrap()
        .reference_step(0, problem.n, problem.dt);

    // A four-node Satin cluster; node 2 dies mid-run.
    let runtime = app.satin_runtime();
    let app2 = NbodyApp {
        problem,
        mode: AppMode::Real,
        node_grain_bodies: 125,
        device_jobs: 1,
        cpu_model: cashmere_apps::CpuLeafModel::REGULAR,
        state: Arc::clone(&app.state),
    };
    let mut cluster = ClusterSim::new(
        app2,
        runtime,
        SimConfig {
            nodes: 4,
            seed: 3,
            ..SimConfig::default()
        },
    );
    cluster.schedule_crash(2, SimTime::from_millis(2));

    let segs = cluster.run_root((0, problem.n));

    // Assemble and verify against the reference.
    let mut got = Vec::new();
    for s in &segs {
        got.extend_from_slice(s.pos.as_ref().expect("real mode"));
    }
    let max_err = got
        .iter()
        .zip(&ref_pos)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    let r = cluster.report();
    println!("n-body step for {} bodies on 4 nodes, node 2 crashed at 2ms:", problem.n);
    println!("  crashes observed     : {}", r.crashes);
    println!("  jobs re-executed     : {}", r.jobs_restarted);
    println!("  leaves run (total)   : {} (32 needed)", r.leaves);
    println!("  virtual makespan     : {}", r.makespan);
    println!("  max abs error vs ref : {max_err:.2e}");
    assert_eq!(r.crashes, 1);
    assert!(r.jobs_restarted > 0, "the crash must have cost something");
    assert!(max_err < 1e-9, "results identical despite the failure");
    println!("ok — the computation survived the node failure");
}
