//! Stepwise refinement for performance — the MCL methodology (paper
//! Sec. II-B) on the Fig. 3 matmul kernel.
//!
//! ```text
//! cargo run --release --example stepwise_refinement
//! ```
//!
//! 1. Compile the kernel at level `perfect`: the compiler has little
//!    hardware knowledge, so there is almost no feedback.
//! 2. Translate it (unoptimized) to level `gpu` and measure: now the
//!    analyzer knows about memory transactions and local memory, and
//!    reports the hazards.
//! 3. Apply what the feedback asks for (the tiled kernel): the feedback
//!    disappears and the modelled kernel time drops.
//! 4. Show the generated OpenCL and per-device launch geometry.

use cashmere_apps::matmul::{KERNEL_GPU, KERNEL_PERFECT};
use cashmere_devsim::{ExecMode, SimDevice};
use cashmere_hwdesc::{standard_hierarchy, DeviceKind};
use cashmere_mcl::analyze::analyze;
use cashmere_mcl::codegen::generate_opencl;
use cashmere_mcl::launch::LaunchConfig;
use cashmere_mcl::translate::translate_to;
use cashmere_mcl::value::{ArgValue, ArrayArg};
use cashmere_mcl::{compile, CheckedKernel, ElemTy};

fn measure(
    h: &cashmere_hwdesc::Hierarchy,
    ck: &CheckedKernel,
    dev: &SimDevice,
) -> (f64, Vec<String>) {
    let (n, m, p) = (64i64, 8192i64, 256i64);
    let args = vec![
        ArgValue::Int(n),
        ArgValue::Int(m),
        ArgValue::Int(p),
        ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n as u64, m as u64])),
        ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n as u64, p as u64])),
        ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[p as u64, m as u64])),
    ];
    let run = dev
        .run_kernel(h, ck, args, ExecMode::sampled())
        .expect("kernel runs");
    let cfg = LaunchConfig::for_device(ck, h, dev.level);
    let feedback = analyze(ck, h, &run.stats, cfg.class)
        .into_iter()
        .map(|f| f.to_string())
        .collect();
    let gflops = 2.0 * (n * m * p) as f64 / run.cost.total_s / 1e9;
    (gflops, feedback)
}

fn main() {
    let h = standard_hierarchy();
    let gtx480 = SimDevice::by_name(&h, "gtx480").expect("device exists");

    println!("== step 1: the Fig. 3 kernel at level `perfect` ==\n");
    let perfect = compile(KERNEL_PERFECT, &h).expect("perfect kernel compiles");
    let (g0, fb0) = measure(&h, &perfect, &gtx480);
    println!("modelled on a GTX480: {g0:.0} GFLOPS");
    if fb0.is_empty() {
        println!("feedback: none — `perfect` has idealized memory, nothing to report\n");
    } else {
        for f in &fb0 {
            println!("feedback: {f}");
        }
        println!();
    }

    println!("== step 2: translate (without optimizing) to level `gpu` ==\n");
    let translated = translate_to(&perfect, &h, "gpu").expect("translation succeeds");
    let (g1, fb1) = measure(&h, &translated, &gtx480);
    println!("modelled on a GTX480: {g1:.0} GFLOPS");
    println!("now the compiler knows the memory system and reports:");
    for f in &fb1 {
        println!("  - {f}");
    }
    println!();

    println!("== step 3: apply the feedback (tiled gpu kernel) ==\n");
    let tiled = compile(KERNEL_GPU, &h).expect("tiled kernel compiles");
    let (g2, fb2) = measure(&h, &tiled, &gtx480);
    println!(
        "modelled on a GTX480: {g2:.0} GFLOPS ({:.1}x the perfect version)",
        g2 / g0
    );
    if fb2.is_empty() {
        println!("feedback: none — refinement at this level is done\n");
    } else {
        for f in &fb2 {
            println!("remaining: {f}");
        }
        println!();
    }

    println!("== step 4: per-device launch geometry and OpenCL ==\n");
    for d in [DeviceKind::Gtx480, DeviceKind::Hd7970, DeviceKind::XeonPhi] {
        let cfg = LaunchConfig::for_device(&tiled, &h, d.level(&h));
        println!(
            "{:<16} group_size={:<4} warp={:<3} class={:?}",
            d.display_name(),
            cfg.group_size,
            cfg.warp_width,
            cfg.class
        );
    }
    println!("\ngenerated OpenCL for the tiled kernel:\n");
    println!("{}", generate_opencl(&tiled, &h));
}
