//! Deterministic parallel sweep executor.
//!
//! Every bench binary enumerates independent simulation points (app × series
//! × node-count, ablation variants, …). Each point owns its `Sim`, seed and
//! observability capture, so points can run on separate OS threads with no
//! shared state — the outer mirror of Cashmere's own two-level parallelism
//! (`enableManyCore()` inside a node, Satin-style distribution across
//! nodes).
//!
//! Determinism is preserved by construction: workers only *compute*; all
//! printing, table building and JSON writing happens after [`sweep`]
//! returns, iterating results in the declared point order. A sweep with
//! `--jobs 4` therefore produces byte-identical stdout and files to
//! `--jobs 1` (covered by `tests/sweep_determinism.rs`).

use cashmere_des::obs::prof;
use std::sync::mpsc;
use std::sync::Mutex;

/// Default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Strip `--jobs N` / `--jobs=N` from `args`, returning the worker count and
/// the remaining arguments. Without the flag, defaults to
/// [`default_jobs`]. `--jobs 0` is rejected.
pub fn jobs_from_args(args: Vec<String>) -> (usize, Vec<String>) {
    let mut jobs = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let value = if a == "--jobs" {
            let Some(v) = it.next() else {
                eprintln!("--jobs requires a worker count (e.g. --jobs 4)");
                std::process::exit(2);
            };
            Some(v)
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            Some(v.to_string())
        } else {
            rest.push(a);
            None
        };
        if let Some(v) = value {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs expects a positive integer, got `{v}`");
                    std::process::exit(2);
                }
            }
        }
    }
    (jobs.unwrap_or_else(default_jobs), rest)
}

/// Run `f` over every point, using up to `jobs` worker threads, and return
/// the results **in input order** regardless of completion order.
///
/// `jobs <= 1` (or a single point) degenerates to a plain sequential map on
/// the calling thread — no threads are spawned, so `--jobs 1` is exactly
/// the pre-parallel code path.
pub fn sweep<I, O, F>(points: Vec<I>, jobs: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = points.len();
    if jobs <= 1 || n <= 1 {
        // Sequential points profile straight into the calling thread's
        // collector, visiting points in declared order by definition.
        return points.into_iter().map(f).collect();
    }
    let profiling = prof::enabled();
    let queue = Mutex::new(points.into_iter().enumerate());
    let (tx, rx) = mpsc::channel::<(usize, O, Option<prof::ProfTree>)>();
    let mut slots: Vec<Option<(O, Option<prof::ProfTree>)>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            scope.spawn(move || loop {
                // Hold the lock only to pull the next point; the sim runs
                // lock-free.
                let next = queue.lock().unwrap().next();
                let Some((idx, point)) = next else { break };
                let out = f(point);
                // Drain this worker's context tree per point, so trees can
                // be merged in declared point order below — which worker
                // ran the point when never shows in the aggregate.
                let tree = profiling.then(prof::take_local);
                if tx.send((idx, out, tree)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Reassemble in declared order while workers are still running.
        for (idx, out, tree) in rx {
            slots[idx] = Some((out, tree));
        }
    });
    slots
        .into_iter()
        .map(|s| {
            let (out, tree) = s.expect("every sweep point produces a result");
            if let Some(tree) = tree {
                prof::absorb(tree);
            }
            out
        })
        .collect()
}

/// [`sweep`] over heterogeneous work items: each task is an independent
/// boxed closure. Useful when the points of one sweep don't share a type
/// (e.g. the ablation studies).
pub fn sweep_fns<O: Send>(tasks: Vec<Box<dyn FnOnce() -> O + Send>>, jobs: usize) -> Vec<O> {
    sweep(tasks, jobs, |t| t())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        for jobs in [1, 2, 4, 8] {
            let points: Vec<u64> = (0..100).collect();
            let out = sweep(points, jobs, |i| {
                // Make later points cheaper so completion order inverts.
                let spin = (100 - i) * 500;
                let mut acc = 0u64;
                for k in 0..spin {
                    acc = acc.wrapping_add(k ^ i);
                }
                std::hint::black_box(acc);
                i * 10
            });
            assert_eq!(
                out,
                (0..100).map(|i| i * 10).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |i: u64| i.wrapping_mul(2654435761).rotate_left(7);
        let seq = sweep((0..257).collect(), 1, f);
        let par = sweep((0..257).collect(), 4, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_point_sweeps_work() {
        let empty: Vec<u64> = sweep(Vec::new(), 4, |i| i);
        assert!(empty.is_empty());
        assert_eq!(sweep(vec![7u64], 4, |i| i + 1), vec![8]);
    }

    #[test]
    fn sweep_fns_runs_heterogeneous_tasks() {
        let tasks: Vec<Box<dyn FnOnce() -> String + Send>> = vec![
            Box::new(|| "a".to_string()),
            Box::new(|| format!("{}", 6 * 7)),
            Box::new(|| "c".repeat(3)),
        ];
        assert_eq!(sweep_fns(tasks, 2), vec!["a", "42", "ccc"]);
    }

    #[test]
    fn jobs_from_args_parses_both_forms() {
        let to = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (jobs, rest) = jobs_from_args(to(&["bin", "--jobs", "3", "kmeans"]));
        assert_eq!(jobs, 3);
        assert_eq!(rest, to(&["bin", "kmeans"]));
        let (jobs, rest) = jobs_from_args(to(&["bin", "--jobs=8"]));
        assert_eq!(jobs, 8);
        assert_eq!(rest, to(&["bin"]));
        let (jobs, _) = jobs_from_args(to(&["bin"]));
        assert_eq!(jobs, default_jobs());
    }
}
