//! Declarative experiment scenarios: one serializable spec drives the
//! whole stack.
//!
//! The paper's contributions are scenario-shaped — the Sec. III-B balancer
//! minimizes a "scenario" of per-device times, and the entire Sec. IV
//! evaluation is a matrix of cluster topologies × applications × device
//! mixes. [`Scenario`] is the single declarative surface for that matrix:
//! cluster topology with per-node device lists, application with problem
//! size and measurement series, seeds, balancer policy, Satin
//! steal/backoff knobs, the interconnect model, optional fault plan,
//! optional advisor perturbations, and observability outputs. Every field
//! serializes to a
//! canonical JSON form, so a spec can be stored, diffed, shipped in CI, and
//! — crucially — embedded as the `provenance` block of every report, making
//! any published number re-runnable byte-identically from its own output
//! file.
//!
//! [`run_scenario`] is the one driver behind every bench binary: it threads
//! the spec through `satin::SimConfig`, `cashmere::RuntimeConfig`,
//! `netsim::NetConfig`, and the DES fault/observability hooks. The bins are
//! thin presets that *construct* scenarios (see [`Scenario::paper`]) and
//! hand them to this driver and the sweep executor.
//!
//! The checked-in `bench/scenarios/` directory is the executable catalog of
//! supported configurations; `--scenario file.json` on any bench bin loads
//! and runs an arbitrary spec, `--dump-scenario` prints the fully-resolved
//! spec(s) without running (see [`cli`]).

pub mod cli;

use crate::advisor::PerturbSet;
use crate::obs::ObsCapture;
use crate::runners::{kernel_set, node_grain, AppId, RecoverySummary, RunOutcome, Series};
use cashmere::balancer::Policy;
use cashmere::{build_cluster, AuditEntry, ClusterSpec, RuntimeConfig};
use cashmere_apps::kmeans::{self, KmeansApp, KmeansProblem};
use cashmere_apps::matmul::{MatmulApp, MatmulProblem};
use cashmere_apps::nbody::{self, NbodyApp, NbodyProblem};
use cashmere_apps::raytracer::{RaytracerApp, RaytracerProblem};
use cashmere_apps::AppMode;
use cashmere_des::fault::FaultPlan;
use cashmere_des::obs::{prof, PerturbTarget};
use cashmere_des::SimTime;
use cashmere_hwdesc::DeviceKind;
use cashmere_mcl::InterpEngine;
use cashmere_netsim::NetConfig;
use cashmere_satin::{ClusterApp, ClusterSim, LeafRuntime, RunReport, SimConfig, StealKind};
use serde::{Content, DeError, Deserialize, Serialize};
use std::sync::Arc;

// The offline serde shim's derive supports no `#[serde(...)]` attributes,
// so the JSON forms below (internally-tagged `Problem`, defaulted fields,
// unknown-field rejection) are hand-written against its `Content` model.

fn skey(name: &str) -> Content {
    Content::Str(name.to_string())
}

fn map_get<'a>(m: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    m.iter()
        .find(|(k, _)| k.as_str() == Some(key))
        .map(|(_, v)| v)
}

/// Reject unknown (and non-string) keys so typos fail loudly instead of
/// silently running the default.
fn check_fields(m: &[(Content, Content)], known: &[&str], ty: &str) -> Result<(), DeError> {
    for (k, _) in m {
        let Some(k) = k.as_str() else {
            return Err(DeError::custom(format!("non-string key in `{ty}`")));
        };
        if !known.contains(&k) {
            return Err(DeError::custom(format!("unknown field `{k}` in `{ty}`")));
        }
    }
    Ok(())
}

fn req_field<T: Deserialize>(m: &[(Content, Content)], key: &str, ty: &str) -> Result<T, DeError> {
    match map_get(m, key) {
        Some(v) => T::from_content(v),
        None => Err(DeError::missing_field(key, ty)),
    }
}

/// Absent and `null` both mean "take the default".
fn opt_field<T: Deserialize>(m: &[(Content, Content)], key: &str) -> Result<Option<T>, DeError> {
    match map_get(m, key) {
        None | Some(Content::Null) => Ok(None),
        Some(v) => T::from_content(v).map(Some),
    }
}

/// Problem size of one scenario. `Paper` resolves to the application's
/// Sec. V measurement scale; the per-app variants pin explicit dimensions
/// (the ablation and Gantt experiments shrink or reshape the paper
/// problems).
///
/// JSON form is internally tagged: `{"kind": "paper"}`,
/// `{"kind": "kmeans", "n": …, "k": …, "d": …, "iterations": …}`, ….
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Problem {
    /// The application's paper-scale problem (Table II / Sec. V).
    #[default]
    Paper,
    Raytracer {
        width: u64,
        height: u64,
        samples: u64,
    },
    Matmul {
        n: u64,
        m: u64,
        p: u64,
    },
    Kmeans {
        n: u64,
        k: u64,
        d: u64,
        iterations: u32,
    },
    Nbody {
        bodies: u64,
        iterations: u32,
    },
}

impl Problem {
    /// Which application the explicit variants belong to; `None` for
    /// [`Problem::Paper`] (valid for every app).
    pub fn app(&self) -> Option<AppId> {
        match self {
            Problem::Paper => None,
            Problem::Raytracer { .. } => Some(AppId::Raytracer),
            Problem::Matmul { .. } => Some(AppId::Matmul),
            Problem::Kmeans { .. } => Some(AppId::Kmeans),
            Problem::Nbody { .. } => Some(AppId::Nbody),
        }
    }
}

impl Serialize for Problem {
    fn to_content(&self) -> Content {
        let kind = |k: &str| (skey("kind"), skey(k));
        match *self {
            Problem::Paper => Content::Map(vec![kind("paper")]),
            Problem::Raytracer {
                width,
                height,
                samples,
            } => Content::Map(vec![
                kind("raytracer"),
                (skey("width"), width.to_content()),
                (skey("height"), height.to_content()),
                (skey("samples"), samples.to_content()),
            ]),
            Problem::Matmul { n, m, p } => Content::Map(vec![
                kind("matmul"),
                (skey("n"), n.to_content()),
                (skey("m"), m.to_content()),
                (skey("p"), p.to_content()),
            ]),
            Problem::Kmeans {
                n,
                k,
                d,
                iterations,
            } => Content::Map(vec![
                kind("kmeans"),
                (skey("n"), n.to_content()),
                (skey("k"), k.to_content()),
                (skey("d"), d.to_content()),
                (skey("iterations"), iterations.to_content()),
            ]),
            Problem::Nbody { bodies, iterations } => Content::Map(vec![
                kind("nbody"),
                (skey("bodies"), bodies.to_content()),
                (skey("iterations"), iterations.to_content()),
            ]),
        }
    }
}

impl Deserialize for Problem {
    fn from_content(content: &Content) -> Result<Problem, DeError> {
        const TY: &str = "Problem";
        let m = content
            .as_map()
            .ok_or_else(|| DeError::expected("map", TY, content))?;
        let kind: String = req_field(m, "kind", TY)?;
        match kind.as_str() {
            "paper" => {
                check_fields(m, &["kind"], TY)?;
                Ok(Problem::Paper)
            }
            "raytracer" => {
                check_fields(m, &["kind", "width", "height", "samples"], TY)?;
                Ok(Problem::Raytracer {
                    width: req_field(m, "width", TY)?,
                    height: req_field(m, "height", TY)?,
                    samples: req_field(m, "samples", TY)?,
                })
            }
            "matmul" => {
                check_fields(m, &["kind", "n", "m", "p"], TY)?;
                Ok(Problem::Matmul {
                    n: req_field(m, "n", TY)?,
                    m: req_field(m, "m", TY)?,
                    p: req_field(m, "p", TY)?,
                })
            }
            "kmeans" => {
                check_fields(m, &["kind", "n", "k", "d", "iterations"], TY)?;
                Ok(Problem::Kmeans {
                    n: req_field(m, "n", TY)?,
                    k: req_field(m, "k", TY)?,
                    d: req_field(m, "d", TY)?,
                    iterations: req_field(m, "iterations", TY)?,
                })
            }
            "nbody" => {
                check_fields(m, &["kind", "bodies", "iterations"], TY)?;
                Ok(Problem::Nbody {
                    bodies: req_field(m, "bodies", TY)?,
                    iterations: req_field(m, "iterations", TY)?,
                })
            }
            other => Err(DeError::unknown_variant(other, TY)),
        }
    }
}

/// Observability outputs of one scenario. All off by default; a scenario
/// with outputs off runs untraced (zero observability overhead).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OutputSpec {
    /// Keep the span trace / metrics / audit capture in memory even when no
    /// file output is requested (the advisor and the Gantt renderer read
    /// the capture directly).
    pub capture: bool,
    /// Chrome trace-event output path (plus `<path>.audit.json`).
    pub trace: Option<String>,
    /// Print critical-path / metrics / audit summaries after the run.
    pub explain: bool,
    /// OpenMetrics text exposition output path.
    pub metrics_out: Option<String>,
    /// Flight-recorder cadence: sample cluster state into a probe series
    /// every this much virtual time (nanoseconds in JSON). Implies capture.
    pub probe_interval: Option<SimTime>,
    /// Probe series CSV output path (`.om` / `.trace.json` siblings are
    /// derived from it).
    pub probe_out: Option<String>,
    /// Provenance-bearing report path; `None` uses
    /// `bench/out/scenario_<name>.json`.
    pub report: Option<String>,
    /// Host self-profiler output stem: writes `<stem>.collapsed` (flamegraph
    /// input), `<stem>.json` and `<stem>.txt`. Profiles the *simulator host*,
    /// never the simulated cluster — observer-pure by construction, so it is
    /// deliberately excluded from [`OutputSpec::observe`].
    pub self_profile: Option<String>,
}

impl OutputSpec {
    /// Does the run need tracing enabled at all?
    pub fn observe(&self) -> bool {
        self.capture
            || self.trace.is_some()
            || self.explain
            || self.metrics_out.is_some()
            || self.probe_interval.is_some()
            || self.probe_out.is_some()
    }
}

impl Serialize for OutputSpec {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (skey("capture"), self.capture.to_content()),
            (skey("trace"), self.trace.to_content()),
            (skey("explain"), self.explain.to_content()),
            (skey("metrics_out"), self.metrics_out.to_content()),
            (skey("probe_interval"), self.probe_interval.to_content()),
            (skey("probe_out"), self.probe_out.to_content()),
            (skey("report"), self.report.to_content()),
            (skey("self_profile"), self.self_profile.to_content()),
        ])
    }
}

impl Deserialize for OutputSpec {
    fn from_content(content: &Content) -> Result<OutputSpec, DeError> {
        const TY: &str = "OutputSpec";
        let m = content
            .as_map()
            .ok_or_else(|| DeError::expected("map", TY, content))?;
        check_fields(
            m,
            &[
                "capture",
                "trace",
                "explain",
                "metrics_out",
                "probe_interval",
                "probe_out",
                "report",
                "self_profile",
            ],
            TY,
        )?;
        Ok(OutputSpec {
            capture: opt_field(m, "capture")?.unwrap_or_default(),
            trace: opt_field(m, "trace")?,
            explain: opt_field(m, "explain")?.unwrap_or_default(),
            metrics_out: opt_field(m, "metrics_out")?,
            probe_interval: opt_field(m, "probe_interval")?,
            probe_out: opt_field(m, "probe_out")?,
            report: opt_field(m, "report")?,
            self_profile: opt_field(m, "self_profile")?,
        })
    }
}

fn default_device_jobs() -> u64 {
    8
}
fn default_seed() -> u64 {
    42
}
fn default_cores() -> usize {
    8
}
fn default_job_overhead() -> SimTime {
    SimTime::from_micros(20)
}
/// Ibis/Satin's steal round trip on QDR IB is tens of microseconds; a
/// 50 µs retry keeps fast devices fed on heterogeneous clusters.
fn default_steal_retry() -> SimTime {
    SimTime::from_micros(50)
}
fn default_steal_retry_max() -> SimTime {
    SimTime::from_secs(10)
}
fn default_steal_timeout() -> SimTime {
    SimTime::from_millis(5)
}
fn default_net() -> NetConfig {
    NetConfig::qdr_infiniband()
}
fn default_overlap() -> bool {
    true
}
fn default_orphan_reuse() -> bool {
    true
}

/// The structured scheduling-policy spec: device placement (the Cashmere
/// balancer) plus steal-victim selection (the Satin engine). Two JSON
/// forms parse:
///
/// - the legacy bare string, e.g. `"scenario"` — placement only, steal at
///   the default (aliases like `greedy` normalize on load);
/// - the structured map, e.g.
///   `{"placement": "heft", "steal": "recent-victim"}` — either field may
///   be omitted and defaults.
///
/// The canonical form stays a fixed point for both: specs with the default
/// steal policy serialize as the compact string (so every pre-arena
/// artifact and catalog file remains canonical byte-for-byte), and specs
/// with a non-default steal policy serialize as the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicySpec {
    pub placement: Policy,
    pub steal: StealKind,
}

impl PolicySpec {
    pub fn new(placement: Policy, steal: StealKind) -> PolicySpec {
        PolicySpec { placement, steal }
    }

    /// A spec with the given placement policy and the default steal policy.
    pub fn placement(placement: Policy) -> PolicySpec {
        PolicySpec {
            placement,
            steal: StealKind::default(),
        }
    }

    /// Compact display label, `<placement>` or `<placement>+<steal>`.
    pub fn label(&self) -> String {
        if self.steal == StealKind::default() {
            self.placement.name().to_string()
        } else {
            format!("{}+{}", self.placement.name(), self.steal.name())
        }
    }
}

const POLICY_SPEC_FIELDS: [&str; 2] = ["placement", "steal"];

impl Serialize for PolicySpec {
    fn to_content(&self) -> Content {
        if self.steal == StealKind::default() {
            self.placement.to_content()
        } else {
            Content::Map(vec![
                (skey("placement"), self.placement.to_content()),
                (skey("steal"), self.steal.to_content()),
            ])
        }
    }
}

impl Deserialize for PolicySpec {
    fn from_content(content: &Content) -> Result<PolicySpec, DeError> {
        const TY: &str = "PolicySpec";
        match content {
            Content::Str(_) => Ok(PolicySpec::placement(Policy::from_content(content)?)),
            Content::Map(m) => {
                check_fields(m, &POLICY_SPEC_FIELDS, TY)?;
                Ok(PolicySpec {
                    placement: opt_field(m, "placement")?.unwrap_or_default(),
                    steal: opt_field(m, "steal")?.unwrap_or_default(),
                })
            }
            other => Err(DeError::expected("string or map", TY, other)),
        }
    }
}

/// One fully-described experiment. Serializable (canonical JSON via
/// [`Scenario::to_canonical_json`]); `name`, `app`, `series` and `nodes`
/// are required in JSON form, everything else defaults to the paper's
/// setup. Unknown fields are rejected, so typos fail loudly instead of
/// silently running the default.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Label; used in report paths (`bench/out/scenario_<name>.json`), so
    /// restricted to `[A-Za-z0-9._-]`.
    pub name: String,
    pub app: AppId,
    pub series: Series,
    /// Cluster topology: one device-name list per node (Table III style).
    /// Satin runs ignore the device lists but keep the node count.
    pub nodes: Vec<Vec<String>>,
    pub problem: Problem,
    /// Node-level job grain override; `None` resolves to the app's paper
    /// grain (≈1024 node jobs at paper scale).
    pub grain: Option<u64>,
    /// Device jobs per node-level leaf (the paper runs 8).
    pub device_jobs: u64,
    pub seed: u64,
    /// Scheduling policies: device placement (paper Sec. III-B default)
    /// and steal-victim selection (uniform-random default). Accepts the
    /// legacy bare-string form for placement-only specs.
    pub policy: PolicySpec,
    /// Kernel interpreter engine (tree-walker or register VM). Both produce
    /// bit-identical results — this is recorded so provenance captures which
    /// engine executed the run, and overridable via `--interp` like
    /// `--policy`.
    pub interp: InterpEngine,
    pub cores_per_node: usize,
    /// Concurrent node-level leaves per node; `None` resolves to the series
    /// default (Satin: one per core, Cashmere: 2 so transfers of one job
    /// set overlap kernels of the other — paper Sec. II-C3).
    pub leaf_slots: Option<usize>,
    /// CPU time to create/manage one job.
    pub job_overhead: SimTime,
    /// Back-off after an unsuccessful steal attempt (doubles up to
    /// `steal_retry_max`).
    pub steal_retry: SimTime,
    pub steal_retry_max: SimTime,
    /// Steal round-trip timeout (armed only under an active fault plan).
    pub steal_timeout: SimTime,
    /// Interconnect model (default: DAS-4's QDR InfiniBand).
    pub net: NetConfig,
    /// Overlap PCIe transfers with kernel execution (paper Sec. II-C3).
    pub overlap: bool,
    /// Injected faults, replayed deterministically from the seed.
    pub faults: Option<FaultPlan>,
    /// Satin-style orphan-result reuse on crash recovery (default on).
    /// `false` is the ablation: every orphaned result is re-executed.
    pub orphan_reuse: bool,
    /// Advisor perturbations applied to the whole re-execution
    /// (virtual-speed what-ifs).
    pub perturb: Option<PerturbSet>,
    pub outputs: OutputSpec,
}

/// Field names of the JSON form, in canonical (declaration) order.
const SCENARIO_FIELDS: [&str; 22] = [
    "name",
    "app",
    "series",
    "nodes",
    "problem",
    "grain",
    "device_jobs",
    "seed",
    "policy",
    "interp",
    "cores_per_node",
    "leaf_slots",
    "job_overhead",
    "steal_retry",
    "steal_retry_max",
    "steal_timeout",
    "net",
    "overlap",
    "faults",
    "orphan_reuse",
    "perturb",
    "outputs",
];

impl Serialize for Scenario {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (skey("name"), self.name.to_content()),
            (skey("app"), self.app.to_content()),
            (skey("series"), self.series.to_content()),
            (skey("nodes"), self.nodes.to_content()),
            (skey("problem"), self.problem.to_content()),
            (skey("grain"), self.grain.to_content()),
            (skey("device_jobs"), self.device_jobs.to_content()),
            (skey("seed"), self.seed.to_content()),
            (skey("policy"), self.policy.to_content()),
            (skey("interp"), self.interp.to_content()),
            (skey("cores_per_node"), self.cores_per_node.to_content()),
            (skey("leaf_slots"), self.leaf_slots.to_content()),
            (skey("job_overhead"), self.job_overhead.to_content()),
            (skey("steal_retry"), self.steal_retry.to_content()),
            (skey("steal_retry_max"), self.steal_retry_max.to_content()),
            (skey("steal_timeout"), self.steal_timeout.to_content()),
            (skey("net"), self.net.to_content()),
            (skey("overlap"), self.overlap.to_content()),
            (skey("faults"), self.faults.to_content()),
            (skey("orphan_reuse"), self.orphan_reuse.to_content()),
            (skey("perturb"), self.perturb.to_content()),
            (skey("outputs"), self.outputs.to_content()),
        ])
    }
}

impl Deserialize for Scenario {
    fn from_content(content: &Content) -> Result<Scenario, DeError> {
        const TY: &str = "Scenario";
        let m = content
            .as_map()
            .ok_or_else(|| DeError::expected("map", TY, content))?;
        check_fields(m, &SCENARIO_FIELDS, TY)?;
        Ok(Scenario {
            name: req_field(m, "name", TY)?,
            app: req_field(m, "app", TY)?,
            series: req_field(m, "series", TY)?,
            nodes: req_field(m, "nodes", TY)?,
            problem: opt_field(m, "problem")?.unwrap_or_default(),
            grain: opt_field(m, "grain")?,
            device_jobs: opt_field(m, "device_jobs")?.unwrap_or_else(default_device_jobs),
            seed: opt_field(m, "seed")?.unwrap_or_else(default_seed),
            policy: opt_field(m, "policy")?.unwrap_or_default(),
            interp: opt_field(m, "interp")?.unwrap_or_default(),
            cores_per_node: opt_field(m, "cores_per_node")?.unwrap_or_else(default_cores),
            leaf_slots: opt_field(m, "leaf_slots")?,
            job_overhead: opt_field(m, "job_overhead")?.unwrap_or_else(default_job_overhead),
            steal_retry: opt_field(m, "steal_retry")?.unwrap_or_else(default_steal_retry),
            steal_retry_max: opt_field(m, "steal_retry_max")?
                .unwrap_or_else(default_steal_retry_max),
            steal_timeout: opt_field(m, "steal_timeout")?.unwrap_or_else(default_steal_timeout),
            net: opt_field(m, "net")?.unwrap_or_else(default_net),
            overlap: opt_field(m, "overlap")?.unwrap_or_else(default_overlap),
            faults: opt_field(m, "faults")?,
            orphan_reuse: opt_field(m, "orphan_reuse")?.unwrap_or_else(default_orphan_reuse),
            perturb: opt_field(m, "perturb")?,
            outputs: opt_field(m, "outputs")?.unwrap_or_default(),
        })
    }
}

impl Scenario {
    /// A scenario with every knob at the paper default.
    pub fn new(
        name: impl Into<String>,
        app: AppId,
        series: Series,
        cluster: &ClusterSpec,
    ) -> Scenario {
        Scenario {
            name: name.into(),
            app,
            series,
            nodes: cluster.node_devices.clone(),
            problem: Problem::default(),
            grain: None,
            device_jobs: default_device_jobs(),
            seed: default_seed(),
            policy: PolicySpec::default(),
            interp: InterpEngine::default(),
            cores_per_node: default_cores(),
            leaf_slots: None,
            job_overhead: default_job_overhead(),
            steal_retry: default_steal_retry(),
            steal_retry_max: default_steal_retry_max(),
            steal_timeout: default_steal_timeout(),
            net: default_net(),
            overlap: default_overlap(),
            faults: None,
            orphan_reuse: default_orphan_reuse(),
            perturb: None,
            outputs: OutputSpec::default(),
        }
    }

    /// The paper-scale preset every figure/table run starts from:
    /// `<app>-<series>-<N>n`, paper problem, paper knobs.
    pub fn paper(app: AppId, series: Series, cluster: &ClusterSpec, seed: u64) -> Scenario {
        let name = format!(
            "{}-{}-{}n",
            app.name().replace('-', ""),
            series.name(),
            cluster.nodes()
        );
        Scenario::new(name, app, series, cluster).with_seed(seed)
    }

    pub fn named(mut self, name: impl Into<String>) -> Scenario {
        self.name = name.into();
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    pub fn with_problem(mut self, problem: Problem) -> Scenario {
        self.problem = problem;
        self
    }

    pub fn with_grain(mut self, grain: u64) -> Scenario {
        self.grain = Some(grain);
        self
    }

    /// Set the placement policy (the steal policy is untouched).
    pub fn with_policy(mut self, policy: Policy) -> Scenario {
        self.policy.placement = policy;
        self
    }

    /// Set the steal-victim policy (the placement policy is untouched).
    pub fn with_steal(mut self, steal: StealKind) -> Scenario {
        self.policy.steal = steal;
        self
    }

    pub fn with_interp(mut self, interp: InterpEngine) -> Scenario {
        self.interp = interp;
        self
    }

    pub fn with_leaf_slots(mut self, slots: usize) -> Scenario {
        self.leaf_slots = Some(slots);
        self
    }

    pub fn with_net(mut self, net: NetConfig) -> Scenario {
        self.net = net;
        self
    }

    pub fn with_overlap(mut self, overlap: bool) -> Scenario {
        self.overlap = overlap;
        self
    }

    pub fn with_faults(mut self, faults: FaultPlan) -> Scenario {
        self.faults = if faults.is_empty() {
            None
        } else {
            Some(faults)
        };
        self
    }

    /// Drop any declared fault plan (the tournament's fault-free arm).
    pub fn with_faults_cleared(mut self) -> Scenario {
        self.faults = None;
        self
    }

    pub fn with_orphan_reuse(mut self, on: bool) -> Scenario {
        self.orphan_reuse = on;
        self
    }

    pub fn with_perturb(mut self, perturb: PerturbSet) -> Scenario {
        self.perturb = if perturb.items.is_empty() {
            None
        } else {
            Some(perturb)
        };
        self
    }

    /// Keep the observability capture in memory after the run.
    pub fn with_capture(mut self, capture: bool) -> Scenario {
        self.outputs.capture = capture;
        self
    }

    /// Run the flight recorder at the given cadence (implies capture).
    pub fn with_probe(mut self, interval: SimTime) -> Scenario {
        self.outputs.probe_interval = Some(interval);
        self
    }

    /// The scenario as embedded in provenance blocks: outputs stripped,
    /// because the generating invocation's observability flags are not part
    /// of the experiment (and must not change artifact bytes).
    pub fn provenance_form(&self) -> Scenario {
        Scenario {
            outputs: OutputSpec::default(),
            ..self.clone()
        }
    }

    /// The cluster topology as the runtime's [`ClusterSpec`].
    pub fn cluster(&self) -> ClusterSpec {
        ClusterSpec {
            node_devices: self.nodes.clone(),
        }
    }

    /// Does the run need tracing enabled?
    pub fn observe(&self) -> bool {
        self.outputs.observe()
    }

    /// Canonical JSON form: pretty-printed with every field present in
    /// declaration order, trailing newline. Parsing and re-serializing a
    /// canonical spec is byte-identical — the property the provenance
    /// machinery rests on.
    pub fn to_canonical_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("scenario serializes");
        s.push('\n');
        s
    }

    /// Parse a scenario from JSON (canonical or terse — omitted optional
    /// fields take the paper defaults).
    pub fn from_json(text: &str) -> Result<Scenario, String> {
        serde_json::from_str(text).map_err(|e| format!("cannot parse scenario: {e}"))
    }

    /// Load and parse a scenario file.
    pub fn load(path: &str) -> Result<Scenario, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Scenario::from_json(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// Cross-field validation: everything a spec can get wrong *before*
    /// building a cluster — unknown device names, fault plans that target
    /// absent nodes, perturbation selectors that name devices the cluster
    /// does not carry, degenerate problem sizes.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        {
            return Err(format!(
                "scenario name `{}` must match [A-Za-z0-9._-]+ (it names the report file)",
                self.name
            ));
        }
        if self.nodes.is_empty() {
            return Err("cluster has no nodes".into());
        }
        for (i, devs) in self.nodes.iter().enumerate() {
            if devs.is_empty() && self.series != Series::Satin {
                return Err(format!(
                    "node {i} has no devices (Cashmere series need at least one per node)"
                ));
            }
            for d in devs {
                if DeviceKind::from_level_name(d).is_none() {
                    return Err(format!(
                        "node {i} names unknown device `{d}` (known: {})",
                        DeviceKind::ALL
                            .iter()
                            .map(|k| k.level_name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
            }
        }
        if let Some(app) = self.problem.app() {
            if app != self.app {
                return Err(format!(
                    "problem is for {} but the scenario runs {}",
                    app.name(),
                    self.app.name()
                ));
            }
        }
        match self.problem {
            Problem::Paper => {}
            Problem::Raytracer {
                width,
                height,
                samples,
            } => {
                if width == 0 || height == 0 || samples == 0 {
                    return Err("raytracer problem dimensions must be positive".into());
                }
            }
            Problem::Matmul { n, m, p } => {
                if n == 0 || m == 0 || p == 0 {
                    return Err("matmul problem dimensions must be positive".into());
                }
            }
            Problem::Kmeans {
                n,
                k,
                d,
                iterations,
            } => {
                if n == 0 || k == 0 || d == 0 || iterations == 0 {
                    return Err("k-means problem dimensions must be positive".into());
                }
            }
            Problem::Nbody { bodies, iterations } => {
                if bodies == 0 || iterations == 0 {
                    return Err("n-body problem dimensions must be positive".into());
                }
            }
        }
        if self.grain == Some(0) {
            return Err("grain must be positive".into());
        }
        if self.device_jobs == 0 {
            return Err("device_jobs must be positive".into());
        }
        if self.cores_per_node == 0 {
            return Err("cores_per_node must be positive".into());
        }
        if self.leaf_slots == Some(0) {
            return Err("leaf_slots must be positive".into());
        }
        if !(self.net.bandwidth_gbs.is_finite() && self.net.bandwidth_gbs > 0.0) {
            return Err(format!(
                "network bandwidth must be positive and finite, got {}",
                self.net.bandwidth_gbs
            ));
        }
        if !(self.net.cpu_contention.is_finite() && self.net.cpu_contention >= 0.0) {
            return Err("network cpu_contention must be finite and non-negative".into());
        }
        if let Some(plan) = &self.faults {
            plan.validate(self.nodes.len())
                .map_err(|e| format!("fault plan: {e}"))?;
        }
        if self.outputs.probe_interval == Some(SimTime::ZERO) {
            return Err("outputs.probe_interval must be positive".into());
        }
        if let Some(set) = &self.perturb {
            for p in &set.items {
                if !(p.factor.is_finite() && p.factor > 0.0) {
                    return Err(format!(
                        "perturbation `{}` has a non-positive factor",
                        p.spec()
                    ));
                }
                let device_scoped = matches!(
                    p.target,
                    PerturbTarget::DeviceSpeed
                        | PerturbTarget::PcieLink
                        | PerturbTarget::BalancerTable
                );
                if device_scoped && p.selector != "*" {
                    if DeviceKind::from_level_name(&p.selector).is_none() {
                        return Err(format!(
                            "perturbation `{}` names unknown device `{}`",
                            p.spec(),
                            p.selector
                        ));
                    }
                    if !self.nodes.iter().flatten().any(|d| p.matches_device(d)) {
                        return Err(format!(
                            "perturbation `{}` selects device `{}` but no node carries one",
                            p.spec(),
                            p.selector
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The engine configuration this scenario resolves to. `nodes` is left
    /// at 1 — the Satin path overrides it with the cluster size and
    /// `build_cluster` derives it from the spec.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig {
            cores_per_node: self.cores_per_node,
            net: self.net,
            seed: self.seed,
            job_overhead: self.job_overhead,
            steal_retry: self.steal_retry,
            steal_retry_max: self.steal_retry_max,
            steal_timeout: self.steal_timeout,
            // Cashmere pipelines two sets of device jobs per node (kernels
            // of one overlap transfers of the other); Satin leaves are
            // one-core jobs, so every core may run one.
            max_concurrent_leaves: self.leaf_slots.unwrap_or(match self.series {
                Series::Satin => usize::MAX,
                _ => 2,
            }),
            orphan_reuse: self.orphan_reuse,
            trace: self.observe(),
            probe_interval: self.outputs.probe_interval,
            steal: self.policy.steal,
            ..SimConfig::default()
        };
        // Fault plans that do not validate for this cluster size (e.g.
        // crashing a node the spec does not have) are skipped with a note,
        // so one plan can ride through a whole node sweep.
        if let Some(plan) = &self.faults {
            match plan.validate(self.nodes.len()) {
                Ok(()) => cfg.faults = plan.clone(),
                Err(e) => {
                    if !plan.is_empty() {
                        eprintln!(
                            "note: fault plan skipped for the {}-node {} run: {e}",
                            self.nodes.len(),
                            self.series.name()
                        );
                    }
                }
            }
        }
        if let Some(p) = &self.perturb {
            p.apply_sim_config(&mut cfg);
        }
        cfg
    }

    /// The Cashmere runtime configuration this scenario resolves to.
    pub fn runtime_config(&self) -> RuntimeConfig {
        RuntimeConfig {
            balancer_policy: self.policy.placement,
            overlap: self.overlap,
            ..RuntimeConfig::default()
        }
    }

    /// Node-level grain: the explicit override or the app's paper grain.
    pub fn node_grain(&self) -> u64 {
        self.grain.unwrap_or_else(|| node_grain(self.app))
    }
}

/// Everything one scenario run produces: the measured outcome and, when the
/// scenario's outputs ask for observability, the capture.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    pub outcome: RunOutcome,
    pub cap: Option<ObsCapture>,
}

/// A provenance-bearing report: the resolved scenario next to its measured
/// outcome. Any published number can be re-run byte-identically from this
/// block alone ([`ScenarioReport::rerun`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    pub schema: u32,
    /// The fully-resolved scenario that produced `outcome`.
    pub provenance: Scenario,
    pub outcome: RunOutcome,
}

impl ScenarioReport {
    pub fn new(scenario: &Scenario, outcome: RunOutcome) -> ScenarioReport {
        ScenarioReport {
            schema: 1,
            provenance: scenario.provenance_form(),
            outcome,
        }
    }

    pub fn to_canonical_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }

    pub fn from_json(text: &str) -> Result<ScenarioReport, String> {
        serde_json::from_str(text).map_err(|e| format!("cannot parse scenario report: {e}"))
    }

    /// Re-execute the embedded provenance scenario. The returned report
    /// serializes byte-identically to `self` — the reproducibility
    /// guarantee the scenario layer exists for.
    pub fn rerun(&self) -> ScenarioReport {
        ScenarioReport::new(&self.provenance, run_scenario(&self.provenance).outcome)
    }
}

/// Failure accounting of one run: the human-readable summary plus the
/// structured recovery counters. Both `None` for fault-free runs, keeping
/// their artifact bytes unchanged.
fn failures_of(r: &RunReport) -> (Option<String>, Option<RecoverySummary>) {
    if !r.saw_failures() {
        return (None, None);
    }
    (
        Some(r.failure_summary()),
        Some(RecoverySummary::from_report(r)),
    )
}

/// Clone the observability exports (span trace, metrics, audit log, run
/// report, probe series) out of a finished run, when observing.
fn capture_of<A: ClusterApp, L: LeafRuntime<A>>(
    on: bool,
    cs: &ClusterSim<A, L>,
    audit: Vec<AuditEntry>,
) -> Option<ObsCapture> {
    on.then(|| ObsCapture {
        trace: cs.trace().clone(),
        metrics: cs.metrics().clone(),
        audit,
        report: cs.report().clone(),
        probes: cs.probe_series().cloned(),
        // Finalize against the run end, not just the last recorded span:
        // time-weighted gauge means must include the closing segment
        // between their last update and the finish.
        horizon: cs.trace().horizon().max(cs.report().total_time),
    })
}

/// Run one scenario end to end — the single driver behind every bench bin.
///
/// Deterministic: two calls with equal scenarios produce identical
/// outcomes (and identical captures), which is what makes the embedded
/// provenance block of a report re-runnable byte-for-byte at any `--jobs`.
pub fn run_scenario(sc: &Scenario) -> ScenarioRun {
    let _prof = prof::scope("scenario::run");
    // Both engines are bit-identical (CI proves it), so setting the
    // process-wide default per run cannot change any outcome — it only
    // selects which interpreter the wall time goes to.
    cashmere_mcl::set_default_engine(sc.interp);
    let observe = sc.observe();
    let cfg = sc.sim_config();
    let rt_cfg = sc.runtime_config();
    let spec = sc.cluster();
    let grain = sc.node_grain();
    // Satin: leaves sized for a single core (8× more jobs per node).
    let satin_grain = (grain / 8).max(1);
    let device_jobs = sc.device_jobs;
    let perturb = sc.perturb.as_ref();

    fn perturb_runtime<A: ClusterApp>(
        perturb: Option<&PerturbSet>,
        cs: &mut ClusterSim<A, cashmere::CashmereLeafRuntime>,
    ) where
        cashmere::CashmereLeafRuntime: LeafRuntime<A>,
    {
        if let Some(p) = perturb {
            p.apply_runtime(cs.leaf_runtime_mut());
        }
    }

    let (makespan_s, total_flops, kernels, fallbacks, steals, bytes, failures, cap) = match sc.app {
        AppId::Raytracer => {
            let pr = match sc.problem {
                Problem::Raytracer {
                    width,
                    height,
                    samples,
                } => RaytracerProblem {
                    width,
                    height,
                    samples,
                    seed: 1,
                },
                _ => RaytracerProblem::paper(),
            };
            match sc.series {
                Series::Satin => {
                    let a = Arc::new(RaytracerApp::new(pr, AppMode::Phantom, satin_grain, 1));
                    let rt = a.satin_runtime();
                    let app2 = RaytracerApp::new(pr, AppMode::Phantom, satin_grain, 1);
                    let mut cs = ClusterSim::new(
                        app2,
                        rt,
                        SimConfig {
                            nodes: spec.nodes(),
                            ..cfg
                        },
                    );
                    let _ = cs.run_root((0, pr.pixels()));
                    let r = cs.report();
                    (
                        r.makespan.as_secs_f64(),
                        pr.flops(),
                        0,
                        0,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, Vec::new()),
                    )
                }
                _ => {
                    let a = RaytracerApp::new(pr, AppMode::Phantom, grain, device_jobs);
                    let reg = RaytracerApp::registry(kernel_set(sc.series));
                    let mut cs = build_cluster(a, reg, &spec, cfg, rt_cfg).unwrap();
                    perturb_runtime(perturb, &mut cs);
                    let _ = cs.run_root((0, pr.pixels()));
                    let (r, l) = (cs.report(), cs.leaf_runtime());
                    (
                        r.makespan.as_secs_f64(),
                        pr.flops(),
                        l.kernels_run,
                        l.cpu_fallbacks,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, l.audit.clone()),
                    )
                }
            }
        }
        AppId::Matmul => {
            let pr = match sc.problem {
                Problem::Matmul { n, m, p } => MatmulProblem { n, m, p },
                _ => MatmulProblem::paper(),
            };
            match sc.series {
                Series::Satin => {
                    let a = MatmulApp::phantom(pr, satin_grain, 1);
                    let root = a.row_job(0, pr.n);
                    let rt = a.satin_runtime();
                    let mut cs = ClusterSim::new(
                        a,
                        rt,
                        SimConfig {
                            nodes: spec.nodes(),
                            ..cfg
                        },
                    );
                    // Strong scaling includes distributing B to every node —
                    // the O(n²) traffic that makes matmul communication-heavy.
                    let start = cs.now();
                    cs.broadcast(pr.p * pr.m * 4);
                    let bcast = (cs.now() - start).as_secs_f64();
                    let _ = cs.run_root(root);
                    let r = cs.report();
                    (
                        bcast + r.makespan.as_secs_f64(),
                        pr.flops(),
                        0,
                        0,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, Vec::new()),
                    )
                }
                _ => {
                    let a = MatmulApp::phantom(pr, grain, device_jobs);
                    let root = a.row_job(0, pr.n);
                    let reg = MatmulApp::registry(kernel_set(sc.series));
                    let mut cs = build_cluster(a, reg, &spec, cfg, rt_cfg).unwrap();
                    perturb_runtime(perturb, &mut cs);
                    let start = cs.now();
                    cs.broadcast(pr.p * pr.m * 4);
                    let bcast = (cs.now() - start).as_secs_f64();
                    let _ = cs.run_root(root);
                    let (r, l) = (cs.report(), cs.leaf_runtime());
                    (
                        bcast + r.makespan.as_secs_f64(),
                        pr.flops(),
                        l.kernels_run,
                        l.cpu_fallbacks,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, l.audit.clone()),
                    )
                }
            }
        }
        AppId::Kmeans => {
            let pr = match sc.problem {
                Problem::Kmeans {
                    n,
                    k,
                    d,
                    iterations,
                } => KmeansProblem {
                    n,
                    k,
                    d,
                    iterations,
                },
                _ => KmeansProblem::paper(),
            };
            match sc.series {
                Series::Satin => {
                    let a = Arc::new(KmeansApp::phantom(pr, satin_grain, 1));
                    let rt = a.satin_runtime();
                    let app2 = KmeansApp::phantom(pr, satin_grain, 1);
                    let cents = app2.centroids.clone();
                    let mut cs = ClusterSim::new(
                        app2,
                        rt,
                        SimConfig {
                            nodes: spec.nodes(),
                            ..cfg
                        },
                    );
                    let (_, elapsed) = kmeans::run_iterations(&mut cs, &pr, &cents, false);
                    let r = cs.report();
                    (
                        elapsed.as_secs_f64(),
                        pr.total_flops(),
                        0,
                        0,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, Vec::new()),
                    )
                }
                _ => {
                    let a = KmeansApp::phantom(pr, grain, device_jobs);
                    let cents = a.centroids.clone();
                    let reg = KmeansApp::registry(kernel_set(sc.series));
                    let mut cs = build_cluster(a, reg, &spec, cfg, rt_cfg).unwrap();
                    perturb_runtime(perturb, &mut cs);
                    let (_, elapsed) = kmeans::run_iterations(&mut cs, &pr, &cents, false);
                    let (r, l) = (cs.report(), cs.leaf_runtime());
                    (
                        elapsed.as_secs_f64(),
                        pr.total_flops(),
                        l.kernels_run,
                        l.cpu_fallbacks,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, l.audit.clone()),
                    )
                }
            }
        }
        AppId::Nbody => {
            let pr = match sc.problem {
                Problem::Nbody { bodies, iterations } => NbodyProblem {
                    n: bodies,
                    iterations,
                    dt: 0.01,
                },
                _ => NbodyProblem::paper(),
            };
            match sc.series {
                Series::Satin => {
                    let a = Arc::new(NbodyApp::phantom(pr, satin_grain, 1));
                    let rt = a.satin_runtime();
                    let app2 = NbodyApp::phantom(pr, satin_grain, 1);
                    let mut cs = ClusterSim::new(
                        app2,
                        rt,
                        SimConfig {
                            nodes: spec.nodes(),
                            ..cfg
                        },
                    );
                    let elapsed = nbody::run_iterations(&mut cs, &pr, |_| {});
                    let r = cs.report();
                    (
                        elapsed.as_secs_f64(),
                        pr.total_flops(),
                        0,
                        0,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, Vec::new()),
                    )
                }
                _ => {
                    let a = NbodyApp::phantom(pr, grain, device_jobs);
                    let reg = NbodyApp::registry(kernel_set(sc.series));
                    let mut cs = build_cluster(a, reg, &spec, cfg, rt_cfg).unwrap();
                    perturb_runtime(perturb, &mut cs);
                    let elapsed = nbody::run_iterations(&mut cs, &pr, |_| {});
                    let (r, l) = (cs.report(), cs.leaf_runtime());
                    (
                        elapsed.as_secs_f64(),
                        pr.total_flops(),
                        l.kernels_run,
                        l.cpu_fallbacks,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, l.audit.clone()),
                    )
                }
            }
        }
    };

    let outcome = RunOutcome {
        app: sc.app.name().to_string(),
        series: sc.series.name().to_string(),
        nodes: spec.nodes(),
        makespan_s,
        gflops: total_flops / makespan_s / 1e9,
        kernels_run: kernels,
        cpu_fallbacks: fallbacks,
        steals_ok: steals,
        network_bytes: bytes,
        failure_summary: failures.0,
        recovery: failures.1,
    };
    ScenarioRun { outcome, cap }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scenario {
        Scenario::new(
            "test-small",
            AppId::Kmeans,
            Series::CashmereOpt,
            &ClusterSpec::homogeneous(2, "gtx480"),
        )
        .with_problem(Problem::Kmeans {
            n: 1_000_000,
            k: 256,
            d: 4,
            iterations: 1,
        })
        .with_grain(125_000)
    }

    #[test]
    fn canonical_json_round_trips() {
        let sc = small()
            .with_faults(FaultPlan {
                device_failures: vec![cashmere_des::fault::DeviceFailure {
                    node: 1,
                    device: 0,
                    at: SimTime::from_millis(5),
                }],
                ..FaultPlan::default()
            })
            .with_perturb(PerturbSet::parse_list("dev:gtx480:2x").unwrap());
        let json = sc.to_canonical_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, sc);
        assert_eq!(back.to_canonical_json(), json);
    }

    #[test]
    fn terse_json_takes_defaults() {
        let sc = Scenario::from_json(
            r#"{"name":"t","app":"kmeans","series":"cashmere-opt","nodes":[["gtx480"]]}"#,
        )
        .unwrap();
        assert_eq!(sc.seed, 42);
        assert_eq!(sc.device_jobs, 8);
        assert_eq!(sc.problem, Problem::Paper);
        assert_eq!(sc.policy, PolicySpec::default());
        assert!(sc.overlap);
        assert!(sc.validate().is_ok());
    }

    #[test]
    fn policy_spec_parses_both_forms_and_normalizes_aliases() {
        // Legacy bare string, alias spelling: `greedy` normalizes to
        // `fastest-only` on load, so the canonical form is a fixed point.
        let sc = Scenario::from_json(
            r#"{"name":"t","app":"kmeans","series":"cashmere-opt","nodes":[["gtx480"]],"policy":"greedy"}"#,
        )
        .unwrap();
        assert_eq!(sc.policy.placement, Policy::FastestOnly);
        assert_eq!(sc.policy.steal, StealKind::UniformRandom);
        let canonical = sc.to_canonical_json();
        assert!(canonical.contains("\"fastest-only\""), "{canonical}");
        assert!(!canonical.contains("greedy"), "{canonical}");
        let back = Scenario::from_json(&canonical).unwrap();
        assert_eq!(back, sc);
        assert_eq!(back.to_canonical_json(), canonical);

        // Structured map form; omitted fields default.
        let sc = Scenario::from_json(
            r#"{"name":"t","app":"kmeans","series":"cashmere-opt","nodes":[["gtx480"]],"policy":{"placement":"heft","steal":"recent-victim"}}"#,
        )
        .unwrap();
        assert_eq!(
            sc.policy,
            PolicySpec::new(Policy::Heft, StealKind::RecentVictim)
        );
        assert_eq!(sc.policy.label(), "heft+recent-victim");
        let canonical = sc.to_canonical_json();
        let back = Scenario::from_json(&canonical).unwrap();
        assert_eq!(back.policy, sc.policy);
        assert_eq!(back.to_canonical_json(), canonical);

        // A default-steal spec collapses to the compact string form, so
        // every pre-arena artifact stays canonical byte-for-byte.
        let sc = Scenario::from_json(
            r#"{"name":"t","app":"kmeans","series":"cashmere-opt","nodes":[["gtx480"]],"policy":{"placement":"round-robin"}}"#,
        )
        .unwrap();
        assert!(sc
            .to_canonical_json()
            .contains("\"policy\": \"round-robin\""));

        // Unknown placement names and unknown map fields fail loudly.
        assert!(Scenario::from_json(
            r#"{"name":"t","app":"kmeans","series":"cashmere-opt","nodes":[["gtx480"]],"policy":"bogus"}"#,
        )
        .is_err());
        assert!(Scenario::from_json(
            r#"{"name":"t","app":"kmeans","series":"cashmere-opt","nodes":[["gtx480"]],"policy":{"stealing":"scan"}}"#,
        )
        .is_err());
    }

    #[test]
    fn unknown_fields_rejected() {
        assert!(Scenario::from_json(
            r#"{"name":"t","app":"kmeans","series":"cashmere-opt","nodes":[["gtx480"]],"sede":7}"#,
        )
        .is_err());
    }

    #[test]
    fn validate_catches_cross_field_errors() {
        assert!(small().validate().is_ok());
        // Unknown device.
        let mut sc = small();
        sc.nodes[0][0] = "gtx9000".into();
        assert!(sc.validate().unwrap_err().contains("unknown device"));
        // Perturbation selecting a device no node carries.
        let sc = small().with_perturb(PerturbSet::parse_list("dev:k20:2x").unwrap());
        assert!(sc.validate().unwrap_err().contains("no node carries"));
        // Fault plan targeting an absent node.
        let sc = small().with_faults(FaultPlan {
            node_crashes: vec![cashmere_des::fault::NodeCrash {
                node: 9,
                at: SimTime::from_millis(1),
            }],
            ..FaultPlan::default()
        });
        assert!(sc.validate().unwrap_err().contains("fault plan"));
        // Problem/app mismatch.
        let sc = small().with_problem(Problem::Matmul {
            n: 64,
            m: 64,
            p: 64,
        });
        assert!(sc.validate().unwrap_err().contains("matmul"));
        // Degenerate knobs.
        let mut sc = small();
        sc.device_jobs = 0;
        assert!(sc.validate().is_err());
        let mut sc = small();
        sc.nodes.clear();
        assert!(sc.validate().is_err());
        let mut sc = small();
        sc.name = "no spaces allowed".into();
        assert!(sc.validate().is_err());
    }

    #[test]
    fn run_scenario_is_deterministic() {
        let sc = small();
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(
            serde_json::to_string(&a.outcome).unwrap(),
            serde_json::to_string(&b.outcome).unwrap()
        );
        assert!(a.outcome.makespan_s > 0.0);
        assert!(a.cap.is_none(), "outputs off => no capture");
        let observed = run_scenario(&sc.clone().with_capture(true));
        assert!(observed.cap.is_some());
        // Tracing must not change the measured physics.
        assert_eq!(observed.outcome.makespan_s, a.outcome.makespan_s);
    }

    #[test]
    fn faulted_sweep_is_byte_identical_at_any_jobs_width() {
        // The chaos bin's contract: a sweep of fault scenarios (crashes,
        // rejoins, lossy links) reassembled by the parallel executor is
        // byte-identical between --jobs 1 and --jobs 4, and the faulted
        // outcomes carry the recovery-cost section.
        use cashmere_des::fault::{LinkFault, NodeCrash, NodeJoin};
        let faulted = |crash_ms: u64| {
            small()
                .named(format!("test-chaos-{crash_ms}"))
                .with_faults(FaultPlan {
                    node_crashes: vec![NodeCrash {
                        node: 1,
                        at: SimTime::from_millis(crash_ms),
                    }],
                    node_joins: vec![NodeJoin {
                        node: 1,
                        at: SimTime::from_millis(crash_ms + 5),
                    }],
                    link_faults: vec![LinkFault {
                        src: None,
                        dst: Some(0),
                        from: SimTime::from_millis(1),
                        until: SimTime::from_millis(crash_ms + 8),
                        loss: 0.1,
                        spike: SimTime::from_micros(200),
                        spike_probability: 0.2,
                    }],
                    ..FaultPlan::default()
                })
        };
        let scenarios: Vec<Scenario> = vec![small(), faulted(2), faulted(4), faulted(6)];
        let outcomes = |jobs: usize| -> Vec<String> {
            crate::sweep(scenarios.clone(), jobs, |sc| run_scenario(&sc))
                .into_iter()
                .map(|r| serde_json::to_string(&r.outcome).unwrap())
                .collect()
        };
        let serial = outcomes(1);
        assert_eq!(serial, outcomes(4), "sweep must not depend on --jobs");
        let faulted_outcome: RunOutcome = serde_json::from_str(&serial[1]).unwrap();
        let rec = faulted_outcome.recovery.expect("faulted run has recovery");
        assert_eq!(rec.crashes, 1);
        assert_eq!(rec.joins, 1);
        let clean: RunOutcome = serde_json::from_str(&serial[0]).unwrap();
        assert!(clean.recovery.is_none(), "fault-free run reports none");
    }
}
