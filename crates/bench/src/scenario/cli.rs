//! Shared command-line front end for the eight bench bins.
//!
//! Every bin starts with the same two calls:
//!
//! ```text
//! let (common, rest) = cli::common_args();
//! if cli::handle_scenario(&common) { return; }
//! ```
//!
//! [`common_args`] splits the flags every bin accepts out of argv in one
//! pass — `--faults plan.json`, `--trace out.json`, `--explain`,
//! `--metrics-out m.txt`, `--jobs N`, `--policy P`, `--steal S`,
//! `--interp tree|vm`,
//! `--self-profile stem`, `--scenario file.json`, `--dump-scenario` —
//! returning the rest (argv[0] included) for bin-specific parsing.
//! `--self-profile` enables the host self-profiler immediately (so setup
//! is attributed too); preset bins call [`finish`] as their last statement
//! to export the collapsed-stack/JSON/digest triple. [`handle_scenario`] implements the declarative
//! entry: when `--scenario` names a spec file it is loaded, overridden by
//! the CLI flags, validated, and either printed (`--dump-scenario`) or run
//! through [`run_scenario`] with a provenance-bearing report written under
//! `bench/out/`. Bins whose presets are scenario-shaped then honor a bare
//! `--dump-scenario` by printing their resolved preset list via
//! [`dump_scenarios`] instead of running.

use super::{run_scenario, Scenario, ScenarioReport};
use crate::obs::{obs_args, report_run, write_self_profile, ObsArgs};
use crate::output::Table;
use crate::sweep::jobs_from_args;
use cashmere::balancer::Policy;
use cashmere_des::fault::FaultPlan;
use cashmere_des::obs::prof;
use cashmere_satin::StealKind;
use std::path::PathBuf;

/// Flags shared by all bench bins, split out of argv by [`common_args`].
#[derive(Debug, Clone, Default)]
pub struct CommonArgs {
    /// Worker threads for the sweep executor (`--jobs N`).
    pub jobs: usize,
    /// Observability flags (`--trace`, `--explain`, `--metrics-out`).
    pub obs: ObsArgs,
    /// Fault plan (`--faults plan.json`; empty when absent).
    pub faults: FaultPlan,
    /// Placement-policy override (`--policy scenario|round-robin|…`).
    pub policy: Option<Policy>,
    /// Steal-policy override
    /// (`--steal uniform-random|recent-victim|round-robin-scan`).
    pub steal: Option<StealKind>,
    /// Scenario file to run instead of the bin's presets (`--scenario`).
    pub scenario: Option<String>,
    /// Print resolved scenario(s) instead of running (`--dump-scenario`).
    pub dump: bool,
    /// Kernel interpreter engine override (`--interp tree|vm`), applied to
    /// scenarios like `--policy` and process-wide for kernel-corpus bins.
    /// `None` leaves the scenario's own `interp` field (default: the VM)
    /// in charge. Both engines produce bit-identical statistics.
    pub interp: Option<cashmere_mcl::InterpEngine>,
    /// The bin's name (argv[0] basename) — the root frame of
    /// `--self-profile` collapsed stacks.
    pub program: String,
}

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Load a fault plan from a JSON file (the bench bins' `--faults` flag).
pub fn load_fault_plan(path: &str) -> Result<FaultPlan, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Split the shared flags out of argv. Returns the remaining arguments,
/// argv[0] included, for bin-specific parsing. Exits with a message on a
/// malformed flag (missing value, unreadable plan, unknown policy).
pub fn common_args() -> (CommonArgs, Vec<String>) {
    let mut common = CommonArgs::default();
    let mut rest = Vec::new();
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--faults" => {
                let path = value("--faults");
                match load_fault_plan(&path) {
                    Ok(p) => common.faults = p,
                    Err(e) => fail(&e),
                }
            }
            "--policy" => {
                let v = value("--policy");
                common.policy = Some(Policy::parse(&v).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown policy `{v}` (scenario|round-robin|fastest-only|heft|dynamic-chunk|static-table)"
                    ))
                }));
            }
            "--steal" => {
                let v = value("--steal");
                common.steal = Some(StealKind::parse(&v).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown steal policy `{v}` (uniform-random|recent-victim|round-robin-scan)"
                    ))
                }));
            }
            "--scenario" => common.scenario = Some(value("--scenario")),
            "--dump-scenario" => common.dump = true,
            "--interp" => {
                let v = value("--interp");
                common.interp = Some(
                    cashmere_mcl::InterpEngine::parse(&v)
                        .unwrap_or_else(|| fail(&format!("unknown interpreter `{v}` (tree|vm)"))),
                );
            }
            _ => rest.push(a),
        }
    }
    let (obs, rest) = obs_args(rest);
    let (jobs, rest) = jobs_from_args(rest);
    common.obs = obs;
    common.jobs = jobs;
    common.program = rest
        .first()
        .map(|a| {
            std::path::Path::new(a)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| a.clone())
        })
        .unwrap_or_else(|| "bench".to_string());
    // Select the engine before any sweep workers spawn: every launch in the
    // process (including `--jobs N` workers) sees the same engine. (The
    // scenario driver re-applies the spec's own `interp` per run.)
    if let Some(e) = common.interp {
        cashmere_mcl::set_default_engine(e);
    }
    // Start profiling before any work so setup (cluster build, kernel
    // compilation) is attributed too.
    if common.obs.self_profile.is_some() {
        prof::set_enabled(true);
    }
    (common, rest)
}

/// Write the `--self-profile` exports, if requested — the bins' last call
/// before returning from `main`, passing the scenarios they ran (empty for
/// kernel-corpus bins whose runs are not scenario-shaped).
pub fn finish(common: &CommonArgs, scenarios: &[Scenario]) {
    if let Some(stem) = &common.obs.self_profile {
        write_self_profile(stem, &common.program, scenarios);
    }
}

/// Apply the CLI overrides to a preset (or loaded) scenario: `--policy`,
/// `--faults`, `--probe`/`--probe-out`, and in-memory capture when any
/// observability flag is set.
pub fn apply_overrides(mut sc: Scenario, common: &CommonArgs) -> Scenario {
    if let Some(p) = common.policy {
        sc.policy.placement = p;
    }
    if let Some(s) = common.steal {
        sc.policy.steal = s;
    }
    if let Some(e) = common.interp {
        sc.interp = e;
    }
    if common.obs.self_profile.is_some() {
        sc.outputs.self_profile.clone_from(&common.obs.self_profile);
    }
    if !common.faults.is_empty() {
        sc.faults = Some(common.faults.clone());
    }
    if common.obs.probe.is_some() {
        sc.outputs.probe_interval = common.obs.probe;
    }
    if common.obs.probe_out.is_some() {
        sc.outputs.probe_out.clone_from(&common.obs.probe_out);
    }
    if common.obs.enabled() {
        sc.outputs.capture = true;
        sc.outputs.explain = common.obs.explain;
    }
    sc
}

/// Print a resolved scenario list as a JSON array (the bins'
/// bare `--dump-scenario`).
pub fn dump_scenarios(scenarios: &[Scenario]) {
    let mut s = serde_json::to_string_pretty(scenarios).expect("scenarios serialize");
    s.push('\n');
    print!("{s}");
}

/// `bench/out/<file>` relative to the workspace root.
pub fn out_path(file: &str) -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("bench/out");
    dir.join(file)
}

/// Handle `--scenario file.json`: load, override with the CLI flags,
/// validate, then dump (`--dump-scenario`) or run and write the
/// provenance-bearing report. Returns `true` when the flag was present and
/// handled — the bin should return without running its presets. Exits with
/// a message on load or validation errors.
pub fn handle_scenario(common: &CommonArgs) -> bool {
    let Some(path) = &common.scenario else {
        return false;
    };
    let sc = match Scenario::load(path) {
        Ok(sc) => apply_overrides(sc, common),
        Err(e) => fail(&e),
    };
    if let Err(e) = sc.validate() {
        fail(&format!("{path}: invalid scenario: {e}"));
    }
    if common.dump {
        print!("{}", sc.to_canonical_json());
        return true;
    }
    // The spec itself can ask for a self-profile (outputs.self_profile);
    // the CLI flag already enabled profiling in `common_args`.
    if sc.outputs.self_profile.is_some() {
        prof::set_enabled(true);
    }
    let run = run_scenario(&sc);
    let r = &run.outcome;
    println!(
        "scenario {}: {} / {} on {} node(s)\n",
        sc.name, r.app, r.series, r.nodes
    );
    let mut t = Table::new(&[
        "makespan",
        "GFLOPS",
        "kernels",
        "fallbacks",
        "steals",
        "net bytes",
    ]);
    t.row(vec![
        format!("{:.3}s", r.makespan_s),
        format!("{:.0}", r.gflops),
        r.kernels_run.to_string(),
        r.cpu_fallbacks.to_string(),
        r.steals_ok.to_string(),
        r.network_bytes.to_string(),
    ]);
    println!("{}", t.render());
    if let Some(f) = &r.failure_summary {
        for line in f.lines() {
            println!("  {line}");
        }
        println!();
    }
    if let Some(cap) = &run.cap {
        // The spec's own probe output path applies when no CLI flag beat it.
        let mut obs = common.obs.clone();
        if obs.probe_out.is_none() {
            obs.probe_out.clone_from(&sc.outputs.probe_out);
        }
        report_run(&obs, &sc.name, cap);
    }
    let report = ScenarioReport::new(&sc, run.outcome);
    let path = match &sc.outputs.report {
        Some(p) => PathBuf::from(p),
        None => out_path(&format!("scenario_{}.json", sc.name)),
    };
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, report.to_canonical_json()) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
    if let Some(stem) = &sc.outputs.self_profile {
        write_self_profile(stem, &common.program, std::slice::from_ref(&sc));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_loads_and_reports_errors() {
        assert!(load_fault_plan("/nonexistent/plan.json")
            .unwrap_err()
            .contains("cannot read"));
        let dir = std::env::temp_dir().join("cashmere-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        std::fs::write(&good, r#"{"node_crashes":[{"node":1,"at":5000000}]}"#).unwrap();
        let plan = load_fault_plan(good.to_str().unwrap()).unwrap();
        assert_eq!(plan.node_crashes.len(), 1);
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "not json").unwrap();
        assert!(load_fault_plan(bad.to_str().unwrap())
            .unwrap_err()
            .contains("cannot parse"));
    }

    #[test]
    fn overrides_apply_policy_faults_capture() {
        use crate::runners::{AppId, Series};
        use cashmere::ClusterSpec;
        let sc = Scenario::new(
            "t",
            AppId::Kmeans,
            Series::CashmereOpt,
            &ClusterSpec::homogeneous(1, "gtx480"),
        );
        let common = CommonArgs {
            policy: Some(Policy::RoundRobin),
            steal: Some(StealKind::RecentVictim),
            obs: ObsArgs {
                explain: true,
                ..ObsArgs::default()
            },
            ..CommonArgs::default()
        };
        let out = apply_overrides(sc, &common);
        assert_eq!(out.policy.placement, Policy::RoundRobin);
        assert_eq!(out.policy.steal, StealKind::RecentVictim);
        assert!(out.outputs.capture);
        assert!(out.outputs.explain);
        assert!(out.faults.is_none(), "empty plan stays None");
    }
}
