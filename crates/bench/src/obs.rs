//! Observability flags shared by the bench bins.
//!
//! Every experiment binary accepts
//!
//! * `--trace <out.json>` — run with tracing on and write a Chrome
//!   trace-event file (open in Perfetto or `chrome://tracing`) plus a
//!   balancer audit log next to it (`<out>.audit.json`);
//! * `--explain` — print the critical-path analysis, the metrics summary,
//!   and a balancer-decision digest after the run;
//! * `--metrics-out <out.txt>` — dump the metrics registry in OpenMetrics
//!   text exposition format for scrape-style tooling;
//! * `--probe <interval>` — run the flight recorder at the given
//!   virtual-time cadence (`500us`, `1ms`, `2s`, or raw nanoseconds) and
//!   write the sampled series as CSV plus OpenMetrics (`.om`) and Chrome
//!   counter-track (`.trace.json`) siblings;
//! * `--probe-out <path>` — where the probe CSV goes (defaults to
//!   `probes.csv` when only `--probe` is given);
//! * `--self-profile <stem>` — profile the *simulator host* and write
//!   `<stem>.collapsed` (flamegraph input), `<stem>.json`
//!   (provenance-enveloped context tree) and `<stem>.txt` (top-N digest).
//!   Unlike every flag above it observes the simulator, not the simulated
//!   cluster, so it implies no tracing and never changes artifact bytes.
//!
//! Bins that execute several runs (scaling sweeps, ablations) derive one
//! trace file per run by inserting the run label before the extension.

use crate::scenario::Scenario;
use cashmere::AuditEntry;
use cashmere_des::obs::{
    prof, CriticalPath, MetricsRegistry, ProbeSeries, ProfTree, RunFingerprint,
};
use cashmere_des::trace::Trace;
use cashmere_des::SimTime;
use cashmere_satin::{critical_path_summary, RunReport};
use serde::{Deserialize, Serialize};

/// Parsed observability flags.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// Chrome trace output path (`--trace <path>`).
    pub trace_path: Option<String>,
    /// Print critical-path / metrics / audit summaries (`--explain`).
    pub explain: bool,
    /// OpenMetrics text output path (`--metrics-out <path>`).
    pub metrics_out: Option<String>,
    /// Flight-recorder cadence (`--probe <interval>`).
    pub probe: Option<SimTime>,
    /// Probe series CSV output path (`--probe-out <path>`).
    pub probe_out: Option<String>,
    /// Host self-profiler output stem (`--self-profile <stem>`).
    pub self_profile: Option<String>,
}

impl ObsArgs {
    /// Does the run need tracing enabled at all? `self_profile` is
    /// deliberately excluded: it observes the host, not the simulation,
    /// and must not switch capture on (that would change artifact bytes).
    pub fn enabled(&self) -> bool {
        self.trace_path.is_some()
            || self.explain
            || self.metrics_out.is_some()
            || self.probe.is_some()
            || self.probe_out.is_some()
    }
}

/// Parse a virtual-time span: `120ns`, `500us`, `1ms`, `2s`, or a raw
/// nanosecond count. Zero is rejected (a zero-cadence probe would never
/// let the run finish).
pub fn parse_simtime(s: &str) -> Option<SimTime> {
    let (digits, scale) = if let Some(v) = s.strip_suffix("ns") {
        (v, 1)
    } else if let Some(v) = s.strip_suffix("us") {
        (v, 1_000)
    } else if let Some(v) = s.strip_suffix("ms") {
        (v, 1_000_000)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1_000_000_000)
    } else {
        (s, 1)
    };
    let n: u64 = digits.parse().ok()?;
    let ns = n.checked_mul(scale)?;
    (ns > 0).then(|| SimTime::from_nanos(ns))
}

/// Split `--trace <path>` and `--explain` out of `args` (argv[0]
/// included). Usually reached through [`crate::cli::common_args`], which
/// folds these flags into the shared [`crate::CommonArgs`]. Exits with a
/// message when `--trace` lacks its path.
pub fn obs_args(args: Vec<String>) -> (ObsArgs, Vec<String>) {
    let mut obs = ObsArgs::default();
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                let Some(path) = it.next() else {
                    eprintln!("--trace requires an output path (e.g. --trace out.json)");
                    std::process::exit(2);
                };
                obs.trace_path = Some(path);
            }
            "--explain" => obs.explain = true,
            "--metrics-out" => {
                let Some(path) = it.next() else {
                    eprintln!("--metrics-out requires an output path (e.g. --metrics-out m.txt)");
                    std::process::exit(2);
                };
                obs.metrics_out = Some(path);
            }
            "--probe" => {
                let Some(iv) = it.next().as_deref().and_then(parse_simtime) else {
                    eprintln!("--probe requires a positive interval (e.g. --probe 1ms)");
                    std::process::exit(2);
                };
                obs.probe = Some(iv);
            }
            "--probe-out" => {
                let Some(path) = it.next() else {
                    eprintln!("--probe-out requires an output path (e.g. --probe-out probes.csv)");
                    std::process::exit(2);
                };
                obs.probe_out = Some(path);
            }
            "--self-profile" => {
                let Some(stem) = it.next() else {
                    eprintln!("--self-profile requires an output stem (e.g. --self-profile prof)");
                    std::process::exit(2);
                };
                obs.self_profile = Some(stem);
            }
            _ => rest.push(a),
        }
    }
    if obs.probe.is_some() && obs.probe_out.is_none() {
        obs.probe_out = Some("probes.csv".to_string());
    }
    (obs, rest)
}

/// Everything one observed run exports: cloned out of the cluster before
/// it is dropped so the bins can emit files and summaries.
#[derive(Debug, Clone)]
pub struct ObsCapture {
    pub trace: Trace,
    pub metrics: MetricsRegistry,
    pub audit: Vec<AuditEntry>,
    /// The run's end-of-run counters (makespan, steals, recovery, per-node
    /// busy time) — the scalar side of a run fingerprint.
    pub report: RunReport,
    /// Flight-recorder series (`Some` when a probe interval was set).
    pub probes: Option<ProbeSeries>,
    /// The virtual-time horizon summaries are measured against: the run
    /// end (total time across every iteration), never shorter than the
    /// last recorded span — so time-weighted gauges include the closing
    /// segment between their last update and the finish.
    pub horizon: SimTime,
}

/// Build a [`RunFingerprint`] for the regression explainer from one
/// captured run: makespan, critical-path kind breakdown, per-node busy
/// time, the report's scalar counters, and the probe series if one was
/// recorded. `makespan_s` comes from the outcome (it covers every
/// iteration, unlike the report's last-root makespan).
pub fn fingerprint(label: &str, makespan_s: f64, cap: &ObsCapture) -> RunFingerprint {
    let cp = CriticalPath::compute(&cap.trace);
    let r = &cap.report;
    let mut counters = std::collections::BTreeMap::new();
    for (key, v) in [
        ("jobs_created", r.jobs_created),
        ("divides", r.divides),
        ("leaves", r.leaves),
        ("steal_attempts", r.steal_attempts),
        ("steals_ok", r.steals_ok),
        ("bytes_stolen", r.bytes_stolen),
        ("bytes_results", r.bytes_results),
        ("bytes_broadcast", r.bytes_broadcast),
        ("crashes", r.crashes),
        ("jobs_restarted", r.jobs_restarted),
        ("joins", r.joins),
        ("kernel_memo_hits", r.kernel_memo_hits),
        ("kernel_memo_misses", r.kernel_memo_misses),
        ("orphans_harvested", r.orphans_harvested),
        ("orphans_reused", r.orphans_reused),
        ("orphans_expired", r.orphans_expired),
        ("devices_lost", r.devices_lost),
        ("launch_retries", r.launch_retries),
        ("fault_cpu_fallbacks", r.fault_cpu_fallbacks),
        ("messages_lost", r.messages_lost),
        ("steal_timeouts", r.steal_timeouts),
        ("result_retransmits", r.result_retransmits),
    ] {
        counters.insert(key.to_string(), v as f64);
    }
    counters.insert("recovery_time_s".to_string(), r.recovery_time.as_secs_f64());
    counters.insert(
        "time_to_recover_s".to_string(),
        r.time_to_recover.as_secs_f64(),
    );
    RunFingerprint {
        label: label.to_string(),
        makespan: SimTime::from_secs_f64(makespan_s),
        crit: cp.by_kind,
        node_busy: r.node_busy.clone(),
        counters,
        probes: cap.probes.clone(),
    }
}

/// Insert `label` before the extension of `base`:
/// `out.json` + `4n` → `out.4n.json`. Empty labels return `base` as is.
pub fn labeled_path(base: &str, label: &str) -> String {
    if label.is_empty() {
        return base.to_string();
    }
    match base.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.{label}.{ext}"),
        None => format!("{base}.{label}"),
    }
}

/// Audit-log digest: how many decisions went where, and why any degraded
/// to the CPU leaf.
fn audit_digest(audit: &[AuditEntry]) -> String {
    use std::collections::BTreeMap;
    let mut placed: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut fallbacks: BTreeMap<&str, u64> = BTreeMap::new();
    for e in audit {
        match e.chosen {
            Some(d) => *placed.entry((e.node, d)).or_insert(0) += 1,
            None => *fallbacks.entry(e.reason.as_str()).or_insert(0) += 1,
        }
    }
    let mut parts: Vec<String> = placed
        .iter()
        .map(|((n, d), c)| format!("n{n}.dev{d}={c}"))
        .collect();
    parts.extend(fallbacks.iter().map(|(r, c)| format!("{r}={c}")));
    format!(
        "balancer audit: {} decisions ({})",
        audit.len(),
        parts.join(", ")
    )
}

/// Emit everything a run's observability flags ask for: the Chrome trace
/// and audit JSON when `--trace` is set (per-run paths derived from
/// `label`), and the critical-path / metrics / audit summaries when
/// `--explain` is set.
pub fn report_run(obs: &ObsArgs, label: &str, cap: &ObsCapture) {
    let _prof = prof::scope("obs::export");
    if let Some(base) = &obs.trace_path {
        let path = labeled_path(base, label);
        match std::fs::write(&path, cap.trace.to_chrome_json()) {
            Ok(()) => println!("[wrote {path}]"),
            Err(e) => eprintln!("warning: cannot write {path}: {e}"),
        }
        let audit_path = labeled_path(&path, "audit");
        match serde_json::to_string_pretty(&cap.audit) {
            Ok(json) => match std::fs::write(&audit_path, json) {
                Ok(()) => println!("[wrote {audit_path}]"),
                Err(e) => eprintln!("warning: cannot write {audit_path}: {e}"),
            },
            Err(e) => eprintln!("warning: cannot serialize audit log: {e}"),
        }
    }
    if let Some(base) = &obs.metrics_out {
        let path = labeled_path(base, label);
        match std::fs::write(&path, cap.metrics.to_openmetrics(cap.horizon)) {
            Ok(()) => println!("[wrote {path}]"),
            Err(e) => eprintln!("warning: cannot write {path}: {e}"),
        }
    }
    if let (Some(base), Some(p)) = (&obs.probe_out, &cap.probes) {
        let path = labeled_path(base, label);
        let write = |path: &str, contents: String| match std::fs::write(path, contents) {
            Ok(()) => println!("[wrote {path}]"),
            Err(e) => eprintln!("warning: cannot write {path}: {e}"),
        };
        write(&path, p.to_csv());
        write(&format!("{path}.om"), p.to_openmetrics());
        write(&format!("{path}.trace.json"), p.to_chrome_json());
    }
    if obs.explain {
        let header = if label.is_empty() {
            "--- explain ---".to_string()
        } else {
            format!("--- explain: {label} ---")
        };
        println!("{header}");
        let cp = CriticalPath::compute(&cap.trace);
        println!("{}", critical_path_summary(&cp, cap.horizon));
        if !cap.metrics.is_empty() {
            println!("{}", cap.metrics.summary(cap.horizon));
        }
        if !cap.audit.is_empty() {
            println!("{}", audit_digest(&cap.audit));
        }
        if let Some(p) = &cap.probes {
            println!(
                "flight recorder: {} ticks x {} columns @ {}",
                p.len(),
                p.columns.len(),
                p.interval
            );
        }
    }
}

/// One row of the per-subsystem breakdown: exclusive host time aggregated
/// by frame name, as a share of [`ProfTree::total_ns`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsystemShare {
    pub name: String,
    pub share: f64,
    pub self_ms: f64,
}

pub fn subsystem_rows(tree: &ProfTree) -> Vec<SubsystemShare> {
    let total = tree.total_ns() as f64;
    tree.subsystem_shares()
        .into_iter()
        .map(|(name, share)| SubsystemShare {
            name,
            share,
            self_ms: share * total / 1e6,
        })
        .collect()
}

/// The provenance-enveloped JSON form of one self-profile: which program
/// ran which scenarios, how much host wall elapsed, and where it went.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelfProfileReport {
    pub schema: u32,
    /// The profiled bin; also the collapsed-stack root frame.
    pub program: String,
    /// The scenarios the profiled process ran (empty for kernel-corpus
    /// bins) — same envelope as every other provenance-bearing artifact.
    pub provenance: Vec<Scenario>,
    /// Host wall nanoseconds between profiler enable and export.
    pub wall_ns: u64,
    /// Wall attributed to named frames (sum of root inclusive times; can
    /// exceed `wall_ns` with parallel sweep workers, like CPU time).
    pub attributed_ns: u64,
    /// `attributed_ns / wall_ns`.
    pub attributed_share: f64,
    /// Exclusive-time share per frame name, heaviest first.
    pub subsystems: Vec<SubsystemShare>,
    /// The full calling-context tree.
    pub tree: ProfTree,
}

/// Drain the profiler and write the three `--self-profile` exports:
/// `<stem>.collapsed`, `<stem>.json`, `<stem>.txt`. Prints the top-N
/// digest so a profiled run explains itself without opening a file.
pub fn write_self_profile(stem: &str, program: &str, scenarios: &[Scenario]) {
    let tree = prof::take();
    let wall_ns = prof::wall_ns();
    let attributed_ns = tree.total_ns();
    let report = SelfProfileReport {
        schema: 1,
        program: program.to_string(),
        provenance: scenarios.iter().map(Scenario::provenance_form).collect(),
        wall_ns,
        attributed_ns,
        attributed_share: attributed_ns as f64 / wall_ns.max(1) as f64,
        subsystems: subsystem_rows(&tree),
        tree,
    };
    let write = |path: String, contents: String| match std::fs::write(&path, contents) {
        Ok(()) => println!("[wrote {path}]"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    };
    write(format!("{stem}.collapsed"), report.tree.collapsed(program));
    let mut json = serde_json::to_string_pretty(&report).expect("self-profile serializes");
    json.push('\n');
    write(format!("{stem}.json"), json);
    let digest = report.tree.digest(12);
    write(format!("{stem}.txt"), digest.clone());
    print!("{digest}");
    println!(
        "self-profile: {:.1}% of {:.1}ms host wall attributed",
        report.attributed_share * 100.0,
        wall_ns as f64 / 1e6
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_paths() {
        assert_eq!(labeled_path("out.json", "4n"), "out.4n.json");
        assert_eq!(labeled_path("out.json", ""), "out.json");
        assert_eq!(labeled_path("trace", "x"), "trace.x");
        assert_eq!(labeled_path("a/b.c.json", "audit"), "a/b.c.audit.json");
    }

    #[test]
    fn obs_args_split() {
        let argv = vec![
            "bin".to_string(),
            "--trace".to_string(),
            "t.json".to_string(),
            "--small".to_string(),
            "--explain".to_string(),
            "--metrics-out".to_string(),
            "m.txt".to_string(),
        ];
        let (obs, rest) = obs_args(argv);
        assert_eq!(obs.trace_path.as_deref(), Some("t.json"));
        assert_eq!(obs.metrics_out.as_deref(), Some("m.txt"));
        assert!(obs.explain);
        assert!(obs.enabled());
        assert_eq!(rest, vec!["bin".to_string(), "--small".to_string()]);
    }

    #[test]
    fn parse_simtime_units_and_rejects() {
        assert_eq!(parse_simtime("500us"), Some(SimTime::from_micros(500)));
        assert_eq!(parse_simtime("1ms"), Some(SimTime::from_millis(1)));
        assert_eq!(parse_simtime("2s"), Some(SimTime::from_secs(2)));
        assert_eq!(parse_simtime("120ns"), Some(SimTime::from_nanos(120)));
        assert_eq!(parse_simtime("123456"), Some(SimTime::from_nanos(123_456)));
        assert_eq!(parse_simtime("0"), None, "zero cadence is rejected");
        assert_eq!(parse_simtime("0ms"), None);
        assert_eq!(parse_simtime("abc"), None);
        assert_eq!(parse_simtime("1.5ms"), None, "whole numbers only");
    }

    #[test]
    fn probe_flag_defaults_its_output_path() {
        let argv = vec!["bin".to_string(), "--probe".to_string(), "1ms".to_string()];
        let (obs, rest) = obs_args(argv);
        assert_eq!(obs.probe, Some(SimTime::from_millis(1)));
        assert_eq!(obs.probe_out.as_deref(), Some("probes.csv"));
        assert!(obs.enabled());
        assert_eq!(rest, vec!["bin".to_string()]);
    }

    #[test]
    fn audit_digest_counts_outcomes() {
        use cashmere::balancer::PolicyDesc;
        let e = |chosen: Option<usize>, reason: &str| AuditEntry {
            seq: 0,
            node: 0,
            kernel: "k".into(),
            submit_ns: 0,
            policy: PolicyDesc::default(),
            candidates: vec![],
            chosen,
            reason: reason.into(),
        };
        let digest = audit_digest(&[
            e(Some(0), "placed"),
            e(Some(0), "placed"),
            e(None, "no-usable-device"),
        ]);
        assert!(digest.contains("3 decisions"), "{digest}");
        assert!(digest.contains("n0.dev0=2"), "{digest}");
        assert!(digest.contains("no-usable-device=1"), "{digest}");
    }
}
