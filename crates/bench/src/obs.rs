//! Observability flags shared by the bench bins.
//!
//! Every experiment binary accepts
//!
//! * `--trace <out.json>` — run with tracing on and write a Chrome
//!   trace-event file (open in Perfetto or `chrome://tracing`) plus a
//!   balancer audit log next to it (`<out>.audit.json`);
//! * `--explain` — print the critical-path analysis, the metrics summary,
//!   and a balancer-decision digest after the run;
//! * `--metrics-out <out.txt>` — dump the metrics registry in OpenMetrics
//!   text exposition format for scrape-style tooling.
//!
//! Bins that execute several runs (scaling sweeps, ablations) derive one
//! trace file per run by inserting the run label before the extension.

use cashmere::AuditEntry;
use cashmere_des::obs::{CriticalPath, MetricsRegistry};
use cashmere_des::trace::Trace;
use cashmere_des::SimTime;
use cashmere_satin::critical_path_summary;

/// Parsed observability flags.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// Chrome trace output path (`--trace <path>`).
    pub trace_path: Option<String>,
    /// Print critical-path / metrics / audit summaries (`--explain`).
    pub explain: bool,
    /// OpenMetrics text output path (`--metrics-out <path>`).
    pub metrics_out: Option<String>,
}

impl ObsArgs {
    /// Does the run need tracing enabled at all?
    pub fn enabled(&self) -> bool {
        self.trace_path.is_some() || self.explain || self.metrics_out.is_some()
    }
}

/// Split `--trace <path>` and `--explain` out of `args` (argv[0]
/// included). Usually reached through [`crate::cli::common_args`], which
/// folds these flags into the shared [`crate::CommonArgs`]. Exits with a
/// message when `--trace` lacks its path.
pub fn obs_args(args: Vec<String>) -> (ObsArgs, Vec<String>) {
    let mut obs = ObsArgs::default();
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                let Some(path) = it.next() else {
                    eprintln!("--trace requires an output path (e.g. --trace out.json)");
                    std::process::exit(2);
                };
                obs.trace_path = Some(path);
            }
            "--explain" => obs.explain = true,
            "--metrics-out" => {
                let Some(path) = it.next() else {
                    eprintln!("--metrics-out requires an output path (e.g. --metrics-out m.txt)");
                    std::process::exit(2);
                };
                obs.metrics_out = Some(path);
            }
            _ => rest.push(a),
        }
    }
    (obs, rest)
}

/// Everything one observed run exports: cloned out of the cluster before
/// it is dropped so the bins can emit files and summaries.
#[derive(Debug, Clone)]
pub struct ObsCapture {
    pub trace: Trace,
    pub metrics: MetricsRegistry,
    pub audit: Vec<AuditEntry>,
    /// End of the last recorded span — the virtual-time horizon the
    /// critical path is measured against (covers every iteration, unlike
    /// the per-run makespan).
    pub horizon: SimTime,
}

/// Insert `label` before the extension of `base`:
/// `out.json` + `4n` → `out.4n.json`. Empty labels return `base` as is.
pub fn labeled_path(base: &str, label: &str) -> String {
    if label.is_empty() {
        return base.to_string();
    }
    match base.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.{label}.{ext}"),
        None => format!("{base}.{label}"),
    }
}

/// Audit-log digest: how many decisions went where, and why any degraded
/// to the CPU leaf.
fn audit_digest(audit: &[AuditEntry]) -> String {
    use std::collections::BTreeMap;
    let mut placed: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut fallbacks: BTreeMap<&str, u64> = BTreeMap::new();
    for e in audit {
        match e.chosen {
            Some(d) => *placed.entry((e.node, d)).or_insert(0) += 1,
            None => *fallbacks.entry(e.reason.as_str()).or_insert(0) += 1,
        }
    }
    let mut parts: Vec<String> = placed
        .iter()
        .map(|((n, d), c)| format!("n{n}.dev{d}={c}"))
        .collect();
    parts.extend(fallbacks.iter().map(|(r, c)| format!("{r}={c}")));
    format!(
        "balancer audit: {} decisions ({})",
        audit.len(),
        parts.join(", ")
    )
}

/// Emit everything a run's observability flags ask for: the Chrome trace
/// and audit JSON when `--trace` is set (per-run paths derived from
/// `label`), and the critical-path / metrics / audit summaries when
/// `--explain` is set.
pub fn report_run(obs: &ObsArgs, label: &str, cap: &ObsCapture) {
    if let Some(base) = &obs.trace_path {
        let path = labeled_path(base, label);
        match std::fs::write(&path, cap.trace.to_chrome_json()) {
            Ok(()) => println!("[wrote {path}]"),
            Err(e) => eprintln!("warning: cannot write {path}: {e}"),
        }
        let audit_path = labeled_path(&path, "audit");
        match serde_json::to_string_pretty(&cap.audit) {
            Ok(json) => match std::fs::write(&audit_path, json) {
                Ok(()) => println!("[wrote {audit_path}]"),
                Err(e) => eprintln!("warning: cannot write {audit_path}: {e}"),
            },
            Err(e) => eprintln!("warning: cannot serialize audit log: {e}"),
        }
    }
    if let Some(base) = &obs.metrics_out {
        let path = labeled_path(base, label);
        match std::fs::write(&path, cap.metrics.to_openmetrics(cap.horizon)) {
            Ok(()) => println!("[wrote {path}]"),
            Err(e) => eprintln!("warning: cannot write {path}: {e}"),
        }
    }
    if obs.explain {
        let header = if label.is_empty() {
            "--- explain ---".to_string()
        } else {
            format!("--- explain: {label} ---")
        };
        println!("{header}");
        let cp = CriticalPath::compute(&cap.trace);
        println!("{}", critical_path_summary(&cp, cap.horizon));
        if !cap.metrics.is_empty() {
            println!("{}", cap.metrics.summary(cap.horizon));
        }
        if !cap.audit.is_empty() {
            println!("{}", audit_digest(&cap.audit));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_paths() {
        assert_eq!(labeled_path("out.json", "4n"), "out.4n.json");
        assert_eq!(labeled_path("out.json", ""), "out.json");
        assert_eq!(labeled_path("trace", "x"), "trace.x");
        assert_eq!(labeled_path("a/b.c.json", "audit"), "a/b.c.audit.json");
    }

    #[test]
    fn obs_args_split() {
        let argv = vec![
            "bin".to_string(),
            "--trace".to_string(),
            "t.json".to_string(),
            "--small".to_string(),
            "--explain".to_string(),
            "--metrics-out".to_string(),
            "m.txt".to_string(),
        ];
        let (obs, rest) = obs_args(argv);
        assert_eq!(obs.trace_path.as_deref(), Some("t.json"));
        assert_eq!(obs.metrics_out.as_deref(), Some("m.txt"));
        assert!(obs.explain);
        assert!(obs.enabled());
        assert_eq!(rest, vec!["bin".to_string(), "--small".to_string()]);
    }

    #[test]
    fn audit_digest_counts_outcomes() {
        use cashmere::balancer::Policy;
        let e = |chosen: Option<usize>, reason: &str| AuditEntry {
            seq: 0,
            node: 0,
            kernel: "k".into(),
            submit_ns: 0,
            policy: Policy::Scenario,
            candidates: vec![],
            chosen,
            reason: reason.into(),
        };
        let digest = audit_digest(&[
            e(Some(0), "placed"),
            e(Some(0), "placed"),
            e(None, "no-usable-device"),
        ]);
        assert!(digest.contains("3 decisions"), "{digest}");
        assert!(digest.contains("n0.dev0=2"), "{digest}");
        assert!(digest.contains("no-usable-device=1"), "{digest}");
    }
}
