//! Regenerate Figs. 7–14: scalability (speedup vs 1 node) and absolute
//! performance (GFLOPS) of each application on 1–16 GTX480 nodes, for the
//! paper's three series — Satin, Cashmere with non-optimized kernels,
//! Cashmere with optimized kernels.
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin scaling              # all apps
//! cargo run --release -p cashmere-bench --bin scaling -- matmul    # one app
//! cargo run --release -p cashmere-bench --bin scaling -- --faults plan.json
//! ```
//!
//! With `--faults`, the JSON fault plan is injected into every run it
//! validates for (a plan crashing node 2 skips the 1- and 2-node runs) and
//! each affected run's failure accounting is printed under its row.
//!
//! With `--trace out.json`, every run writes a Chrome trace + balancer
//! audit log (`out.<app>.<series>.<n>n.json`); `--explain` prints each
//! run's critical-path and metrics summaries.

use cashmere::ClusterSpec;
use cashmere_bench::{
    fault_plan_from_args, obs_args, report_run, run_app_observed, write_json, AppId, ObsArgs,
    Series, Table,
};
use cashmere_des::fault::FaultPlan;
use serde::Serialize;

const NODE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

#[derive(Serialize)]
struct Point {
    app: String,
    series: String,
    nodes: usize,
    makespan_s: f64,
    speedup: f64,
    gflops: f64,
    steals_ok: u64,
}

fn figure_number(app: AppId) -> (&'static str, &'static str) {
    match app {
        AppId::Raytracer => ("Fig. 7", "Fig. 8"),
        AppId::Matmul => ("Fig. 9", "Fig. 10"),
        AppId::Kmeans => ("Fig. 11", "Fig. 12"),
        AppId::Nbody => ("Fig. 13", "Fig. 14"),
    }
}

fn run_one(app: AppId, faults: &FaultPlan, obs: &ObsArgs, json: &mut Vec<Point>) {
    let (fig_scal, fig_abs) = figure_number(app);
    println!(
        "{fig_scal} (scalability) / {fig_abs} (absolute performance): {} up to 16 GTX480 nodes\n",
        app.name()
    );
    let mut t = Table::new(&["series", "nodes", "makespan", "speedup", "GFLOPS", "steals"]);
    for series in Series::ALL {
        let mut base: Option<f64> = None;
        for nodes in NODE_COUNTS {
            let spec = ClusterSpec::homogeneous(nodes, "gtx480");
            let (r, cap) = run_app_observed(app, series, &spec, 42, faults.clone(), obs.enabled());
            if let Some(f) = &r.failure_summary {
                for line in f.lines() {
                    println!("    [{} n={nodes}] {line}", series.name());
                }
            }
            if let Some(cap) = &cap {
                let label = format!("{}.{}.{}n", app.name(), series.name(), nodes);
                report_run(obs, &label, cap);
            }
            let b = *base.get_or_insert(r.makespan_s);
            let speedup = b / r.makespan_s;
            t.row(vec![
                series.name().to_string(),
                nodes.to_string(),
                format!("{:.2}s", r.makespan_s),
                format!("{speedup:.2}"),
                format!("{:.0}", r.gflops),
                r.steals_ok.to_string(),
            ]);
            json.push(Point {
                app: app.name().to_string(),
                series: series.name().to_string(),
                nodes,
                makespan_s: r.makespan_s,
                speedup,
                gflops: r.gflops,
                steals_ok: r.steals_ok,
            });
        }
    }
    println!("{}", t.render());
}

fn main() {
    let (faults, rest) = fault_plan_from_args();
    let (obs, rest) = obs_args(rest);
    let arg = rest.get(1).cloned();
    let apps: Vec<AppId> = match arg.as_deref() {
        None => AppId::ALL.to_vec(),
        Some(s) => match AppId::parse(s) {
            Some(a) => vec![a],
            None => {
                eprintln!("unknown app `{s}` (raytracer|matmul|kmeans|nbody)");
                std::process::exit(2);
            }
        },
    };
    let mut json = Vec::new();
    for app in &apps {
        run_one(*app, &faults, &obs, &mut json);
    }
    // Single-app runs get their own file so they never clobber the full
    // four-app dataset.
    let name = match &apps[..] {
        [one] if apps.len() != AppId::ALL.len() => {
            format!("fig7_14_scaling_{}", one.name().replace('-', ""))
        }
        _ => "fig7_14_scaling".to_string(),
    };
    write_json(&name, &json);
    println!(
        "expected shape (paper): Cashmere scales at least as well as Satin at\n\
         ~an order of magnitude higher absolute performance; optimized matmul\n\
         flattens with node count (network-bound); k-means and n-body scale\n\
         near-linearly."
    );
}
