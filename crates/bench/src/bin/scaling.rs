//! Regenerate Figs. 7–14: scalability (speedup vs 1 node) and absolute
//! performance (GFLOPS) of each application on 1–16 GTX480 nodes, for the
//! paper's three series — Satin, Cashmere with non-optimized kernels,
//! Cashmere with optimized kernels.
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin scaling              # all apps
//! cargo run --release -p cashmere-bench --bin scaling -- matmul    # one app
//! cargo run --release -p cashmere-bench --bin scaling -- --jobs 4
//! cargo run --release -p cashmere-bench --bin scaling -- --faults plan.json
//! cargo run --release -p cashmere-bench --bin scaling -- --dump-scenario
//! cargo run --release -p cashmere-bench --bin scaling -- --scenario s.json
//! ```
//!
//! The bin is a thin preset layer: it constructs one [`Scenario`] per
//! (app, series, nodes) point and fans them out over the sweep executor.
//! `--dump-scenario` prints the resolved scenario list instead of running;
//! `--scenario file.json` runs an arbitrary spec through the same driver.
//!
//! With `--jobs N` the points run on N worker threads; output is
//! reassembled in declared order so it is byte-identical to `--jobs 1`
//! (each point owns its `Sim` and seed).
//!
//! With `--faults`, the JSON fault plan is injected into every run it
//! validates for (a plan crashing node 2 skips the 1- and 2-node runs) and
//! each affected run's failure accounting is printed under its row.
//!
//! With `--trace out.json`, every run writes a Chrome trace + balancer
//! audit log; `--explain` prints each run's critical-path and metrics
//! summaries.

use cashmere::ClusterSpec;
use cashmere_bench::{
    cli, report_run, run_scenario, sweep, write_report, AppId, ObsArgs, Scenario, ScenarioRun,
    Series, Table,
};
use serde::Serialize;

const NODE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

#[derive(Serialize)]
struct Point {
    app: String,
    series: String,
    nodes: usize,
    makespan_s: f64,
    speedup: f64,
    gflops: f64,
    steals_ok: u64,
}

fn figure_number(app: AppId) -> (&'static str, &'static str) {
    match app {
        AppId::Raytracer => ("Fig. 7", "Fig. 8"),
        AppId::Matmul => ("Fig. 9", "Fig. 10"),
        AppId::Kmeans => ("Fig. 11", "Fig. 12"),
        AppId::Nbody => ("Fig. 13", "Fig. 14"),
    }
}

/// Render one app's table from its sweep results, consuming them in the
/// declared (series × nodes) order so stdout matches the sequential run.
fn report_one(
    app: AppId,
    obs: &ObsArgs,
    results: &[(&Scenario, ScenarioRun)],
    json: &mut Vec<Point>,
) {
    let (fig_scal, fig_abs) = figure_number(app);
    println!(
        "{fig_scal} (scalability) / {fig_abs} (absolute performance): {} up to 16 GTX480 nodes\n",
        app.name()
    );
    let mut t = Table::new(&["series", "nodes", "makespan", "speedup", "GFLOPS", "steals"]);
    let mut base: Option<(String, f64)> = None;
    for (sc, run) in results {
        let r = &run.outcome;
        if let Some(f) = &r.failure_summary {
            for line in f.lines() {
                println!("    [{} n={}] {line}", r.series, r.nodes);
            }
        }
        if let Some(cap) = &run.cap {
            report_run(obs, &sc.name, cap);
        }
        // Speedup baseline is the first (1-node) run of each series.
        let b = match &base {
            Some((s, b)) if *s == r.series => *b,
            _ => {
                base = Some((r.series.clone(), r.makespan_s));
                r.makespan_s
            }
        };
        let speedup = b / r.makespan_s;
        t.row(vec![
            r.series.clone(),
            r.nodes.to_string(),
            format!("{:.2}s", r.makespan_s),
            format!("{speedup:.2}"),
            format!("{:.0}", r.gflops),
            r.steals_ok.to_string(),
        ]);
        json.push(Point {
            app: r.app.clone(),
            series: r.series.clone(),
            nodes: r.nodes,
            makespan_s: r.makespan_s,
            speedup,
            gflops: r.gflops,
            steals_ok: r.steals_ok,
        });
    }
    println!("{}", t.render());
}

fn main() {
    let (common, rest) = cli::common_args();
    if cli::handle_scenario(&common) {
        return;
    }
    let arg = rest.get(1).cloned();
    let apps: Vec<AppId> = match arg.as_deref() {
        None => AppId::ALL.to_vec(),
        Some(s) => match AppId::parse(s) {
            Some(a) => vec![a],
            None => {
                eprintln!("unknown app `{s}` (raytracer|matmul|kmeans|nbody)");
                std::process::exit(2);
            }
        },
    };
    // Every (app, series, nodes) point is an independent scenario; fan
    // them all out and reassemble in declared order.
    let mut scenarios = Vec::new();
    for app in &apps {
        for series in Series::ALL {
            for nodes in NODE_COUNTS {
                let spec = ClusterSpec::homogeneous(nodes, "gtx480");
                scenarios.push(cli::apply_overrides(
                    Scenario::paper(*app, series, &spec, 42),
                    &common,
                ));
            }
        }
    }
    if common.dump {
        cli::dump_scenarios(&scenarios);
        return;
    }
    let results = sweep(scenarios.clone(), common.jobs, |sc| run_scenario(&sc));
    let results: Vec<(&Scenario, ScenarioRun)> = scenarios.iter().zip(results).collect();
    let mut json = Vec::new();
    let per_app = Series::ALL.len() * NODE_COUNTS.len();
    for (i, app) in apps.iter().enumerate() {
        report_one(
            *app,
            &common.obs,
            &results[i * per_app..(i + 1) * per_app],
            &mut json,
        );
    }
    // Single-app runs get their own file so they never clobber the full
    // four-app dataset.
    let name = match &apps[..] {
        [one] if apps.len() != AppId::ALL.len() => {
            format!("fig7_14_scaling_{}", one.token())
        }
        _ => "fig7_14_scaling".to_string(),
    };
    write_report(&name, &scenarios, &json);
    println!(
        "expected shape (paper): Cashmere scales at least as well as Satin at\n\
         ~an order of magnitude higher absolute performance; optimized matmul\n\
         flattens with node count (network-bound); k-means and n-body scale\n\
         near-linearly."
    );
    cli::finish(&common, &scenarios);
}
