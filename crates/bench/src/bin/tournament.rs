//! Policy tournament: placement × steal policies × scenario catalog ×
//! fault plans, ranked into one matrix artifact — then the advisor loop is
//! closed: the top what-if recommendation is re-run under every placement
//! policy to see which of them actually realize the predicted win.
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin tournament
//! cargo run --release -p cashmere-bench --bin tournament -- \
//!     bench/scenarios/hetero_table3.json bench/scenarios/chaos_rejoin.json
//! cargo run --release -p cashmere-bench --bin tournament -- \
//!     bench/scenarios/smoke.json --placements scenario,static-table \
//!     --steals uniform-random,round-robin-scan --no-advise --jobs 4
//! cargo run --release -p cashmere-bench --bin tournament -- --dump-scenario
//! ```
//!
//! Positional arguments are scenario files forming the catalog; with none,
//! the built-in catalog runs (`paper_kmeans_4n`, `hetero_table3`,
//! `chaos_rejoin` from `bench/scenarios/`). Each catalog entry is crossed
//! with every `--placements` policy (default: all six) and every
//! `--steals` policy (default: all three). Entries that declare a fault
//! plan run twice — once fault-free (`none`) and once with the plan
//! (`declared`) — so the matrix shows which policies hold up under churn.
//! Rows are ranked by makespan within each `(scenario, faults)` group.
//!
//! Every run is enumerated up front in declared order and fanned out over
//! the sweep executor, so the artifact (`bench/out/tournament.json`, or
//! `tournament_<first-scenario>` for an explicit catalog) is byte-identical
//! at any `--jobs` width.
//!
//! The closing loop (skip with `--no-advise`): the advisor runs on the
//! first catalog entry (fault-free arm), its top measured what-if
//! recommendation is taken, and the same perturbation is re-applied under
//! each placement policy. A policy "realizes" the prediction when its own
//! measured delta reaches the predicted one; policies that route work
//! differently (round-robin, static-table) typically leave part of the
//! predicted win on the table, which is exactly what the section shows.

use cashmere::balancer::Policy;
use cashmere_bench::{advise, cli, run_scenario, sweep, write_report, PerturbSet, Scenario, Table};
use cashmere_satin::StealKind;
use serde::Serialize;
use std::path::PathBuf;

#[derive(Serialize)]
struct MatrixRow {
    scenario: String,
    /// `none` (fault-free) or `declared` (the scenario's own plan).
    faults: String,
    placement: String,
    steal: String,
    /// 1-based rank by makespan within the `(scenario, faults)` group.
    rank: usize,
    makespan_s: f64,
    gflops: f64,
    steals_ok: u64,
    cpu_fallbacks: u64,
    jobs_restarted: u64,
}

#[derive(Serialize)]
struct AdvisorCloseRow {
    placement: String,
    baseline_s: f64,
    perturbed_s: f64,
    realized_delta_s: f64,
    /// Realized / predicted delta, in percent (predicted under the
    /// scenario policy).
    realized_pct: f64,
}

#[derive(Serialize)]
struct AdvisorClose {
    scenario: String,
    what_if: String,
    predicted_delta_s: f64,
    rows: Vec<AdvisorCloseRow>,
}

#[derive(Serialize)]
struct TournamentData {
    matrix: Vec<MatrixRow>,
    advisor: Option<AdvisorClose>,
}

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// `bench/scenarios/<file>` relative to the workspace root.
fn catalog_path(file: &str) -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("bench/scenarios");
    dir.join(file)
}

fn parse_list<T: Copy>(
    flag: &str,
    value: &str,
    parse: impl Fn(&str) -> Option<T>,
    options: &str,
) -> Vec<T> {
    let items: Vec<T> = value
        .split(',')
        .map(|s| {
            parse(s.trim()).unwrap_or_else(|| fail(&format!("{flag}: unknown `{s}` ({options})")))
        })
        .collect();
    if items.is_empty() {
        fail(&format!("{flag} expects a comma-separated list"));
    }
    items
}

fn main() {
    let (common, rest) = cli::common_args();

    let mut placements: Vec<Policy> = Policy::ALL.to_vec();
    let mut steals: Vec<StealKind> = StealKind::ALL.to_vec();
    let mut advisor_loop = true;
    let mut files: Vec<String> = Vec::new();
    let mut it = rest.into_iter().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--placements" => {
                placements = parse_list(
                    "--placements",
                    &value("--placements"),
                    Policy::parse,
                    "scenario|round-robin|fastest-only|heft|dynamic-chunk|static-table",
                );
            }
            "--steals" => {
                steals = parse_list(
                    "--steals",
                    &value("--steals"),
                    StealKind::parse,
                    "uniform-random|recent-victim|round-robin-scan",
                );
            }
            "--no-advise" => advisor_loop = false,
            other if !other.starts_with('-') => files.push(other.to_string()),
            other => fail(&format!(
                "unknown argument `{other}` (tournament takes scenario files, \
                 --placements LIST, --steals LIST, --no-advise)"
            )),
        }
    }

    // The catalog: explicit files, or the built-in trio. `--scenario` (the
    // shared flag) prepends like a positional file, so both spellings work.
    if let Some(path) = &common.scenario {
        files.insert(0, path.clone());
    }
    let default_catalog = files.is_empty();
    if default_catalog {
        for f in [
            "paper_kmeans_4n.json",
            "hetero_table3.json",
            "chaos_rejoin.json",
        ] {
            files.push(catalog_path(f).to_string_lossy().into_owned());
        }
    }
    let catalog: Vec<Scenario> = files
        .iter()
        .map(|path| match Scenario::load(path) {
            Ok(sc) => {
                let sc = cli::apply_overrides(sc, &common);
                if let Err(e) = sc.validate() {
                    fail(&format!("{path}: invalid scenario: {e}"));
                }
                sc
            }
            Err(e) => fail(&e),
        })
        .collect();

    // Enumerate every cell in declared order: scenario → fault arm →
    // placement → steal. Fault-free arms strip the declared plan.
    let mut cells: Vec<(String, String, Policy, StealKind)> = Vec::new();
    let mut runs: Vec<Scenario> = Vec::new();
    for base in &catalog {
        let mut arms = vec![("none", base.clone().with_faults_cleared())];
        if base.faults.is_some() {
            arms.push(("declared", base.clone()));
        }
        for (arm, arm_sc) in &arms {
            for &p in &placements {
                for &s in &steals {
                    let sc = arm_sc
                        .clone()
                        .named(format!("{}.{}.{}.{}", base.name, arm, p.name(), s.name()))
                        .with_policy(p)
                        .with_steal(s);
                    cells.push((base.name.clone(), arm.to_string(), p, s));
                    runs.push(sc);
                }
            }
        }
    }

    if common.dump {
        cli::dump_scenarios(&runs);
        return;
    }

    println!(
        "Policy tournament: {} scenario(s) x {} placement(s) x {} steal(s) = {} runs",
        catalog.len(),
        placements.len(),
        steals.len(),
        runs.len()
    );

    let outcomes = sweep(runs.clone(), common.jobs, |sc| run_scenario(&sc).outcome);

    // Rank within each (scenario, faults) group: stable sort by makespan,
    // ties break toward declared order — deterministic at any --jobs.
    let mut matrix: Vec<MatrixRow> = Vec::new();
    let mut groups: Vec<(String, String)> = Vec::new();
    for (name, arm, _, _) in &cells {
        let key = (name.clone(), arm.clone());
        if !groups.contains(&key) {
            groups.push(key);
        }
    }
    for (gname, garm) in &groups {
        let mut members: Vec<usize> = (0..cells.len())
            .filter(|&i| &cells[i].0 == gname && &cells[i].1 == garm)
            .collect();
        members.sort_by(|&a, &b| {
            outcomes[a]
                .makespan_s
                .total_cmp(&outcomes[b].makespan_s)
                .then(a.cmp(&b))
        });
        for (rank, &i) in members.iter().enumerate() {
            let o = &outcomes[i];
            matrix.push(MatrixRow {
                scenario: gname.clone(),
                faults: garm.clone(),
                placement: cells[i].2.name().to_string(),
                steal: cells[i].3.name().to_string(),
                rank: rank + 1,
                makespan_s: o.makespan_s,
                gflops: o.gflops,
                steals_ok: o.steals_ok,
                cpu_fallbacks: o.cpu_fallbacks,
                jobs_restarted: o.recovery.as_ref().map_or(0, |r| r.jobs_restarted),
            });
        }
    }

    for (gname, garm) in &groups {
        println!("\n{gname} (faults: {garm})\n");
        let mut t = Table::new(&[
            "rank",
            "placement",
            "steal",
            "makespan",
            "GFLOPS",
            "steals",
            "fallbacks",
        ]);
        for r in matrix
            .iter()
            .filter(|r| &r.scenario == gname && &r.faults == garm)
        {
            t.row(vec![
                r.rank.to_string(),
                r.placement.clone(),
                r.steal.clone(),
                format!("{:.3}s", r.makespan_s),
                format!("{:.0}", r.gflops),
                r.steals_ok.to_string(),
                r.cpu_fallbacks.to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    // Close the advisor loop: ask the advisor for its best what-if on one
    // catalog entry (fault-free arm), then re-run that perturbation under
    // every placement policy (default steal) and report how much of the
    // predicted delta each one realizes. A heterogeneous entry is
    // preferred — on single-device nodes every placement routes
    // identically and trivially realizes the full delta.
    let advisor = if advisor_loop {
        let base = catalog
            .iter()
            .find(|sc| sc.cluster().distinct_devices().len() > 1)
            .unwrap_or(&catalog[0])
            .clone()
            .with_faults_cleared();
        let cluster = base.cluster();
        let workload = format!("{} tournament base", base.name);
        let runner = |p: Option<&PerturbSet>, observe: bool| {
            let mut sc = base.clone().with_capture(observe);
            if let Some(p) = p {
                sc.perturb = Some(p.clone());
            }
            let run = run_scenario(&sc);
            (run.outcome.makespan_s, run.cap)
        };
        let run = advise(
            &workload,
            base.seed,
            &cluster,
            &[],
            &[0.5, 2.0],
            common.jobs,
            runner,
        )
        .unwrap_or_else(|e| fail(&e));
        // Rows sort by ascending delta (= makespan - baseline), so the
        // first row is the best candidate and a win is a negative delta.
        match run.json.report.rows.first() {
            Some(top) if top.delta_ns < 0 => {
                let spec = top.spec.clone();
                let predicted_s = -top.delta_ns as f64 / 1e9;
                let perturb = PerturbSet::parse_list(&spec)
                    .unwrap_or_else(|e| fail(&format!("advisor spec `{spec}`: {e}")));
                println!(
                    "\nadvisor recommends `{spec}` ({predicted_s:+.4}s predicted under the \
                     scenario policy); re-running it under every placement policy\n"
                );
                let pairs: Vec<Scenario> = placements
                    .iter()
                    .flat_map(|&p| {
                        let plain = base
                            .clone()
                            .named(format!("{}.advise.{}", base.name, p.name()))
                            .with_policy(p);
                        let perturbed = plain
                            .clone()
                            .named(format!("{}.advise.{}.whatif", base.name, p.name()))
                            .with_perturb(perturb.clone());
                        [plain, perturbed]
                    })
                    .collect();
                let measured = sweep(pairs, common.jobs, |sc| {
                    run_scenario(&sc).outcome.makespan_s
                });
                let mut rows = Vec::new();
                let mut t = Table::new(&["placement", "baseline", "what-if", "delta", "realized"]);
                for (k, &p) in placements.iter().enumerate() {
                    let (baseline_s, perturbed_s) = (measured[2 * k], measured[2 * k + 1]);
                    let realized = baseline_s - perturbed_s;
                    let pct = 100.0 * realized / predicted_s;
                    t.row(vec![
                        p.name().to_string(),
                        format!("{baseline_s:.3}s"),
                        format!("{perturbed_s:.3}s"),
                        format!("{realized:+.4}s"),
                        format!("{pct:.0}%"),
                    ]);
                    rows.push(AdvisorCloseRow {
                        placement: p.name().to_string(),
                        baseline_s,
                        perturbed_s,
                        realized_delta_s: realized,
                        realized_pct: pct,
                    });
                }
                println!("{}", t.render());
                Some(AdvisorClose {
                    scenario: base.name.clone(),
                    what_if: spec,
                    predicted_delta_s: predicted_s,
                    rows,
                })
            }
            _ => {
                println!("\nadvisor found no winning what-if; loop not closed");
                None
            }
        }
    } else {
        None
    };

    let name = if default_catalog {
        "tournament".to_string()
    } else {
        format!("tournament_{}", catalog[0].name)
    };
    write_report(&name, &catalog, &TournamentData { matrix, advisor });
    cli::finish(&common, &catalog);
}
