//! Regenerate Table III and Fig. 15: heterogeneous executions.
//!
//! Table III reports the absolute GFLOPS of each application on its
//! heterogeneous configuration; Fig. 15 compares the *efficiency* of those
//! runs — measured performance divided by the sum of single-node
//! performance over every node in the configuration (Sec. IV) — against
//! the efficiency of the homogeneous 16×GTX480 runs of Sec. V-B.
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin hetero
//! cargo run --release -p cashmere-bench --bin hetero -- --jobs 4
//! cargo run --release -p cashmere-bench --bin hetero -- --faults plan.json
//! cargo run --release -p cashmere-bench --bin hetero -- --dump-scenario
//! cargo run --release -p cashmere-bench --bin hetero -- --scenario s.json
//! ```
//!
//! The bin is a preset layer over [`Scenario`]: every calibration,
//! heterogeneous and homogeneous run is one scenario, all fanned out over
//! the sweep executor. `--dump-scenario` prints the resolved list instead
//! of running; `--scenario file.json` runs an arbitrary spec.
//!
//! With `--jobs N` the runs fan out over N worker threads; every run owns
//! its `Sim` and seed, and output is assembled in declared order, so
//! results are byte-identical to `--jobs 1`.
//!
//! With `--faults`, the JSON fault plan (node crashes, device failures,
//! lossy links, transient launch faults) is injected into the measured
//! heterogeneous runs and each run's failure accounting is printed; the
//! calibration runs stay fault-free.
//!
//! With `--trace out.json` each measured heterogeneous run writes a Chrome
//! trace plus a balancer audit log; `--explain` prints the critical-path
//! and metrics summaries after each run.

use cashmere::ClusterSpec;
use cashmere_bench::{
    cli, report_run, run_scenario, sweep, write_report, AppId, Scenario, Series, Table,
};
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct HeteroRow {
    app: String,
    configuration: String,
    nodes: usize,
    gflops: f64,
    hetero_efficiency: f64,
    homogeneous_efficiency: f64,
}

fn config_for(app: AppId) -> (ClusterSpec, &'static str) {
    match app {
        AppId::Raytracer | AppId::Matmul => (
            ClusterSpec::paper_hetero_small(),
            "10 gtx480, 2 c2050, 1 gtx680, 1 titan, 1 hd7970",
        ),
        AppId::Kmeans => (
            ClusterSpec::paper_hetero_kmeans(),
            "10 gtx480, 2 c2050, 1 gtx680, 1 titan, 1 hd7970, 7 k20, 1 xeon_phi",
        ),
        AppId::Nbody => (
            ClusterSpec::paper_hetero_nbody(),
            "10 gtx480, 2 c2050, 1 gtx680, 1 titan, 1 hd7970, 7 k20, 2 xeon_phi",
        ),
    }
}

/// What each scenario of the experiment feeds: the calibration runs
/// (single-node per distinct composition, 16× and 1× GTX480) are
/// fault-free and unobserved; only the measured heterogeneous run takes
/// the plan and the trace flags.
#[derive(Clone)]
enum Job {
    /// Single-node calibration for one distinct node composition.
    Single(AppId, Vec<String>),
    /// The measured heterogeneous run.
    Hetero(AppId),
    /// Homogeneous 16×GTX480 comparison run.
    Homo16(AppId),
    /// Homogeneous 1×GTX480 baseline run.
    Homo1(AppId),
}

fn main() {
    let (common, _rest) = cli::common_args();
    if cli::handle_scenario(&common) {
        return;
    }

    // Enumerate every run of the experiment up front, in declared order.
    // The `--policy`/`--steal` overrides reach every run; `--faults` and
    // the observability flags only the measured heterogeneous ones.
    let mut jobs: Vec<(Job, Scenario)> = Vec::new();
    let policy_only = |mut sc: Scenario| {
        if let Some(p) = common.policy {
            sc.policy.placement = p;
        }
        if let Some(s) = common.steal {
            sc.policy.steal = s;
        }
        sc
    };
    for app in AppId::ALL {
        let (spec, _) = config_for(app);
        let mut seen: Vec<&Vec<String>> = Vec::new();
        for devs in &spec.node_devices {
            if !seen.contains(&devs) {
                seen.push(devs);
                let one = ClusterSpec {
                    node_devices: vec![devs.clone()],
                };
                let sc = Scenario::paper(app, Series::CashmereOpt, &one, 42).named(format!(
                    "{}-single-{}",
                    app.token(),
                    devs.join(".")
                ));
                jobs.push((Job::Single(app, devs.clone()), policy_only(sc)));
            }
        }
        jobs.push((
            Job::Hetero(app),
            cli::apply_overrides(
                Scenario::paper(app, Series::CashmereOpt, &spec, 42)
                    .named(format!("{}-hetero", app.token())),
                &common,
            ),
        ));
        jobs.push((
            Job::Homo16(app),
            policy_only(Scenario::paper(
                app,
                Series::CashmereOpt,
                &ClusterSpec::homogeneous(16, "gtx480"),
                42,
            )),
        ));
        jobs.push((
            Job::Homo1(app),
            policy_only(Scenario::paper(
                app,
                Series::CashmereOpt,
                &ClusterSpec::homogeneous(1, "gtx480"),
                42,
            )),
        ));
    }
    let scenarios: Vec<Scenario> = jobs.iter().map(|(_, sc)| sc.clone()).collect();
    if common.dump {
        cli::dump_scenarios(&scenarios);
        return;
    }
    println!("Table III + Fig. 15: heterogeneous executions (optimized kernels)\n");

    let results = sweep(jobs, common.jobs, |(job, sc)| (job, run_scenario(&sc)));

    let mut json = Vec::new();
    let mut t3 = Table::new(&["application", "GFLOPS", "configuration"]);
    let mut f15 = Table::new(&[
        "application",
        "heterogeneous eff.",
        "homogeneous eff. (16 gtx480)",
    ]);

    // Reassemble per app, consuming the results in declared order.
    let mut single: HashMap<(AppId, Vec<String>), f64> = HashMap::new();
    let mut hetero_runs = HashMap::new();
    let mut homo16_runs: HashMap<AppId, f64> = HashMap::new();
    let mut homo1_runs: HashMap<AppId, f64> = HashMap::new();
    for (job, run) in results {
        match job {
            Job::Single(app, devs) => {
                single.insert((app, devs), run.outcome.gflops);
            }
            Job::Hetero(app) => {
                hetero_runs.insert(app, run);
            }
            Job::Homo16(app) => {
                homo16_runs.insert(app, run.outcome.gflops);
            }
            Job::Homo1(app) => {
                homo1_runs.insert(app, run.outcome.gflops);
            }
        }
    }

    for app in AppId::ALL {
        let (spec, desc) = config_for(app);
        let attainable: f64 = spec
            .node_devices
            .iter()
            .map(|d| single[&(app, d.clone())])
            .sum();
        let run = &hetero_runs[&app];
        let hetero = &run.outcome;
        if let Some(f) = &hetero.failure_summary {
            println!("{} under injected faults:", app.name());
            for line in f.lines() {
                println!("  {line}");
            }
            println!();
        }
        if let Some(cap) = &run.cap {
            report_run(&common.obs, app.name(), cap);
        }
        let hetero_eff = hetero.gflops / attainable;
        let homo_eff = homo16_runs[&app] / (16.0 * homo1_runs[&app]);

        t3.row(vec![
            app.name().to_string(),
            format!("{:.0}", hetero.gflops),
            desc.to_string(),
        ]);
        f15.row(vec![
            app.name().to_string(),
            format!("{:.1}%", hetero_eff * 100.0),
            format!("{:.1}%", homo_eff * 100.0),
        ]);
        json.push(HeteroRow {
            app: app.name().to_string(),
            configuration: desc.to_string(),
            nodes: spec.nodes(),
            gflops: hetero.gflops,
            hetero_efficiency: hetero_eff,
            homogeneous_efficiency: homo_eff,
        });
    }

    println!("Table III: performance of the heterogeneous executions\n");
    println!("{}", t3.render());
    println!("Fig. 15: efficiency of heterogeneous executions\n");
    println!("{}", f15.render());
    write_report("table3_fig15_hetero", &scenarios, &json);
    println!(
        "expected shape (paper): >90% efficiency for three of the four\n\
         applications, matmul lower (network-bound); heterogeneous efficiency\n\
         comparable to the homogeneous runs."
    );
    cli::finish(&common, &scenarios);
}
