//! Regenerate Table III and Fig. 15: heterogeneous executions.
//!
//! Table III reports the absolute GFLOPS of each application on its
//! heterogeneous configuration; Fig. 15 compares the *efficiency* of those
//! runs — measured performance divided by the sum of single-node
//! performance over every node in the configuration (Sec. IV) — against
//! the efficiency of the homogeneous 16×GTX480 runs of Sec. V-B.
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin hetero
//! cargo run --release -p cashmere-bench --bin hetero -- --faults plan.json
//! ```
//!
//! With `--faults`, the JSON fault plan (node crashes, device failures,
//! lossy links, transient launch faults) is injected into the measured
//! heterogeneous runs and each run's failure accounting is printed; the
//! single-node calibration runs stay fault-free.
//!
//! With `--trace out.json` each measured heterogeneous run writes a Chrome
//! trace (`out.<app>.json`) plus a balancer audit log; `--explain` prints
//! the critical-path and metrics summaries after each run.

use cashmere::ClusterSpec;
use cashmere_bench::{
    fault_plan_from_args, obs_args, report_run, run_app, run_app_observed, write_json, AppId,
    Series, Table,
};
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct HeteroRow {
    app: String,
    configuration: String,
    nodes: usize,
    gflops: f64,
    hetero_efficiency: f64,
    homogeneous_efficiency: f64,
}

fn config_for(app: AppId) -> (ClusterSpec, &'static str) {
    match app {
        AppId::Raytracer | AppId::Matmul => (
            ClusterSpec::paper_hetero_small(),
            "10 gtx480, 2 c2050, 1 gtx680, 1 titan, 1 hd7970",
        ),
        AppId::Kmeans => (
            ClusterSpec::paper_hetero_kmeans(),
            "10 gtx480, 2 c2050, 1 gtx680, 1 titan, 1 hd7970, 7 k20, 1 xeon_phi",
        ),
        AppId::Nbody => (
            ClusterSpec::paper_hetero_nbody(),
            "10 gtx480, 2 c2050, 1 gtx680, 1 titan, 1 hd7970, 7 k20, 2 xeon_phi",
        ),
    }
}

fn main() {
    let (faults, rest) = fault_plan_from_args();
    let (obs, _rest) = obs_args(rest);
    println!("Table III + Fig. 15: heterogeneous executions (optimized kernels)\n");
    let mut json = Vec::new();
    let mut t3 = Table::new(&["application", "GFLOPS", "configuration"]);
    let mut f15 = Table::new(&[
        "application",
        "heterogeneous eff.",
        "homogeneous eff. (16 gtx480)",
    ]);

    for app in AppId::ALL {
        let (spec, desc) = config_for(app);
        // Single-node performance per distinct node composition (a node may
        // carry two devices, e.g. K20 + Xeon Phi).
        let mut single: HashMap<Vec<String>, f64> = HashMap::new();
        for devs in &spec.node_devices {
            if single.contains_key(devs) {
                continue;
            }
            let one = ClusterSpec {
                node_devices: vec![devs.clone()],
            };
            let r = run_app(app, Series::CashmereOpt, &one, 42);
            single.insert(devs.clone(), r.gflops);
        }
        let attainable: f64 = spec.node_devices.iter().map(|d| single[d]).sum();

        let (hetero, cap) = run_app_observed(
            app,
            Series::CashmereOpt,
            &spec,
            42,
            faults.clone(),
            obs.enabled(),
        );
        if let Some(f) = &hetero.failure_summary {
            println!("{} under injected faults:", app.name());
            for line in f.lines() {
                println!("  {line}");
            }
            println!();
        }
        if let Some(cap) = &cap {
            report_run(&obs, app.name(), cap);
        }
        let hetero_eff = hetero.gflops / attainable;

        // Homogeneous comparison: 16 GTX480 nodes vs 16× one GTX480 node.
        let homo16 = run_app(
            app,
            Series::CashmereOpt,
            &ClusterSpec::homogeneous(16, "gtx480"),
            42,
        );
        let homo1 = run_app(
            app,
            Series::CashmereOpt,
            &ClusterSpec::homogeneous(1, "gtx480"),
            42,
        );
        let homo_eff = homo16.gflops / (16.0 * homo1.gflops);

        t3.row(vec![
            app.name().to_string(),
            format!("{:.0}", hetero.gflops),
            desc.to_string(),
        ]);
        f15.row(vec![
            app.name().to_string(),
            format!("{:.1}%", hetero_eff * 100.0),
            format!("{:.1}%", homo_eff * 100.0),
        ]);
        json.push(HeteroRow {
            app: app.name().to_string(),
            configuration: desc.to_string(),
            nodes: spec.nodes(),
            gflops: hetero.gflops,
            hetero_efficiency: hetero_eff,
            homogeneous_efficiency: homo_eff,
        });
    }

    println!("Table III: performance of the heterogeneous executions\n");
    println!("{}", t3.render());
    println!("Fig. 15: efficiency of heterogeneous executions\n");
    println!("{}", f15.render());
    write_json("table3_fig15_hetero", &json);
    println!(
        "expected shape (paper): >90% efficiency for three of the four\n\
         applications, matmul lower (network-bound); heterogeneous efficiency\n\
         comparable to the homogeneous runs."
    );
}
