//! Self-benchmarking harness: measures the simulator's own hot paths and
//! writes `BENCH_sim.json` at the repo root so the perf trajectory of the
//! substrate is tracked alongside the code.
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin selfbench
//! cargo run --release -p cashmere-bench --bin selfbench -- --quick
//! cargo run --release -p cashmere-bench --bin selfbench -- --quick --check
//! cargo run --release -p cashmere-bench --bin selfbench -- --dump-scenario
//! ```
//!
//! The shared `--scenario file.json` flag runs an arbitrary cluster
//! scenario through the common driver; `--dump-scenario` prints the
//! in-process scaling sweep's resolved specs (the engine microbenchmarks
//! are not cluster runs and have none).
//!
//! Measured quantities:
//!
//! - **engine events/sec** over a representative workload mix — bulk
//!   schedule+run, steady-state event chains with realistic capture sizes,
//!   and schedule+cancel churn (the work-stealing engine arms and disarms
//!   timeouts constantly);
//! - **schedule/cancel ops/sec** in isolation;
//! - **sweep wall time** of an in-process scaling sweep (k-means, three
//!   series, 1–16 nodes) at `--jobs 1` vs all cores;
//! - **per-bin wall proxies** for the `scaling` and `fig6` workloads;
//! - **per-subsystem wall shares** from a self-profiled pass over the same
//!   workloads (see `cashmere_des::obs::prof`), plus host provenance
//!   (logical cores, repetition counts, quick-vs-full) so the numbers'
//!   context is machine-readable.
//!
//! With `--check`, the previously committed `BENCH_sim.json` is read
//! *before* being overwritten and the run fails (exit 1) if engine
//! events/sec regressed more than 30% against it — the CI smoke gate. A
//! failure prints a counters-only [`RunDiff`] digest ranking which measured
//! quantity moved the most, so the log explains the regression instead of
//! just flagging it. `--quick` shrinks repetition counts for CI.

use cashmere::ClusterSpec;
use cashmere_apps::KernelSet;
use cashmere_bench::{
    cli, default_jobs, kernel_gflops, run_scenario, subsystem_rows, sweep, AppId, Scenario, Series,
    SubsystemShare,
};
use cashmere_des::obs::{prof, RunDiff, RunFingerprint};
use cashmere_des::{Sim, SimTime};
use cashmere_hwdesc::DeviceKind;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize, Deserialize)]
struct EngineNumbers {
    /// Aggregate events/sec over the representative mix below — the
    /// regression-gated headline number.
    events_per_sec: f64,
    schedule_run_events_per_sec: f64,
    churn_events_per_sec: f64,
    schedule_cancel_ops_per_sec: f64,
}

#[derive(Serialize, Deserialize)]
struct SweepNumbers {
    points: usize,
    jobs: usize,
    wall_s_jobs1: f64,
    wall_s_jobs_n: f64,
    speedup: f64,
    host_cores: usize,
}

#[derive(Serialize, Deserialize)]
struct BinNumbers {
    scaling_kmeans_wall_s: f64,
    fig6_kernels_wall_s: f64,
}

#[derive(Serialize, Deserialize, Default)]
struct KernelNumbers {
    /// Sampled kernel measurements/sec over the fig6 corpus (4 apps × 7
    /// devices, optimized kernel set) on the register-bytecode VM — the
    /// default engine and the regression-gated kernel-path floor.
    vm_measurements_per_sec: f64,
    /// Same corpus on the reference tree-walking interpreter.
    tree_measurements_per_sec: f64,
    /// VM throughput over tree throughput.
    vm_speedup_vs_tree: f64,
}

/// What kind of host produced the numbers, machine-readable: the "1-core
/// CI runner, sweep parallelism not observable" caveat as data instead of
/// a prose note, plus the iteration counts the measurements used.
#[derive(Serialize, Deserialize)]
struct HostProvenance {
    /// Logical cores available to the process — the ceiling on
    /// `sweep.speedup`.
    logical_cores: usize,
    /// Quick (CI) or full repetition counts.
    mode: String,
    /// Best-of repetitions for the engine microbenchmarks.
    engine_reps: usize,
    /// Events per engine microbenchmark repetition.
    engine_events: u64,
    /// Best-of repetitions for the kernel-corpus passes.
    kernel_reps: usize,
    /// Un-timed warm-up sweeps before the jobs=1 / jobs=N measurements.
    sweep_warmup_runs: usize,
}

#[derive(Serialize, Deserialize)]
struct SelfBench {
    schema: u32,
    quick: bool,
    engine: EngineNumbers,
    sweep: SweepNumbers,
    bins: BinNumbers,
    /// Kernel-interpretation throughput (`None` in pre-VM baselines; the
    /// offline serde shim maps a missing field to `None`).
    kernels: Option<KernelNumbers>,
    /// Host description and measurement knobs (`None` in old baselines).
    host: Option<HostProvenance>,
    /// Per-subsystem wall share of a profiled pass (in-process scaling
    /// sweep + fig6 kernel corpus), heaviest first — so a regression
    /// report can say "mcl::execute grew 2.1x" instead of "events/sec
    /// dropped". `None` in pre-profiler baselines.
    subsystems: Option<Vec<SubsystemShare>>,
    /// Free-form history lines (e.g. the measured before/after of the engine
    /// rewrite that introduced this file). Carried forward verbatim from the
    /// committed baseline on every rewrite so the record survives re-runs.
    provenance: Vec<String>,
}

/// Bulk schedule + drain of `n` events; returns events fired.
fn schedule_run(n: u64) -> u64 {
    let mut sim: Sim<u64> = Sim::new(1);
    for i in 0..n {
        sim.schedule_at(SimTime::from_nanos(i % 977), move |w: &mut u64, _| {
            *w = w.wrapping_add(i);
        });
    }
    let mut world = 0u64;
    sim.run(&mut world);
    black_box(world);
    sim.events_fired()
}

/// Steady-state chains: `chains` in flight, `total` events overall. The
/// closure captures a node/job/generation payload like the work-stealing
/// engine's events, so the per-event storage cost is representative.
fn churn(chains: u64, total: u64) -> u64 {
    fn link(
        w: &mut (u64, u64),
        sim: &mut Sim<(u64, u64)>,
        node: usize,
        job: usize,
        generation: u64,
    ) {
        w.0 += 1;
        if w.0 < w.1 {
            let (n, j, g) = (node ^ 1, job + 1, generation);
            sim.schedule_in(SimTime::from_nanos(997), move |w: &mut (u64, u64), sim| {
                link(w, sim, n, j, g)
            });
        }
    }
    let mut sim: Sim<(u64, u64)> = Sim::new(1);
    for i in 0..chains {
        sim.schedule_at(SimTime::from_nanos(i), move |w: &mut (u64, u64), sim| {
            link(w, sim, i as usize, 0, i)
        });
    }
    let mut world = (0u64, total);
    sim.run(&mut world);
    sim.events_fired()
}

/// Schedule `n` events and cancel every one; returns ops (schedules +
/// cancels).
fn schedule_cancel(n: u64) -> u64 {
    let mut sim: Sim<u64> = Sim::new(1);
    let handles: Vec<_> = (0..n)
        .map(|i| {
            sim.schedule_at(SimTime::from_nanos(1 + i % 977), move |w: &mut u64, _| {
                *w = w.wrapping_add(i);
            })
        })
        .collect();
    for h in handles {
        assert!(sim.cancel(h));
    }
    let mut world = 0u64;
    sim.run(&mut world);
    2 * n
}

/// Best-of-`reps` wall time for `f`, returning (best_seconds, payload).
fn best_of<F: FnMut() -> u64>(reps: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut units = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        units = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, units)
}

fn engine_reps(quick: bool) -> usize {
    if quick {
        3
    } else {
        7
    }
}

fn engine_events(quick: bool) -> u64 {
    if quick {
        50_000
    } else {
        200_000
    }
}

fn kernel_reps(quick: bool) -> usize {
    // best-of-2 even in quick mode: the first corpus pass pays allocator
    // and cache warmup, and the VM gate below compares quick CI runs
    // against a committed full-run baseline.
    if quick {
        2
    } else {
        3
    }
}

fn measure_engine(quick: bool) -> EngineNumbers {
    let reps = engine_reps(quick);
    let n: u64 = engine_events(quick);
    let (t_sr, ev_sr) = best_of(reps, || schedule_run(n));
    let (t_ch, ev_ch) = best_of(reps, || churn(1_000, n));
    let (t_sc, ops_sc) = best_of(reps, || schedule_cancel(n));
    EngineNumbers {
        // Headline: total events (cancel pairs count as one event's worth
        // of queue work) over total best-case time across the mix.
        events_per_sec: (ev_sr + ev_ch + ops_sc / 2) as f64 / (t_sr + t_ch + t_sc),
        schedule_run_events_per_sec: ev_sr as f64 / t_sr,
        churn_events_per_sec: ev_ch as f64 / t_ch,
        schedule_cancel_ops_per_sec: ops_sc as f64 / t_sc,
    }
}

fn scaling_points(quick: bool) -> Vec<(Series, usize)> {
    let nodes: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let mut points = Vec::new();
    for series in Series::ALL {
        for &n in nodes {
            points.push((series, n));
        }
    }
    points
}

/// The in-process scaling sweep, phrased as [`Scenario`]s — the same specs
/// a `--dump-scenario` prints.
fn sweep_scenarios(points: &[(Series, usize)]) -> Vec<Scenario> {
    points
        .iter()
        .map(|&(series, nodes)| {
            let spec = ClusterSpec::homogeneous(nodes, "gtx480");
            Scenario::paper(AppId::Kmeans, series, &spec, 42)
        })
        .collect()
}

fn run_sweep(points: &[(Series, usize)], jobs: usize) -> f64 {
    let scenarios = sweep_scenarios(points);
    let t0 = Instant::now();
    let out = sweep(scenarios, jobs, |sc| run_scenario(&sc).outcome.makespan_s);
    black_box(out);
    t0.elapsed().as_secs_f64()
}

fn measure_sweep(quick: bool) -> SweepNumbers {
    let points = scaling_points(quick);
    let jobs = default_jobs();
    // Warm-up run so neither measured pass pays first-touch costs.
    run_sweep(&points, 1);
    let wall1 = run_sweep(&points, 1);
    let wall_n = run_sweep(&points, jobs);
    SweepNumbers {
        points: points.len(),
        jobs,
        wall_s_jobs1: wall1,
        wall_s_jobs_n: wall_n,
        speedup: wall1 / wall_n,
        host_cores: default_jobs(),
    }
}

fn measure_bins(quick: bool) -> BinNumbers {
    let sc = Scenario::paper(
        AppId::Kmeans,
        Series::CashmereOpt,
        &ClusterSpec::homogeneous(if quick { 4 } else { 16 }, "gtx480"),
        42,
    );
    let t0 = Instant::now();
    let _ = run_scenario(&sc);
    let scaling_wall = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for app in AppId::ALL {
        for dev in DeviceKind::ALL {
            black_box(kernel_gflops(app, KernelSet::Optimized, dev).unwrap_or(0.0));
        }
    }
    let fig6_wall = t0.elapsed().as_secs_f64();
    BinNumbers {
        scaling_kmeans_wall_s: scaling_wall,
        fig6_kernels_wall_s: fig6_wall,
    }
}

/// One timed pass over the fig6 corpus (every app × device, optimized
/// kernels) under `engine`; returns measurements performed.
fn fig6_corpus_pass(engine: cashmere_mcl::InterpEngine) -> u64 {
    let prev = cashmere_mcl::default_engine();
    cashmere_mcl::set_default_engine(engine);
    let mut n = 0u64;
    for app in AppId::ALL {
        for dev in DeviceKind::ALL {
            black_box(kernel_gflops(app, KernelSet::Optimized, dev).unwrap_or(0.0));
            n += 1;
        }
    }
    cashmere_mcl::set_default_engine(prev);
    n
}

/// A profiled pass over the hot paths (one in-process scaling sweep plus
/// one kernel-corpus pass), reduced to per-subsystem wall shares. Run
/// *after* the timed measurements so profiling overhead — near-zero, but
/// not zero — never skews the gated numbers.
fn measure_subsystems(quick: bool, jobs: usize, keep_profiling: bool) -> Vec<SubsystemShare> {
    prof::set_enabled(true);
    let _ = prof::take(); // fresh slate: only this pass is attributed
    run_sweep(&scaling_points(quick), jobs);
    fig6_corpus_pass(cashmere_mcl::default_engine());
    let rows = subsystem_rows(&prof::take());
    prof::set_enabled(keep_profiling);
    rows
}

fn measure_kernels(quick: bool) -> KernelNumbers {
    let reps = kernel_reps(quick);
    let (t_vm, n_vm) = best_of(reps, || fig6_corpus_pass(cashmere_mcl::InterpEngine::Vm));
    let (t_tree, n_tree) = best_of(reps, || fig6_corpus_pass(cashmere_mcl::InterpEngine::Tree));
    let vm = n_vm as f64 / t_vm;
    let tree = n_tree as f64 / t_tree;
    KernelNumbers {
        vm_measurements_per_sec: vm,
        tree_measurements_per_sec: tree,
        vm_speedup_vs_tree: vm / tree,
    }
}

/// The measured quantities as a flat counter map, for the regression
/// explainer's counters-only diff on a failed `--check`.
fn perf_counters(b: &SelfBench) -> std::collections::BTreeMap<String, f64> {
    [
        ("engine.events_per_sec", b.engine.events_per_sec),
        (
            "engine.schedule_run_events_per_sec",
            b.engine.schedule_run_events_per_sec,
        ),
        ("engine.churn_events_per_sec", b.engine.churn_events_per_sec),
        (
            "engine.schedule_cancel_ops_per_sec",
            b.engine.schedule_cancel_ops_per_sec,
        ),
        ("sweep.wall_s_jobs1", b.sweep.wall_s_jobs1),
        ("sweep.wall_s_jobs_n", b.sweep.wall_s_jobs_n),
        ("bins.scaling_kmeans_wall_s", b.bins.scaling_kmeans_wall_s),
        ("bins.fig6_kernels_wall_s", b.bins.fig6_kernels_wall_s),
        (
            "kernels.vm_measurements_per_sec",
            b.kernels
                .as_ref()
                .map_or(0.0, |k| k.vm_measurements_per_sec),
        ),
        (
            "kernels.tree_measurements_per_sec",
            b.kernels
                .as_ref()
                .map_or(0.0, |k| k.tree_measurements_per_sec),
        ),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .chain(b.subsystems.iter().flatten().map(|s| {
        // Shares, not milliseconds: host-speed-independent, so the diff
        // ranks redistribution of wall time, not machine noise.
        (format!("prof.{}.share", s.name), s.share)
    }))
    .collect()
}

/// The subsystem whose wall share moved most between two breakdowns:
/// `(name, old_share, new_share)`.
fn most_moved_subsystem(
    old: &[SubsystemShare],
    new: &[SubsystemShare],
) -> Option<(String, f64, f64)> {
    let share = |rows: &[SubsystemShare], name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .map_or(0.0, |r| r.share)
    };
    old.iter()
        .map(|r| r.name.clone())
        .chain(new.iter().map(|r| r.name.clone()))
        .map(|name| {
            let (o, n) = (share(old, &name), share(new, &name));
            (name, o, n)
        })
        .max_by(|a, b| {
            let (da, db) = ((a.2 - a.1).abs(), (b.2 - b.1).abs());
            da.partial_cmp(&db).unwrap()
        })
}

fn bench_path() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("BENCH_sim.json");
    p
}

fn main() {
    let (common, rest) = cli::common_args();
    if cli::handle_scenario(&common) {
        return;
    }
    let quick = rest.iter().any(|a| a == "--quick");
    let check = rest.iter().any(|a| a == "--check");
    if common.dump {
        // The engine microbenchmarks are not cluster runs; the in-process
        // scaling sweep is, so that is what a dump shows.
        cli::dump_scenarios(&sweep_scenarios(&scaling_points(quick)));
        return;
    }
    let path = bench_path();

    // Read the committed baseline *before* overwriting it.
    let baseline: Option<SelfBench> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());

    println!(
        "selfbench: measuring engine throughput ({} mode)",
        if quick { "quick" } else { "full" }
    );
    let engine = measure_engine(quick);
    println!("  events/sec (mix):      {:>12.0}", engine.events_per_sec);
    println!(
        "  schedule+run:          {:>12.0} ev/s",
        engine.schedule_run_events_per_sec
    );
    println!(
        "  churn chains:          {:>12.0} ev/s",
        engine.churn_events_per_sec
    );
    println!(
        "  schedule+cancel:       {:>12.0} op/s",
        engine.schedule_cancel_ops_per_sec
    );

    println!("selfbench: measuring parallel sweep (k-means scaling, in-process)");
    let sweep_n = measure_sweep(quick);
    println!(
        "  {} points: jobs=1 {:.2}s, jobs={} {:.2}s ({:.2}x, {} host cores)",
        sweep_n.points,
        sweep_n.wall_s_jobs1,
        sweep_n.jobs,
        sweep_n.wall_s_jobs_n,
        sweep_n.speedup,
        sweep_n.host_cores
    );

    println!("selfbench: per-bin wall proxies");
    let bins = measure_bins(quick);
    println!(
        "  scaling (k-means 16n): {:.3}s",
        bins.scaling_kmeans_wall_s
    );
    println!("  fig6 kernel sweep:     {:.3}s", bins.fig6_kernels_wall_s);

    println!("selfbench: kernel interpretation (fig6 corpus, VM vs tree)");
    let kernels = measure_kernels(quick);
    println!(
        "  vm:   {:>8.1} measurements/s",
        kernels.vm_measurements_per_sec
    );
    println!(
        "  tree: {:>8.1} measurements/s ({:.2}x speedup)",
        kernels.tree_measurements_per_sec, kernels.vm_speedup_vs_tree
    );

    println!("selfbench: per-subsystem wall shares (profiled pass)");
    let subsystems = measure_subsystems(quick, default_jobs(), common.obs.self_profile.is_some());
    for s in subsystems.iter().take(6) {
        println!("  {:>5.1}%  {}", s.share * 100.0, s.name);
    }

    let result = SelfBench {
        schema: 2,
        quick,
        engine,
        sweep: sweep_n,
        bins,
        kernels: Some(kernels),
        host: Some(HostProvenance {
            logical_cores: default_jobs(),
            mode: if quick { "quick" } else { "full" }.to_string(),
            engine_reps: engine_reps(quick),
            engine_events: engine_events(quick),
            kernel_reps: kernel_reps(quick),
            sweep_warmup_runs: 1,
        }),
        subsystems: Some(subsystems),
        provenance: baseline
            .as_ref()
            .map(|b| b.provenance.clone())
            .unwrap_or_default(),
    };
    let json = serde_json::to_string_pretty(&result).expect("selfbench serializes");
    match std::fs::write(&path, json + "\n") {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    if check {
        match baseline {
            Some(base) => {
                let old = base.engine.events_per_sec;
                let new = result.engine.events_per_sec;
                let ratio = new / old;
                println!(
                    "check: events/sec {:.0} vs committed baseline {:.0} ({:.2}x)",
                    new, old, ratio
                );
                // The kernel path is gated like the engine: the VM floor
                // must not regress more than 30% against the committed
                // baseline (skipped against pre-VM baselines, whose
                // `kernels` section deserializes as zeros).
                let base_kernels = base
                    .kernels
                    .as_ref()
                    .map_or(0.0, |k| k.vm_measurements_per_sec);
                let new_kernels = result
                    .kernels
                    .as_ref()
                    .map_or(0.0, |k| k.vm_measurements_per_sec);
                let kernel_ratio = if base_kernels > 0.0 {
                    new_kernels / base_kernels
                } else {
                    1.0
                };
                if base_kernels > 0.0 {
                    println!(
                        "check: kernel measurements/sec {new_kernels:.1} vs committed baseline {base_kernels:.1} ({kernel_ratio:.2}x)"
                    );
                }
                // >30% regression fails the build. Headroom below that is
                // noise on shared CI runners.
                if ratio < 0.70 || kernel_ratio < 0.70 {
                    if ratio < 0.70 {
                        eprintln!("check FAILED: engine events/sec regressed more than 30%");
                    }
                    if kernel_ratio < 0.70 {
                        eprintln!("check FAILED: kernel measurements/sec regressed more than 30%");
                    }
                    // Explain the failure: which measured quantity moved
                    // the most, ranked — the same digest the `diff` bin
                    // prints for cluster runs.
                    let d = RunDiff::compute(
                        &RunFingerprint::counters_only("committed baseline", perf_counters(&base)),
                        &RunFingerprint::counters_only("this run", perf_counters(&result)),
                    );
                    eprint!("{}", d.digest());
                    // Name the subsystem behind the regression: where the
                    // wall share redistributed to.
                    if let Some((name, old_share, new_share)) = most_moved_subsystem(
                        base.subsystems.as_deref().unwrap_or_default(),
                        result.subsystems.as_deref().unwrap_or_default(),
                    ) {
                        eprintln!(
                            "check: subsystem `{name}` moved most: {:.1}% -> {:.1}% of attributed wall",
                            old_share * 100.0,
                            new_share * 100.0
                        );
                    }
                    std::process::exit(1);
                }
                println!("check OK");
            }
            None => {
                // First run ever (or unreadable baseline): the freshly
                // written file becomes the baseline; nothing to compare.
                println!("check: no committed baseline, wrote initial BENCH_sim.json");
            }
        }
    }
    cli::finish(&common, &[]);
}
