//! What-if performance advisor: "optimize this next", answered by
//! deterministic re-execution.
//!
//! The advisor runs the workload once (observed), enumerates perturbation
//! candidates from the span trace and critical path, then re-executes the
//! whole simulation once per candidate with exactly one factor virtually
//! scaled — Coz-style virtual speedup on the DES — and ranks candidates by
//! *measured* makespan delta. Alongside the ranking it prints per-resource
//! utilization timelines and, for the speed-table experiments, an audit-log
//! replay counting how many balancer placements would flip.
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin advisor
//! cargo run --release -p cashmere-bench --bin advisor -- kmeans --nodes 8
//! cargo run --release -p cashmere-bench --bin advisor -- kmeans --hetero
//! cargo run --release -p cashmere-bench --bin advisor -- --what-if dev:*:2x --sweep 0.5,2
//! cargo run --release -p cashmere-bench --bin advisor -- --what-if dev:k20:2x+net:2x
//! cargo run --release -p cashmere-bench --bin advisor -- --jobs 4 --full-json
//! ```
//!
//! * `--what-if <spec>[,<spec>…]` — run these experiments instead of
//!   auto-enumerating; `+` inside one spec applies factors jointly.
//! * `--sweep f1,f2,…` — factor sweep (default `0.5,2`); with `--what-if`,
//!   each experiment is re-run at every factor.
//! * `--hetero` — the app's Table III heterogeneous configuration instead
//!   of homogeneous GTX480 nodes; `--nodes N` sets the homogeneous size.
//! * `--full-json` — additionally dump the complete occupancy step
//!   functions (`advisor_*_full.json`, megabytes at paper scale; the
//!   default artifact carries the compact per-lane summary).
//! * `--series`, `--seed`, `--jobs`, `--trace`, `--explain`,
//!   `--metrics-out`, `--scenario`, `--dump-scenario` — as in the other
//!   bench bins.
//!
//! The baseline is one [`Scenario`]; each experiment is the same scenario
//! with one `perturb` entry set. Experiments fan out over `--jobs` worker
//! threads; the report (text and `bench/out/advisor_*.json`) is
//! byte-identical at any `--jobs`.

use cashmere::ClusterSpec;
use cashmere_bench::{
    advise, cli, report_run, run_scenario, write_json, write_report, AdvisorFull, AppId,
    PerturbSet, Scenario, Series,
};

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn hetero_spec(app: AppId) -> ClusterSpec {
    match app {
        AppId::Raytracer | AppId::Matmul => ClusterSpec::paper_hetero_small(),
        AppId::Kmeans => ClusterSpec::paper_hetero_kmeans(),
        AppId::Nbody => ClusterSpec::paper_hetero_nbody(),
    }
}

fn main() {
    let (common, rest) = cli::common_args();
    if cli::handle_scenario(&common) {
        return;
    }

    let mut app = AppId::Kmeans;
    let mut series = Series::CashmereOpt;
    let mut nodes = 4usize;
    let mut hetero = false;
    let mut seed = 42u64;
    let mut what_if: Vec<PerturbSet> = Vec::new();
    let mut factors = vec![0.5, 2.0];
    let mut swept = false;
    let mut full = false;

    let mut it = rest.into_iter().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--hetero" => hetero = true,
            "--full-json" => full = true,
            "--nodes" => {
                nodes = value("--nodes")
                    .parse()
                    .unwrap_or_else(|_| fail("--nodes expects a positive integer"));
                if nodes == 0 {
                    fail("--nodes expects a positive integer");
                }
            }
            "--series" => {
                let v = value("--series");
                series = Series::parse(&v).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown series `{v}` (satin|cashmere-unopt|cashmere-opt)"
                    ))
                });
            }
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed expects an integer"));
            }
            "--what-if" => {
                for part in value("--what-if").split(',') {
                    match PerturbSet::parse_list(part) {
                        Ok(set) => what_if.push(set),
                        Err(e) => fail(&e),
                    }
                }
            }
            "--sweep" => {
                factors = value("--sweep")
                    .split(',')
                    .map(|f| match f.trim().parse::<f64>() {
                        Ok(v) if v.is_finite() && v > 0.0 => v,
                        _ => fail(&format!("bad sweep factor `{f}` (want e.g. 0.5,2)")),
                    })
                    .collect();
                if factors.is_empty() {
                    fail("--sweep expects at least one factor");
                }
                swept = true;
            }
            other => match AppId::parse(other) {
                Some(a) => app = a,
                None => fail(&format!(
                    "unknown argument `{other}` (app name or --hetero|--nodes|--series|--seed|--what-if|--sweep|--full-json|--jobs|--trace|--explain|--metrics-out)"
                )),
            },
        }
    }

    // An explicit --sweep expands the explicit what-ifs too: each
    // experiment re-runs at every factor.
    if swept && !what_if.is_empty() {
        what_if = what_if
            .iter()
            .flat_map(|set| {
                factors.iter().map(|&f| PerturbSet {
                    items: set.items.iter().map(|p| p.with_factor(f)).collect(),
                })
            })
            .collect();
    }

    let (spec, cluster, cfg_slug) = if hetero {
        (
            hetero_spec(app),
            "hetero (Table III)".to_string(),
            "hetero".to_string(),
        )
    } else {
        (
            ClusterSpec::homogeneous(nodes, "gtx480"),
            format!("{nodes}x gtx480"),
            format!("{nodes}n"),
        )
    };
    let base = cli::apply_overrides(
        Scenario::paper(app, series, &spec, seed).named(format!(
            "advisor-{}-{}",
            app.token(),
            cfg_slug
        )),
        &common,
    );
    if common.dump {
        cli::dump_scenarios(std::slice::from_ref(&base));
        return;
    }
    let workload = format!("{} / {} / {}", app.name(), series.name(), cluster);
    println!(
        "advisor: {workload} — baseline + {} experiment(s), seed {seed}",
        if what_if.is_empty() {
            "auto-enumerated".to_string()
        } else {
            what_if.len().to_string()
        }
    );

    let runner = |p: Option<&PerturbSet>, observe: bool| {
        let mut sc = base.clone().with_capture(observe);
        if let Some(p) = p {
            sc.perturb = Some(p.clone());
        }
        let run = run_scenario(&sc);
        // The baseline is the only observed run; honor the shared obs flags
        // for it (Chrome trace with counter tracks, OpenMetrics dump, …).
        if observe {
            if let Some(cap) = &run.cap {
                report_run(&common.obs, "baseline", cap);
            }
        }
        (run.outcome.makespan_s, run.cap)
    };
    let run = advise(
        &workload,
        seed,
        &spec,
        &what_if,
        &factors,
        common.jobs,
        runner,
    )
    .unwrap_or_else(|e| fail(&e));
    print!("{}", run.text);

    let name = format!("advisor_{}_{}", app.token(), cfg_slug);
    write_report(&name, std::slice::from_ref(&base), &run.json);
    if full {
        // The raw occupancy step functions run to megabytes at paper
        // scale; they stay out of the default artifact and out of git.
        let dump = AdvisorFull {
            report: &run.json.report,
            utilization: &run.timelines,
            counterfactuals: &run.json.counterfactuals,
        };
        write_json(&format!("{name}_full"), &dump);
    }
    let best = run.json.report.rows.first();
    if let Some(b) = best {
        println!(
            "advice: `{}` gives the largest measured win ({:+.4}s, {:.3}x)",
            b.spec,
            b.delta_ns as f64 / 1e9,
            b.speedup
        );
    }
    cli::finish(&common, std::slice::from_ref(&base));
}
