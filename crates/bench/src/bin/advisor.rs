//! What-if performance advisor: "optimize this next", answered by
//! deterministic re-execution.
//!
//! The advisor runs the workload once (observed), enumerates perturbation
//! candidates from the span trace and critical path, then re-executes the
//! whole simulation once per candidate with exactly one factor virtually
//! scaled — Coz-style virtual speedup on the DES — and ranks candidates by
//! *measured* makespan delta. Alongside the ranking it prints per-resource
//! utilization timelines and, for the speed-table experiments, an audit-log
//! replay counting how many balancer placements would flip.
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin advisor
//! cargo run --release -p cashmere-bench --bin advisor -- kmeans --nodes 8
//! cargo run --release -p cashmere-bench --bin advisor -- kmeans --hetero
//! cargo run --release -p cashmere-bench --bin advisor -- --what-if dev:*:2x --sweep 0.5,2
//! cargo run --release -p cashmere-bench --bin advisor -- --what-if dev:k20:2x+net:2x
//! cargo run --release -p cashmere-bench --bin advisor -- --jobs 4
//! ```
//!
//! * `--what-if <spec>[,<spec>…]` — run these experiments instead of
//!   auto-enumerating; `+` inside one spec applies factors jointly.
//! * `--sweep f1,f2,…` — factor sweep (default `0.5,2`); with `--what-if`,
//!   each experiment is re-run at every factor.
//! * `--hetero` — the app's Table III heterogeneous configuration instead
//!   of homogeneous GTX480 nodes; `--nodes N` sets the homogeneous size.
//! * `--series`, `--seed`, `--jobs`, `--trace`, `--explain`,
//!   `--metrics-out` — as in the other bench bins.
//!
//! Experiments fan out over `--jobs` worker threads; the report (text and
//! `bench/out/advisor_*.json`) is byte-identical at any `--jobs`.

use cashmere::ClusterSpec;
use cashmere_bench::{
    advise, jobs_from_args, obs_args, report_run, run_app_perturbed, write_json, AppId, PerturbSet,
    Series,
};
use cashmere_des::fault::FaultPlan;

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn hetero_spec(app: AppId) -> ClusterSpec {
    match app {
        AppId::Raytracer | AppId::Matmul => ClusterSpec::paper_hetero_small(),
        AppId::Kmeans => ClusterSpec::paper_hetero_kmeans(),
        AppId::Nbody => ClusterSpec::paper_hetero_nbody(),
    }
}

fn main() {
    let (obs, rest) = obs_args(std::env::args().collect());
    let (jobs, rest) = jobs_from_args(rest);

    let mut app = AppId::Kmeans;
    let mut series = Series::CashmereOpt;
    let mut nodes = 4usize;
    let mut hetero = false;
    let mut seed = 42u64;
    let mut what_if: Vec<PerturbSet> = Vec::new();
    let mut factors = vec![0.5, 2.0];
    let mut swept = false;

    let mut it = rest.into_iter().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--hetero" => hetero = true,
            "--nodes" => {
                nodes = value("--nodes")
                    .parse()
                    .unwrap_or_else(|_| fail("--nodes expects a positive integer"));
                if nodes == 0 {
                    fail("--nodes expects a positive integer");
                }
            }
            "--series" => {
                let v = value("--series");
                series = Series::ALL
                    .into_iter()
                    .find(|s| s.name() == v)
                    .unwrap_or_else(|| {
                        fail(&format!(
                            "unknown series `{v}` (satin|cashmere-unopt|cashmere-opt)"
                        ))
                    });
            }
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed expects an integer"));
            }
            "--what-if" => {
                for part in value("--what-if").split(',') {
                    match PerturbSet::parse_list(part) {
                        Ok(set) => what_if.push(set),
                        Err(e) => fail(&e),
                    }
                }
            }
            "--sweep" => {
                factors = value("--sweep")
                    .split(',')
                    .map(|f| match f.trim().parse::<f64>() {
                        Ok(v) if v.is_finite() && v > 0.0 => v,
                        _ => fail(&format!("bad sweep factor `{f}` (want e.g. 0.5,2)")),
                    })
                    .collect();
                if factors.is_empty() {
                    fail("--sweep expects at least one factor");
                }
                swept = true;
            }
            other => match AppId::parse(other) {
                Some(a) => app = a,
                None => fail(&format!(
                    "unknown argument `{other}` (app name or --hetero|--nodes|--series|--seed|--what-if|--sweep|--jobs|--trace|--explain|--metrics-out)"
                )),
            },
        }
    }

    // An explicit --sweep expands the explicit what-ifs too: each
    // experiment re-runs at every factor.
    if swept && !what_if.is_empty() {
        what_if = what_if
            .iter()
            .flat_map(|set| {
                factors.iter().map(|&f| PerturbSet {
                    items: set.items.iter().map(|p| p.with_factor(f)).collect(),
                })
            })
            .collect();
    }

    let (spec, cluster) = if hetero {
        (hetero_spec(app), "hetero (Table III)".to_string())
    } else {
        (
            ClusterSpec::homogeneous(nodes, "gtx480"),
            format!("{nodes}x gtx480"),
        )
    };
    let workload = format!("{} / {} / {}", app.name(), series.name(), cluster);
    println!(
        "advisor: {workload} — baseline + {} experiment(s), seed {seed}",
        if what_if.is_empty() {
            "auto-enumerated".to_string()
        } else {
            what_if.len().to_string()
        }
    );

    let runner = |p: Option<&PerturbSet>, observe: bool| {
        let (r, cap) =
            run_app_perturbed(app, series, &spec, seed, FaultPlan::default(), observe, p);
        // The baseline is the only observed run; honor the shared obs flags
        // for it (Chrome trace with counter tracks, OpenMetrics dump, …).
        if observe {
            if let Some(cap) = &cap {
                report_run(&obs, "baseline", cap);
            }
        }
        (r.makespan_s, cap)
    };
    let run = advise(&workload, seed, &spec, &what_if, &factors, jobs, runner)
        .unwrap_or_else(|e| fail(&e));
    print!("{}", run.text);

    let name = format!(
        "advisor_{}_{}",
        app.name().replace('-', ""),
        if hetero {
            "hetero".to_string()
        } else {
            format!("{nodes}n")
        }
    );
    write_json(&name, &run.json);
    let best = run.json.report.rows.first();
    if let Some(b) = best {
        println!(
            "advice: `{}` gives the largest measured win ({:+.4}s, {:.3}x)",
            b.spec,
            b.delta_ns as f64 / 1e9,
            b.speedup
        );
    }
}
