//! Regenerate Figs. 16/17: Gantt charts of a heterogeneous K-means run.
//!
//! Fig. 16 is the zoomed-in view of two nodes — one with a GTX480, one
//! with a Xeon Phi *and* a K20 — showing kernel executions (wide bars)
//! overlapped with transfers and CPU tasks, and the load balancer placing
//! 7 jobs on the K20 for every 1 on the Phi. Fig. 17 is the zoomed-out
//! whole-run view with only the kernel executions.
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin gantt
//! cargo run --release -p cashmere-bench --bin gantt -- --trace out.json --explain
//! cargo run --release -p cashmere-bench --bin gantt -- --small --trace out.json
//! ```
//!
//! `--trace out.json` writes the run as a Chrome trace-event file (open in
//! Perfetto or `chrome://tracing`; steals and device-job lineage appear as
//! flow arrows) plus the balancer audit log (`out.audit.json`), then
//! re-parses the file to validate it. `--explain` prints the critical-path
//! analysis, metrics summary, and balancer-decision digest. `--small`
//! shrinks the problem for CI.

use cashmere::{build_cluster, ClusterSpec, RuntimeConfig};
use cashmere_apps::kmeans::{self, KmeansApp, KmeansProblem};
use cashmere_apps::KernelSet;
use cashmere_bench::{jobs_from_args, obs_args, paper_sim_config, report_run, ObsCapture, Series};
use cashmere_des::trace::SpanKind;
use cashmere_des::{ChromeTrace, SimTime};
use std::fs;
use std::path::PathBuf;

fn main() {
    let (obs, rest) = obs_args(std::env::args().collect());
    // Accepted for uniformity with the sweep bins; gantt is a single run.
    let (_jobs, rest) = jobs_from_args(rest);
    let small = rest.iter().any(|a| a == "--small");

    // A small heterogeneous cluster so the chart stays readable: the two
    // nodes of the paper's Fig. 16 plus two more GTX480 nodes for realistic
    // stealing traffic.
    let spec = ClusterSpec {
        node_devices: vec![
            vec!["gtx480".to_string()],
            vec!["k20".to_string(), "xeon_phi".to_string()],
            vec!["gtx480".to_string()],
            vec!["gtx480".to_string()],
        ],
    };
    let pr = if small {
        // CI-sized: same cluster shape (so the trace still shows all node
        // and device lanes plus steals), a fraction of the points.
        KmeansProblem {
            n: 4_000_000,
            k: 1024,
            d: 4,
            iterations: 2,
        }
    } else {
        KmeansProblem {
            n: 16_000_000,
            k: 4096,
            d: 4,
            iterations: 3,
        }
    };
    let grain = if small { 250_000 } else { 500_000 };
    let app = KmeansApp::phantom(pr, grain, 8);
    let cents = app.centroids.clone();
    let mut cfg = paper_sim_config(Series::CashmereOpt, 42);
    cfg.trace = true;
    let mut cluster = build_cluster(
        app,
        KmeansApp::registry(KernelSet::Optimized),
        &spec,
        cfg,
        RuntimeConfig::default(),
    )
    .unwrap();
    let (_, elapsed) = kmeans::run_iterations(&mut cluster, &pr, &cents, false);
    println!(
        "heterogeneous k-means: {} nodes, {} iterations, {elapsed} virtual time\n",
        spec.nodes(),
        pr.iterations
    );

    let trace = cluster.trace();

    // Fig. 16: zoom into the first ~1/6 of the run — all activity kinds.
    let horizon = trace.horizon();
    let window = (SimTime::ZERO, SimTime::from_nanos(horizon.as_nanos() / 6));
    println!("Fig. 16 (zoomed view, first sixth of the run, all activities):\n");
    println!("{}", trace.gantt(Some(window), None).render_ascii(100));

    // Fig. 17: the whole run, kernel executions only.
    println!("Fig. 17 (whole run, kernel executions only):\n");
    println!(
        "{}",
        trace
            .gantt(None, Some(&[SpanKind::Kernel]))
            .render_ascii(100)
    );

    // The load-balancer observation from the paper's Fig. 16 discussion.
    let rt = cluster.leaf_runtime();
    let phi_node = &rt.nodes[1];
    println!(
        "device jobs on node 1: K20 = {}, Xeon Phi = {} (paper: \"schedules 1 job\n\
         on the Xeon Phi and 7 on the K20 which is the fastest configuration\")\n",
        phi_node.devices[0].jobs_run, phi_node.devices[1].jobs_run
    );

    // Observability exports: Chrome trace + audit log, critical path.
    let cap = ObsCapture {
        trace: trace.clone(),
        metrics: cluster.metrics().clone(),
        audit: rt.audit.clone(),
        horizon,
    };
    report_run(&obs, "", &cap);
    if let Some(path) = &obs.trace_path {
        // Round-trip the written file so CI (and users) know the export is
        // valid Chrome trace JSON before feeding it to Perfetto.
        let text = fs::read_to_string(path).expect("trace file just written");
        match serde_json::from_str::<ChromeTrace>(&text) {
            Ok(ct) => println!(
                "chrome trace OK: {} lanes, {} steal flows, {} events",
                ct.lane_count(),
                ct.flow_count("steal"),
                ct.traceEvents.len()
            ),
            Err(e) => {
                eprintln!("chrome trace INVALID: {e}");
                std::process::exit(1);
            }
        }
    }

    // CSV export next to the JSON outputs.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.push("bench/out");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join("fig16_17_gantt.csv");
    match fs::write(&path, trace.to_csv()) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
