//! Regenerate Figs. 16/17: Gantt charts of a heterogeneous K-means run.
//!
//! Fig. 16 is the zoomed-in view of two nodes — one with a GTX480, one
//! with a Xeon Phi *and* a K20 — showing kernel executions (wide bars)
//! overlapped with transfers and CPU tasks, and the load balancer placing
//! 7 jobs on the K20 for every 1 on the Phi. Fig. 17 is the zoomed-out
//! whole-run view with only the kernel executions.
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin gantt
//! ```

use cashmere::{build_cluster, ClusterSpec, RuntimeConfig};
use cashmere_apps::kmeans::{self, KmeansApp, KmeansProblem};
use cashmere_apps::KernelSet;
use cashmere_bench::paper_sim_config;
use cashmere_bench::Series;
use cashmere_des::trace::SpanKind;
use cashmere_des::SimTime;
use std::fs;
use std::path::PathBuf;

fn main() {
    // A small heterogeneous cluster so the chart stays readable: the two
    // nodes of the paper's Fig. 16 plus two more GTX480 nodes for realistic
    // stealing traffic.
    let spec = ClusterSpec {
        node_devices: vec![
            vec!["gtx480".to_string()],
            vec!["k20".to_string(), "xeon_phi".to_string()],
            vec!["gtx480".to_string()],
            vec!["gtx480".to_string()],
        ],
    };
    let pr = KmeansProblem {
        n: 16_000_000,
        k: 4096,
        d: 4,
        iterations: 3,
    };
    let app = KmeansApp::phantom(pr, 500_000, 8);
    let cents = app.centroids.clone();
    let mut cfg = paper_sim_config(Series::CashmereOpt, 42);
    cfg.trace = true;
    let mut cluster = build_cluster(
        app,
        KmeansApp::registry(KernelSet::Optimized),
        &spec,
        cfg,
        RuntimeConfig::default(),
    )
    .unwrap();
    let (_, elapsed) = kmeans::run_iterations(&mut cluster, &pr, &cents, false);
    println!(
        "heterogeneous k-means: {} nodes, {} iterations, {elapsed} virtual time\n",
        spec.nodes(),
        pr.iterations
    );

    let trace = cluster.trace();

    // Fig. 16: zoom into the first ~1/6 of the run — all activity kinds.
    let horizon = trace.horizon();
    let window = (SimTime::ZERO, SimTime::from_nanos(horizon.as_nanos() / 6));
    println!("Fig. 16 (zoomed view, first sixth of the run, all activities):\n");
    println!("{}", trace.gantt(Some(window), None).render_ascii(100));

    // Fig. 17: the whole run, kernel executions only.
    println!("Fig. 17 (whole run, kernel executions only):\n");
    println!(
        "{}",
        trace
            .gantt(None, Some(&[SpanKind::Kernel]))
            .render_ascii(100)
    );

    // The load-balancer observation from the paper's Fig. 16 discussion.
    let rt = cluster.leaf_runtime();
    let phi_node = &rt.nodes[1];
    println!(
        "device jobs on node 1: K20 = {}, Xeon Phi = {} (paper: \"schedules 1 job\n\
         on the Xeon Phi and 7 on the K20 which is the fastest configuration\")\n",
        phi_node.devices[0].jobs_run, phi_node.devices[1].jobs_run
    );

    // CSV export next to the JSON outputs.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.push("bench/out");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join("fig16_17_gantt.csv");
    match fs::write(&path, trace.to_csv()) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
