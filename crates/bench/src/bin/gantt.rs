//! Regenerate Figs. 16/17: Gantt charts of a heterogeneous K-means run.
//!
//! Fig. 16 is the zoomed-in view of two nodes — one with a GTX480, one
//! with a Xeon Phi *and* a K20 — showing kernel executions (wide bars)
//! overlapped with transfers and CPU tasks, and the load balancer placing
//! 7 jobs on the K20 for every 1 on the Phi. Fig. 17 is the zoomed-out
//! whole-run view with only the kernel executions.
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin gantt
//! cargo run --release -p cashmere-bench --bin gantt -- --trace out.json --explain
//! cargo run --release -p cashmere-bench --bin gantt -- --small --trace out.json
//! cargo run --release -p cashmere-bench --bin gantt -- --dump-scenario
//! ```
//!
//! The run is one [`Scenario`] (printable via `--dump-scenario`, swappable
//! via `--scenario file.json`) with in-memory capture forced on — the Gantt
//! renderer reads the span trace directly.
//!
//! `--trace out.json` writes the run as a Chrome trace-event file (open in
//! Perfetto or `chrome://tracing`; steals and device-job lineage appear as
//! flow arrows) plus the balancer audit log (`out.audit.json`), then
//! re-parses the file to validate it. `--explain` prints the critical-path
//! analysis, metrics summary, and balancer-decision digest. `--small`
//! shrinks the problem for CI.

use cashmere::ClusterSpec;
use cashmere_bench::{cli, report_run, run_scenario, AppId, Problem, Scenario, Series};
use cashmere_des::trace::SpanKind;
use cashmere_des::{ChromeTrace, SimTime};
use std::fs;
use std::path::PathBuf;

/// The Fig. 16/17 scenario: the two nodes of the paper's figure plus two
/// more GTX480 nodes for realistic stealing traffic. `small` keeps the
/// cluster shape (so the trace still shows all node and device lanes plus
/// steals) at a fraction of the points.
fn gantt_scenario(small: bool) -> Scenario {
    let spec = ClusterSpec {
        node_devices: vec![
            vec!["gtx480".to_string()],
            vec!["k20".to_string(), "xeon_phi".to_string()],
            vec!["gtx480".to_string()],
            vec!["gtx480".to_string()],
        ],
    };
    let (problem, grain, name) = if small {
        (
            Problem::Kmeans {
                n: 4_000_000,
                k: 1024,
                d: 4,
                iterations: 2,
            },
            250_000,
            "gantt-kmeans-small",
        )
    } else {
        (
            Problem::Kmeans {
                n: 16_000_000,
                k: 4096,
                d: 4,
                iterations: 3,
            },
            500_000,
            "gantt-kmeans",
        )
    };
    Scenario::new(name, AppId::Kmeans, Series::CashmereOpt, &spec)
        .with_problem(problem)
        .with_grain(grain)
        .with_capture(true)
}

fn main() {
    let (common, rest) = cli::common_args();
    if cli::handle_scenario(&common) {
        return;
    }
    let small = rest.iter().any(|a| a == "--small");
    // Capture stays on regardless of the CLI flags — the renderer needs
    // the span trace.
    let sc = cli::apply_overrides(gantt_scenario(small), &common).with_capture(true);
    if common.dump {
        cli::dump_scenarios(std::slice::from_ref(&sc));
        return;
    }
    let run = run_scenario(&sc);
    let cap = run.cap.expect("gantt scenario always captures");
    let iterations = match sc.problem {
        Problem::Kmeans { iterations, .. } => iterations,
        _ => 0,
    };
    println!(
        "heterogeneous k-means: {} nodes, {} iterations, {:.3}s virtual time\n",
        sc.nodes.len(),
        iterations,
        run.outcome.makespan_s
    );

    let trace = &cap.trace;

    // Fig. 16: zoom into the first ~1/6 of the run — all activity kinds.
    let horizon = cap.horizon;
    let window = (SimTime::ZERO, SimTime::from_nanos(horizon.as_nanos() / 6));
    println!("Fig. 16 (zoomed view, first sixth of the run, all activities):\n");
    println!("{}", trace.gantt(Some(window), None).render_ascii(100));

    // Fig. 17: the whole run, kernel executions only.
    println!("Fig. 17 (whole run, kernel executions only):\n");
    println!(
        "{}",
        trace
            .gantt(None, Some(&[SpanKind::Kernel]))
            .render_ascii(100)
    );

    // The load-balancer observation from the paper's Fig. 16 discussion,
    // counted from the audit log (every placement is one audit entry).
    let placed = |device: usize| {
        cap.audit
            .iter()
            .filter(|e| e.node == 1 && e.chosen == Some(device))
            .count()
    };
    println!(
        "device jobs on node 1: K20 = {}, Xeon Phi = {} (paper: \"schedules 1 job\n\
         on the Xeon Phi and 7 on the K20 which is the fastest configuration\")\n",
        placed(0),
        placed(1)
    );

    // Observability exports: Chrome trace + audit log, critical path.
    report_run(&common.obs, "", &cap);
    if let Some(path) = &common.obs.trace_path {
        // Round-trip the written file so CI (and users) know the export is
        // valid Chrome trace JSON before feeding it to Perfetto.
        let text = fs::read_to_string(path).expect("trace file just written");
        match serde_json::from_str::<ChromeTrace>(&text) {
            Ok(ct) => println!(
                "chrome trace OK: {} lanes, {} steal flows, {} events",
                ct.lane_count(),
                ct.flow_count("steal"),
                ct.traceEvents.len()
            ),
            Err(e) => {
                eprintln!("chrome trace INVALID: {e}");
                std::process::exit(1);
            }
        }
    }

    // CSV export next to the JSON outputs.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.push("bench/out");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join("fig16_17_gantt.csv");
    match fs::write(&path, trace.to_csv()) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
    cli::finish(&common, std::slice::from_ref(&sc));
}
