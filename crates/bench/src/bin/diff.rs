//! Regression explainer: diff two runs and attribute the delta.
//!
//! Takes two inputs — each either a provenance-bearing report artifact
//! (`bench/out/*.json`, as written by every bin) or a scenario spec
//! (`bench/scenarios/*.json`) — re-executes both with full observability
//! (span trace, run report, flight-recorder probes), and prints a ranked
//! "what changed" digest: makespan delta attributed by critical-path kind,
//! the probe-series phase window where the runs diverge most, per-node busy
//! divergence, and the counters that moved.
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin diff -- a.json b.json
//! cargo run --release -p cashmere-bench --bin diff -- \
//!     bench/scenarios/chaos_rejoin.json bench/scenarios/chaos_rejoin.json --assert-zero
//! cargo run --release -p cashmere-bench --bin diff -- \
//!     bench/scenarios/smoke.json bench/scenarios/smoke.json --perturb-b dev:gtx480:2x
//! ```
//!
//! * `--perturb-b <spec>` — apply a perturbation set (advisor syntax, e.g.
//!   `dev:k20:2x+net:0.5`) to the second input before running: "what did
//!   this factor change?" without editing a spec file.
//! * `--assert-zero` / `--assert-nonzero` — exit 1 unless the diff is
//!   exactly zero / nonzero (CI smoke hooks).
//! * `--probe <interval>` — flight-recorder cadence for both runs
//!   (default: the spec's own `outputs.probe_interval`, else 1ms).
//! * `--out <path>` — where to write the structured diff JSON
//!   (default `bench/out/diff_<a>_vs_<b>.json`).
//! * `--jobs`, `--seed` — as in the other bench bins; both runs execute
//!   concurrently under `--jobs 2+` with byte-identical output.
//!
//! Both re-executions are deterministic, so diffing an artifact against its
//! own provenance is exactly zero — and any nonzero diff is a real change,
//! not noise.

use cashmere_bench::{cli, fingerprint, run_scenario, sweep, PerturbSet, Scenario};
use cashmere_des::obs::{RunDiff, RunFingerprint};
use cashmere_des::SimTime;

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Load one diff input: a report artifact (its embedded provenance
/// scenario) or a bare scenario spec.
fn load_input(path: &str) -> Scenario {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    if let Ok(report) = cashmere_bench::ScenarioReport::from_json(&text) {
        return report.provenance;
    }
    match Scenario::from_json(&text) {
        Ok(sc) => sc,
        Err(e) => fail(&format!(
            "{path}: neither a scenario report artifact nor a scenario spec ({e})"
        )),
    }
}

/// A filesystem-safe slug of a run label for the default output path.
fn slug(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn main() {
    let (common, rest) = cli::common_args();
    if cli::handle_scenario(&common) {
        return;
    }

    let mut inputs: Vec<String> = Vec::new();
    let mut perturb_b: Option<PerturbSet> = None;
    let mut assert_zero = false;
    let mut assert_nonzero = false;
    let mut seed: Option<u64> = None;
    let mut out: Option<String> = None;

    let mut it = rest.into_iter().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--perturb-b" => {
                let v = value("--perturb-b");
                perturb_b = Some(PerturbSet::parse_list(&v).unwrap_or_else(|e| fail(&e)));
            }
            "--assert-zero" => assert_zero = true,
            "--assert-nonzero" => assert_nonzero = true,
            "--seed" => {
                seed = Some(
                    value("--seed")
                        .parse()
                        .unwrap_or_else(|_| fail("--seed expects an integer")),
                );
            }
            "--out" => out = Some(value("--out")),
            other if !other.starts_with("--") => inputs.push(other.to_string()),
            other => fail(&format!(
                "unknown argument `{other}` (want two inputs plus --perturb-b|--assert-zero|--assert-nonzero|--seed|--out|--probe|--jobs)"
            )),
        }
    }
    if inputs.len() != 2 {
        fail(
            "diff needs exactly two inputs: report artifacts (bench/out/*.json) or scenario specs",
        );
    }
    if assert_zero && assert_nonzero {
        fail("--assert-zero and --assert-nonzero are mutually exclusive");
    }

    let mut scenarios: Vec<Scenario> = inputs.iter().map(|p| load_input(p)).collect();
    let mut labels: Vec<String> = scenarios.iter().map(|sc| sc.name.clone()).collect();
    if let Some(p) = &perturb_b {
        scenarios[1].perturb = Some(p.clone());
        labels[1] = format!("{}+perturb", labels[1]);
    }
    if labels[0] == labels[1] {
        labels[0].push_str(" (a)");
        labels[1].push_str(" (b)");
    }
    for sc in &mut scenarios {
        if let Some(s) = seed {
            sc.seed = s;
        }
        sc.outputs.capture = true;
        // CLI cadence beats the spec's own; 1ms is the fallback so the
        // phase-window attribution always has a series to work with.
        sc.outputs.probe_interval = common
            .obs
            .probe
            .or(sc.outputs.probe_interval)
            .or(Some(SimTime::from_millis(1)));
        if let Err(e) = sc.validate() {
            fail(&format!("invalid scenario `{}`: {e}", sc.name));
        }
    }

    println!(
        "diff: {} ({}) vs {} ({})",
        labels[0], inputs[0], labels[1], inputs[1]
    );
    let runs = sweep(scenarios, common.jobs.min(2), |sc| run_scenario(&sc));
    let prints: Vec<RunFingerprint> = runs
        .iter()
        .zip(&labels)
        .map(|(run, label)| {
            let cap = run.cap.as_ref().expect("capture was requested");
            fingerprint(label, run.outcome.makespan_s, cap)
        })
        .collect();

    let d = RunDiff::compute(&prints[0], &prints[1]);
    println!();
    print!("{}", d.digest());

    let path = match &out {
        Some(p) => std::path::PathBuf::from(p),
        None => cli::out_path(&format!(
            "diff_{}_vs_{}.json",
            slug(&labels[0]),
            slug(&labels[1])
        )),
    };
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut json = serde_json::to_string_pretty(&d).expect("diff serializes");
    json.push('\n');
    match std::fs::write(&path, json) {
        Ok(()) => println!("\n[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }

    // Before the assertion exits, so a failing diff still leaves a profile.
    cli::finish(&common, &[]);
    if assert_zero && !d.is_zero() {
        eprintln!("diff: FAILED --assert-zero: the runs differ");
        std::process::exit(1);
    }
    if assert_nonzero && d.is_zero() {
        eprintln!("diff: FAILED --assert-nonzero: the runs are indistinguishable");
        std::process::exit(1);
    }
}
