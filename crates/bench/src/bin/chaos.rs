//! Chaos sweep: seeded random fault plans of increasing intensity against
//! one base scenario, reported as a degradation curve (makespan and
//! recovery cost vs fault intensity).
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin chaos
//! cargo run --release -p cashmere-bench --bin chaos -- --levels 3 --seeds 2 --jobs 4
//! cargo run --release -p cashmere-bench --bin chaos -- --scenario bench/scenarios/smoke.json
//! cargo run --release -p cashmere-bench --bin chaos -- --no-orphan-reuse
//! cargo run --release -p cashmere-bench --bin chaos -- --dump-scenario
//! ```
//!
//! Level 0 is the fault-free baseline; it doubles as the probe that fixes
//! the virtual-time horizon fault times are drawn from, so plans always
//! land inside the run. Each level `l >= 1` crashes up to `l` distinct
//! worker nodes (each with a 50% chance of rejoining later) and, from
//! level 2 on, degrades links toward the master; `--seeds S` draws S
//! independent plans per level from [`StreamRng`] streams named by
//! `(level, seed-index)`, so the whole sweep replays byte-for-byte — at
//! any `--jobs` width, since the executor reassembles results in input
//! order.
//!
//! Unlike the other bins, `--scenario file.json` here selects the *base*
//! scenario the chaos plans are layered onto (any fault plan in the file
//! is replaced). `--no-orphan-reuse` runs the ablation arm: orphaned
//! results are always re-executed instead of reused, which is what the
//! degradation curve is measured against.

use cashmere::ClusterSpec;
use cashmere_bench::{
    cli, run_scenario, sweep, write_report, AppId, Problem, Scenario, Series, Table,
};
use cashmere_des::fault::{FaultPlan, LinkFault, NodeCrash, NodeJoin};
use cashmere_des::{SimTime, StreamRng};
use serde::Serialize;

#[derive(Serialize)]
struct ChaosRow {
    level: usize,
    seed_index: usize,
    scenario: String,
    makespan_s: f64,
    /// Makespan relative to the fault-free baseline.
    degradation: f64,
    crashes: u64,
    joins: u64,
    jobs_restarted: u64,
    orphans_reused: u64,
    orphans_expired: u64,
    work_lost_s: f64,
    time_to_recover_s: f64,
}

/// The default base when no `--scenario` is given: k-means on six GTX480
/// nodes with a fine grain, so work migrates enough that crashes orphan
/// completed subtree results (the recovery path worth measuring) and
/// multi-node crash plans stay survivable.
fn default_base() -> Scenario {
    Scenario::new(
        "chaos-base",
        AppId::Kmeans,
        Series::CashmereOpt,
        &ClusterSpec::homogeneous(6, "gtx480"),
    )
    .with_problem(Problem::Kmeans {
        n: 4_000_000,
        k: 1024,
        d: 4,
        iterations: 2,
    })
    .with_grain(15_625)
}

/// Draw one fault plan of intensity `level` for a `nodes`-node cluster,
/// with event times spread across `[15%, 75%]` of the baseline makespan
/// `horizon`. Deterministic in `(base seed, level, seed_index)`.
fn chaos_plan(
    rng_seed: u64,
    level: usize,
    seed_index: usize,
    nodes: usize,
    horizon: SimTime,
) -> FaultPlan {
    let mut rng = StreamRng::named(rng_seed, &format!("chaos.l{level}.s{seed_index}"));
    let at = |frac: f64| SimTime::from_nanos((frac * horizon.0 as f64) as u64);
    let mut plan = FaultPlan::none();

    // Crash up to `level` distinct workers (never the master, and never all
    // of them): Fisher-Yates over 1..nodes, take the prefix.
    let mut workers: Vec<usize> = (1..nodes).collect();
    for i in (1..workers.len()).rev() {
        workers.swap(i, rng.below(i + 1));
    }
    let victims = level.min(nodes.saturating_sub(1));
    for &node in &workers[..victims] {
        let crash_frac = 0.15 + 0.45 * rng.unit();
        plan.node_crashes.push(NodeCrash {
            node,
            at: at(crash_frac),
        });
        // Half the victims come back (empty), exercising the rejoin path.
        if rng.unit() < 0.5 {
            plan.node_joins.push(NodeJoin {
                node,
                at: at(crash_frac + 0.05 + 0.1 * rng.unit()),
            });
        }
    }

    // From level 2 on, also degrade result-return links toward the master.
    if level >= 2 {
        plan.link_faults.push(LinkFault {
            src: None,
            dst: Some(0),
            from: at(0.2),
            until: at(0.2 + 0.1 * level as f64),
            loss: (0.05 * level as f64).min(0.3),
            spike: SimTime::from_micros(200),
            spike_probability: 0.2,
        });
    }
    plan
}

fn main() {
    let (common, rest) = cli::common_args();

    let mut levels = 4usize;
    let mut seeds = 3usize;
    let mut orphan_reuse = true;
    let mut args = rest.into_iter().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    eprintln!("{flag} requires a positive integer value");
                    std::process::exit(2);
                })
        };
        match a.as_str() {
            "--levels" => levels = value("--levels").max(1),
            "--seeds" => seeds = value("--seeds").max(1),
            "--no-orphan-reuse" => orphan_reuse = false,
            other => {
                eprintln!(
                    "unknown argument `{other}` \
                     (chaos takes --levels N, --seeds N, --no-orphan-reuse)"
                );
                std::process::exit(2);
            }
        }
    }

    // `--scenario` selects the base the chaos plans are layered onto; its
    // own fault plan (if any) is dropped in favor of the generated ones.
    let mut base = match &common.scenario {
        Some(path) => match Scenario::load(path) {
            Ok(sc) => sc,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
        None => default_base(),
    };
    base.faults = None;
    base = cli::apply_overrides(base, &common).with_orphan_reuse(orphan_reuse);
    if let Err(e) = base.validate() {
        eprintln!("invalid base scenario: {e}");
        std::process::exit(2);
    }
    let nodes = base.nodes.len();
    if nodes < 2 {
        eprintln!("chaos needs at least 2 nodes (workers must be crashable)");
        std::process::exit(2);
    }

    // Level 0: the fault-free baseline, run first — it is both the curve's
    // reference point and the probe that fixes the fault-time horizon.
    let baseline_sc = base.clone().named(format!("{}.chaos.l0", base.name));
    let baseline = run_scenario(&baseline_sc);
    let horizon = SimTime::from_secs_f64(baseline.outcome.makespan_s);
    let base_makespan = baseline.outcome.makespan_s;

    // Levels 1..=L × seeds: generate, validate, and enumerate in declared
    // order so any `--jobs` width reports identically.
    let mut scenarios: Vec<Scenario> = vec![baseline_sc.clone()];
    let mut keys: Vec<(usize, usize)> = Vec::new();
    for level in 1..=levels {
        for s in 0..seeds {
            let plan = chaos_plan(base.seed, level, s, nodes, horizon);
            debug_assert!(plan.validate(nodes).is_ok());
            let sc = base
                .clone()
                .named(format!("{}.chaos.l{level}.s{s}", base.name))
                .with_faults(plan);
            scenarios.push(sc);
            keys.push((level, s));
        }
    }

    if common.dump {
        cli::dump_scenarios(&scenarios);
        return;
    }

    let runs = sweep(scenarios[1..].to_vec(), common.jobs, |sc| run_scenario(&sc));

    let mut json = vec![ChaosRow {
        level: 0,
        seed_index: 0,
        scenario: baseline_sc.name.clone(),
        makespan_s: base_makespan,
        degradation: 1.0,
        crashes: 0,
        joins: 0,
        jobs_restarted: 0,
        orphans_reused: 0,
        orphans_expired: 0,
        work_lost_s: 0.0,
        time_to_recover_s: 0.0,
    }];
    for ((level, s), run) in keys.iter().zip(&runs) {
        let o = &run.outcome;
        let rec = o.recovery.clone().unwrap_or(
            // A plan whose events all land after the run completes injects
            // nothing; report it as a zero-cost row rather than skipping.
            cashmere_bench::RecoverySummary {
                crashes: 0,
                joins: 0,
                jobs_restarted: 0,
                orphans_harvested: 0,
                orphans_reused: 0,
                orphans_expired: 0,
                work_lost_s: 0.0,
                time_to_recover_s: 0.0,
            },
        );
        json.push(ChaosRow {
            level: *level,
            seed_index: *s,
            scenario: format!("{}.chaos.l{level}.s{s}", base.name),
            makespan_s: o.makespan_s,
            degradation: o.makespan_s / base_makespan,
            crashes: rec.crashes,
            joins: rec.joins,
            jobs_restarted: rec.jobs_restarted,
            orphans_reused: rec.orphans_reused,
            orphans_expired: rec.orphans_expired,
            work_lost_s: rec.work_lost_s,
            time_to_recover_s: rec.time_to_recover_s,
        });
    }

    println!(
        "Chaos sweep: {} on {} nodes, {} levels x {} seeds, orphan reuse {}\n",
        base.app.name(),
        nodes,
        levels,
        seeds,
        if orphan_reuse { "on" } else { "off (ablation)" },
    );
    let mut t = Table::new(&[
        "level",
        "mean makespan",
        "degradation",
        "crashes",
        "joins",
        "re-executed",
        "reused",
        "work lost",
        "recover",
    ]);
    t.row(vec![
        "0".into(),
        format!("{base_makespan:.3}s"),
        "1.00x".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0.000s".into(),
        "0.000s".into(),
    ]);
    for level in 1..=levels {
        let rows: Vec<&ChaosRow> = json.iter().filter(|r| r.level == level).collect();
        let n = rows.len() as f64;
        let mean = |f: &dyn Fn(&ChaosRow) -> f64| rows.iter().map(|r| f(r)).sum::<f64>() / n;
        let total = |f: &dyn Fn(&ChaosRow) -> u64| rows.iter().map(|r| f(r)).sum::<u64>();
        t.row(vec![
            level.to_string(),
            format!("{:.3}s", mean(&|r| r.makespan_s)),
            format!("{:.2}x", mean(&|r| r.degradation)),
            total(&|r| r.crashes).to_string(),
            total(&|r| r.joins).to_string(),
            total(&|r| r.jobs_restarted).to_string(),
            total(&|r| r.orphans_reused).to_string(),
            format!("{:.3}s", mean(&|r| r.work_lost_s)),
            format!("{:.3}s", mean(&|r| r.time_to_recover_s)),
        ]);
    }
    println!("{}", t.render());

    let name = if orphan_reuse {
        format!("chaos_{}", base.name)
    } else {
        format!("chaos_{}_no_reuse", base.name)
    };
    write_report(&name, &scenarios, &json);
    cli::finish(&common, &scenarios);
}
