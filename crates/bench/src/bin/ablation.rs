//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Load balancer** — the paper's Sec. III-B scenario minimization vs
//!    round-robin vs greedy-fastest, on the K20+Phi heterogeneous node.
//! 2. **Transfer/kernel overlap** — the paper's Sec. II-C3 claim that
//!    Cashmere overlaps PCIe copies with kernels.
//! 3. **Interconnect** — QDR InfiniBand vs gigabit Ethernet for the
//!    communication-bound application (the paper's "skewed
//!    computation/communication ratio" discussion, Sec. I).
//! 4. **Management-thread concurrency** — how many node-level leaves a
//!    node runs at once (1 = no pipelining, 2 = the paper's overlap).
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin ablation
//! cargo run --release -p cashmere-bench --bin ablation -- --jobs 4
//! cargo run --release -p cashmere-bench --bin ablation -- --trace out.json --explain
//! cargo run --release -p cashmere-bench --bin ablation -- --dump-scenario
//! ```
//!
//! Every variant is one [`Scenario`] differing from the baseline in exactly
//! the ablated knob; `--dump-scenario` prints the thirteen resolved specs and
//! `--scenario file.json` runs an arbitrary one. `--policy` is *not*
//! honored here — the balancer study sweeps that knob itself.
//!
//! With `--jobs N` the thirteen ablation runs fan out over N worker threads
//! and are reported in declared order — byte-identical to `--jobs 1`.
//!
//! With `--trace out.json` every measured variant writes a Chrome trace +
//! balancer audit log; `--explain` prints each variant's critical-path and
//! metrics summaries — the balancer and overlap ablations read directly off
//! those reports.

use cashmere::balancer::Policy;
use cashmere::ClusterSpec;
use cashmere_bench::{
    cli, report_run, run_scenario, sweep, write_report, AppId, Problem, Scenario, Series, Table,
};
use cashmere_netsim::NetConfig;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    study: String,
    variant: String,
    makespan_s: f64,
    relative: f64,
}

/// The balancer/leaf-slot study workload: k-means shrunk until the
/// per-job device choice actually binds.
fn kmeans_on(name: &str, spec: &ClusterSpec, policy: Policy, slots: usize, n: u64) -> Scenario {
    Scenario::new(name, AppId::Kmeans, Series::CashmereOpt, spec)
        .with_problem(Problem::Kmeans {
            n,
            k: 4096,
            d: 4,
            iterations: 3,
        })
        .with_grain(262_144)
        .with_policy(policy)
        .with_leaf_slots(slots)
}

fn k20_phi_node() -> ClusterSpec {
    ClusterSpec {
        node_devices: vec![vec!["k20".to_string(), "xeon_phi".to_string()]],
    }
}

/// The overlap/network study workload: communication-bound matmul.
fn matmul_run(name: &str, net: NetConfig, overlap: bool) -> Scenario {
    Scenario::new(
        name,
        AppId::Matmul,
        Series::CashmereOpt,
        &ClusterSpec::homogeneous(8, "gtx480"),
    )
    .with_problem(Problem::Matmul {
        n: 16384,
        m: 16384,
        p: 16384,
    })
    .with_grain(128)
    .with_net(net)
    .with_overlap(overlap)
}

fn main() {
    let (common, _rest) = cli::common_args();
    if cli::handle_scenario(&common) {
        return;
    }
    let observed = common.obs.enabled();

    // Enumerate all thirteen independent runs, in declared order. Baseline
    // re-runs carry no label and are never observed; measured variants take
    // the observability flags. Each run is one scenario differing from its
    // baseline in exactly the ablated knob.
    let mut runs: Vec<(Option<String>, Scenario)> = Vec::new();
    let push = |runs: &mut Vec<(Option<String>, Scenario)>, label: Option<&str>, sc: Scenario| {
        let sc = sc.with_capture(label.is_some() && observed);
        runs.push((label.map(String::from), sc));
    };

    // Ablation 1: balancer baseline + three policies.
    let balancer_policies = [
        ("scenario (paper III-B)", "scenario", Policy::Scenario),
        ("round-robin", "round-robin", Policy::RoundRobin),
        ("greedy-fastest", "greedy", Policy::FastestOnly),
    ];
    push(
        &mut runs,
        None,
        kmeans_on(
            "balancer.base",
            &k20_phi_node(),
            Policy::Scenario,
            2,
            16_000_000,
        ),
    );
    for (_, slug, policy) in balancer_policies {
        push(
            &mut runs,
            Some(&format!("balancer.{slug}")),
            kmeans_on(
                &format!("balancer.{slug}"),
                &k20_phi_node(),
                policy,
                2,
                16_000_000,
            ),
        );
    }

    // Ablation 2: overlap baseline + on/off.
    let overlap_variants = [("on (paper II-C3)", "on", true), ("off", "off", false)];
    push(
        &mut runs,
        None,
        matmul_run("overlap.base", NetConfig::qdr_infiniband(), true),
    );
    for (_, slug, overlap) in overlap_variants {
        push(
            &mut runs,
            Some(&format!("overlap.{slug}")),
            matmul_run(
                &format!("overlap.{slug}"),
                NetConfig::qdr_infiniband(),
                overlap,
            ),
        );
    }

    // Ablation 3: interconnects.
    let network_variants = [
        ("QDR InfiniBand", "qdr-ib", NetConfig::qdr_infiniband()),
        ("gigabit Ethernet", "gbe", NetConfig::gigabit_ethernet()),
    ];
    for (_, slug, net) in network_variants {
        push(
            &mut runs,
            Some(&format!("network.{slug}")),
            matmul_run(&format!("network.{slug}"), net, true),
        );
    }

    // Ablation 4: leaf-slot baseline + 1/2/4 slots.
    push(
        &mut runs,
        None,
        kmeans_on(
            "leaf-slots.base",
            &ClusterSpec::paper_hetero_kmeans(),
            Policy::Scenario,
            2,
            67_000_000,
        ),
    );
    for slots in [1usize, 2, 4] {
        push(
            &mut runs,
            Some(&format!("leaf-slots.{slots}")),
            kmeans_on(
                &format!("leaf-slots.{slots}"),
                &ClusterSpec::paper_hetero_kmeans(),
                Policy::Scenario,
                slots,
                67_000_000,
            ),
        );
    }

    let scenarios: Vec<Scenario> = runs.iter().map(|(_, sc)| sc.clone()).collect();
    if common.dump {
        cli::dump_scenarios(&scenarios);
        return;
    }

    let (labels, scs): (Vec<_>, Vec<_>) = runs.into_iter().unzip();
    let results = sweep(scs, common.jobs, |sc| run_scenario(&sc));
    // Emit per-run trace/audit files in declared order before the tables,
    // matching the sequential layout.
    let makespan = |i: usize| -> f64 {
        let run = &results[i];
        if let (Some(label), Some(cap)) = (&labels[i], &run.cap) {
            report_run(&common.obs, label, cap);
        }
        run.outcome.makespan_s
    };

    let mut json = Vec::new();
    let mut idx = 0;

    println!(
        "Ablation 1: device load balancer (k-means on one K20 + Xeon Phi node,\n\
         where the per-job device choice actually binds)\n"
    );
    let mut t = Table::new(&["policy", "makespan", "vs scenario"]);
    let base = makespan(idx);
    idx += 1;
    for (name, _, _) in balancer_policies {
        let m = makespan(idx);
        idx += 1;
        t.row(vec![
            name.to_string(),
            format!("{m:.2}s"),
            format!("{:.2}x", m / base),
        ]);
        json.push(AblationRow {
            study: "balancer".into(),
            variant: name.into(),
            makespan_s: m,
            relative: m / base,
        });
    }
    println!("{}", t.render());

    println!("Ablation 2: PCIe transfer/kernel overlap (matmul 16384³, 8 gtx480)\n");
    let mut t = Table::new(&["overlap", "makespan", "vs overlapped"]);
    let on = makespan(idx);
    idx += 1;
    for (name, _, _) in overlap_variants {
        let m = makespan(idx);
        idx += 1;
        t.row(vec![
            name.to_string(),
            format!("{m:.2}s"),
            format!("{:.2}x", m / on),
        ]);
        json.push(AblationRow {
            study: "overlap".into(),
            variant: name.into(),
            makespan_s: m,
            relative: m / on,
        });
    }
    println!("{}", t.render());

    println!("Ablation 3: interconnect (same matmul)\n");
    let mut t = Table::new(&["network", "makespan", "vs QDR IB"]);
    for (name, _, _) in network_variants {
        let m = makespan(idx);
        idx += 1;
        t.row(vec![
            name.to_string(),
            format!("{m:.2}s"),
            format!("{:.2}x", m / on),
        ]);
        json.push(AblationRow {
            study: "network".into(),
            variant: name.into(),
            makespan_s: m,
            relative: m / on,
        });
    }
    println!("{}", t.render());

    println!(
        "Ablation 4: concurrent node-leaves per node (heterogeneous k-means, 22\n\
         nodes — light transfers, so pipelining trades against hoarding)\n"
    );
    let mut t = Table::new(&["management slots", "makespan", "vs 2 slots"]);
    let slots_base = makespan(idx);
    idx += 1;
    for slots in [1usize, 2, 4] {
        let m = makespan(idx);
        idx += 1;
        t.row(vec![
            slots.to_string(),
            format!("{m:.2}s"),
            format!("{:.2}x", m / slots_base),
        ]);
        json.push(AblationRow {
            study: "leaf-slots".into(),
            variant: slots.to_string(),
            makespan_s: m,
            relative: m / slots_base,
        });
    }
    println!("{}", t.render());

    write_report("ablation", &scenarios, &json);
    cli::finish(&common, &scenarios);
}
