//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Load balancer** — the paper's Sec. III-B scenario minimization vs
//!    round-robin vs greedy-fastest, on the K20+Phi heterogeneous node.
//! 2. **Transfer/kernel overlap** — the paper's Sec. II-C3 claim that
//!    Cashmere overlaps PCIe copies with kernels.
//! 3. **Interconnect** — QDR InfiniBand vs gigabit Ethernet for the
//!    communication-bound application (the paper's "skewed
//!    computation/communication ratio" discussion, Sec. I).
//! 4. **Management-thread concurrency** — how many node-level leaves a
//!    node runs at once (1 = no pipelining, 2 = the paper's overlap).
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin ablation
//! cargo run --release -p cashmere-bench --bin ablation -- --trace out.json --explain
//! ```
//!
//! With `--trace out.json` every measured variant writes a Chrome trace +
//! balancer audit log (`out.<study>.<variant>.json`); `--explain` prints
//! each variant's critical-path and metrics summaries — the balancer and
//! overlap ablations read directly off those reports.

use cashmere::balancer::Policy;
use cashmere::{build_cluster, ClusterSpec, RuntimeConfig};
use cashmere_apps::kmeans::{run_iterations, KmeansApp, KmeansProblem};
use cashmere_apps::matmul::{MatmulApp, MatmulProblem};
use cashmere_apps::KernelSet;
use cashmere_bench::{
    obs_args, paper_sim_config, report_run, write_json, ObsArgs, ObsCapture, Series, Table,
};
use cashmere_netsim::NetConfig;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    study: String,
    variant: String,
    makespan_s: f64,
    relative: f64,
}

/// Emit the observability exports of a finished ablation run under
/// `label`; `label: None` marks baseline re-runs that stay unobserved.
fn observe<A: cashmere::CashmereApp>(
    cluster: &cashmere_satin::ClusterSim<A, cashmere::CashmereLeafRuntime>,
    obs: &ObsArgs,
    label: Option<&str>,
) {
    let Some(label) = label else { return };
    if !obs.enabled() {
        return;
    }
    let cap = ObsCapture {
        trace: cluster.trace().clone(),
        metrics: cluster.metrics().clone(),
        audit: cluster.leaf_runtime().audit.clone(),
        horizon: cluster.trace().horizon(),
    };
    report_run(obs, label, &cap);
}

fn kmeans_on(
    spec: &ClusterSpec,
    policy: Policy,
    slots: usize,
    n: u64,
    obs: &ObsArgs,
    label: Option<&str>,
) -> f64 {
    let pr = KmeansProblem {
        n,
        k: 4096,
        d: 4,
        iterations: 3,
    };
    let app = KmeansApp::phantom(pr, 262_144, 8);
    let cents = app.centroids.clone();
    let mut cfg = paper_sim_config(Series::CashmereOpt, 42);
    cfg.max_concurrent_leaves = slots;
    cfg.trace = label.is_some() && obs.enabled();
    let mut cluster = build_cluster(
        app,
        KmeansApp::registry(KernelSet::Optimized),
        spec,
        cfg,
        RuntimeConfig {
            balancer_policy: policy,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let (_, elapsed) = run_iterations(&mut cluster, &pr, &cents, false);
    observe(&cluster, obs, label);
    elapsed.as_secs_f64()
}

fn k20_phi_node() -> ClusterSpec {
    ClusterSpec {
        node_devices: vec![vec!["k20".to_string(), "xeon_phi".to_string()]],
    }
}

fn matmul_run(net: NetConfig, overlap: bool, obs: &ObsArgs, label: Option<&str>) -> f64 {
    let pr = MatmulProblem::square(16384);
    let app = MatmulApp::phantom(pr, 128, 8);
    let root = app.row_job(0, pr.n);
    let mut cfg = paper_sim_config(Series::CashmereOpt, 42);
    cfg.net = net;
    cfg.trace = label.is_some() && obs.enabled();
    let mut cluster = build_cluster(
        app,
        MatmulApp::registry(KernelSet::Optimized),
        &ClusterSpec::homogeneous(8, "gtx480"),
        cfg,
        RuntimeConfig {
            overlap,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let start = cluster.now();
    cluster.broadcast(pr.p * pr.m * 4);
    let bcast = (cluster.now() - start).as_secs_f64();
    let _ = cluster.run_root(root);
    observe(&cluster, obs, label);
    bcast + cluster.report().makespan.as_secs_f64()
}

fn main() {
    let (obs, _rest) = obs_args(std::env::args().collect());
    let mut json = Vec::new();

    println!(
        "Ablation 1: device load balancer (k-means on one K20 + Xeon Phi node,\n\
         where the per-job device choice actually binds)\n"
    );
    let mut t = Table::new(&["policy", "makespan", "vs scenario"]);
    let base = kmeans_on(&k20_phi_node(), Policy::Scenario, 2, 16_000_000, &obs, None);
    for (name, slug, policy) in [
        ("scenario (paper III-B)", "scenario", Policy::Scenario),
        ("round-robin", "round-robin", Policy::RoundRobin),
        ("greedy-fastest", "greedy", Policy::FastestOnly),
    ] {
        let label = format!("balancer.{slug}");
        let m = kmeans_on(&k20_phi_node(), policy, 2, 16_000_000, &obs, Some(&label));
        t.row(vec![
            name.to_string(),
            format!("{m:.2}s"),
            format!("{:.2}x", m / base),
        ]);
        json.push(AblationRow {
            study: "balancer".into(),
            variant: name.into(),
            makespan_s: m,
            relative: m / base,
        });
    }
    println!("{}", t.render());

    println!("Ablation 2: PCIe transfer/kernel overlap (matmul 16384³, 8 gtx480)\n");
    let mut t = Table::new(&["overlap", "makespan", "vs overlapped"]);
    let on = matmul_run(NetConfig::qdr_infiniband(), true, &obs, None);
    for (name, slug, overlap) in [("on (paper II-C3)", "on", true), ("off", "off", false)] {
        let label = format!("overlap.{slug}");
        let m = matmul_run(NetConfig::qdr_infiniband(), overlap, &obs, Some(&label));
        t.row(vec![
            name.to_string(),
            format!("{m:.2}s"),
            format!("{:.2}x", m / on),
        ]);
        json.push(AblationRow {
            study: "overlap".into(),
            variant: name.into(),
            makespan_s: m,
            relative: m / on,
        });
    }
    println!("{}", t.render());

    println!("Ablation 3: interconnect (same matmul)\n");
    let mut t = Table::new(&["network", "makespan", "vs QDR IB"]);
    for (name, slug, net) in [
        ("QDR InfiniBand", "qdr-ib", NetConfig::qdr_infiniband()),
        ("gigabit Ethernet", "gbe", NetConfig::gigabit_ethernet()),
    ] {
        let label = format!("network.{slug}");
        let m = matmul_run(net, true, &obs, Some(&label));
        t.row(vec![
            name.to_string(),
            format!("{m:.2}s"),
            format!("{:.2}x", m / on),
        ]);
        json.push(AblationRow {
            study: "network".into(),
            variant: name.into(),
            makespan_s: m,
            relative: m / on,
        });
    }
    println!("{}", t.render());

    println!(
        "Ablation 4: concurrent node-leaves per node (heterogeneous k-means, 22\n\
         nodes — light transfers, so pipelining trades against hoarding)\n"
    );
    let mut t = Table::new(&["management slots", "makespan", "vs 2 slots"]);
    let slots_base = kmeans_on(
        &ClusterSpec::paper_hetero_kmeans(),
        Policy::Scenario,
        2,
        67_000_000,
        &obs,
        None,
    );
    for slots in [1usize, 2, 4] {
        let label = format!("leaf-slots.{slots}");
        let m = kmeans_on(
            &ClusterSpec::paper_hetero_kmeans(),
            Policy::Scenario,
            slots,
            67_000_000,
            &obs,
            Some(&label),
        );
        t.row(vec![
            slots.to_string(),
            format!("{m:.2}s"),
            format!("{:.2}x", m / slots_base),
        ]);
        json.push(AblationRow {
            study: "leaf-slots".into(),
            variant: slots.to_string(),
            makespan_s: m,
            relative: m / slots_base,
        });
    }
    println!("{}", t.render());

    write_json("ablation", &json);
}
