//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Load balancer** — the paper's Sec. III-B scenario minimization vs
//!    round-robin vs greedy-fastest, on the K20+Phi heterogeneous node.
//! 2. **Transfer/kernel overlap** — the paper's Sec. II-C3 claim that
//!    Cashmere overlaps PCIe copies with kernels.
//! 3. **Interconnect** — QDR InfiniBand vs gigabit Ethernet for the
//!    communication-bound application (the paper's "skewed
//!    computation/communication ratio" discussion, Sec. I).
//! 4. **Management-thread concurrency** — how many node-level leaves a
//!    node runs at once (1 = no pipelining, 2 = the paper's overlap).
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin ablation
//! cargo run --release -p cashmere-bench --bin ablation -- --jobs 4
//! cargo run --release -p cashmere-bench --bin ablation -- --trace out.json --explain
//! ```
//!
//! With `--jobs N` the twelve ablation runs fan out over N worker threads
//! and are reported in declared order — byte-identical to `--jobs 1`.
//!
//! With `--trace out.json` every measured variant writes a Chrome trace +
//! balancer audit log (`out.<study>.<variant>.json`); `--explain` prints
//! each variant's critical-path and metrics summaries — the balancer and
//! overlap ablations read directly off those reports.

use cashmere::balancer::Policy;
use cashmere::{build_cluster, ClusterSpec, RuntimeConfig};
use cashmere_apps::kmeans::{run_iterations, KmeansApp, KmeansProblem};
use cashmere_apps::matmul::{MatmulApp, MatmulProblem};
use cashmere_apps::KernelSet;
use cashmere_bench::{
    jobs_from_args, obs_args, paper_sim_config, report_run, sweep_fns, write_json, ObsCapture,
    Series, Table,
};
use cashmere_netsim::NetConfig;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    study: String,
    variant: String,
    makespan_s: f64,
    relative: f64,
}

/// Clone the observability exports out of a finished cluster.
fn capture_of<A: cashmere::CashmereApp>(
    cluster: &cashmere_satin::ClusterSim<A, cashmere::CashmereLeafRuntime>,
) -> ObsCapture {
    ObsCapture {
        trace: cluster.trace().clone(),
        metrics: cluster.metrics().clone(),
        audit: cluster.leaf_runtime().audit.clone(),
        horizon: cluster.trace().horizon(),
    }
}

/// One k-means ablation run; `observe` turns on trace recording and returns
/// the capture (baseline re-runs pass `false` and stay unobserved).
fn kmeans_on(
    spec: &ClusterSpec,
    policy: Policy,
    slots: usize,
    n: u64,
    observe: bool,
) -> (f64, Option<ObsCapture>) {
    let pr = KmeansProblem {
        n,
        k: 4096,
        d: 4,
        iterations: 3,
    };
    let app = KmeansApp::phantom(pr, 262_144, 8);
    let cents = app.centroids.clone();
    let mut cfg = paper_sim_config(Series::CashmereOpt, 42);
    cfg.max_concurrent_leaves = slots;
    cfg.trace = observe;
    let mut cluster = build_cluster(
        app,
        KmeansApp::registry(KernelSet::Optimized),
        spec,
        cfg,
        RuntimeConfig {
            balancer_policy: policy,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let (_, elapsed) = run_iterations(&mut cluster, &pr, &cents, false);
    let cap = observe.then(|| capture_of(&cluster));
    (elapsed.as_secs_f64(), cap)
}

fn k20_phi_node() -> ClusterSpec {
    ClusterSpec {
        node_devices: vec![vec!["k20".to_string(), "xeon_phi".to_string()]],
    }
}

fn matmul_run(net: NetConfig, overlap: bool, observe: bool) -> (f64, Option<ObsCapture>) {
    let pr = MatmulProblem::square(16384);
    let app = MatmulApp::phantom(pr, 128, 8);
    let root = app.row_job(0, pr.n);
    let mut cfg = paper_sim_config(Series::CashmereOpt, 42);
    cfg.net = net;
    cfg.trace = observe;
    let mut cluster = build_cluster(
        app,
        MatmulApp::registry(KernelSet::Optimized),
        &ClusterSpec::homogeneous(8, "gtx480"),
        cfg,
        RuntimeConfig {
            overlap,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let start = cluster.now();
    cluster.broadcast(pr.p * pr.m * 4);
    let bcast = (cluster.now() - start).as_secs_f64();
    let _ = cluster.run_root(root);
    let cap = observe.then(|| capture_of(&cluster));
    (bcast + cluster.report().makespan.as_secs_f64(), cap)
}

fn main() {
    let (obs, rest) = obs_args(std::env::args().collect());
    let (jobs, _rest) = jobs_from_args(rest);
    let observed = obs.enabled();

    // Enumerate all twelve independent runs (each builds its own cluster and
    // Sim), fan them out, then report in declared order. Baseline re-runs
    // carry no label and are never observed.
    type Run = (f64, Option<ObsCapture>);
    type Task = Box<dyn FnOnce() -> Run + Send>;
    let mut runs: Vec<(Option<String>, Task)> = Vec::new();

    // Ablation 1: balancer baseline + three policies.
    runs.push((
        None,
        Box::new(move || kmeans_on(&k20_phi_node(), Policy::Scenario, 2, 16_000_000, false)),
    ));
    let balancer_policies = [
        ("scenario (paper III-B)", "scenario", Policy::Scenario),
        ("round-robin", "round-robin", Policy::RoundRobin),
        ("greedy-fastest", "greedy", Policy::FastestOnly),
    ];
    for (_, slug, policy) in balancer_policies {
        runs.push((
            Some(format!("balancer.{slug}")),
            Box::new(move || kmeans_on(&k20_phi_node(), policy, 2, 16_000_000, observed)),
        ));
    }

    // Ablation 2: overlap baseline + on/off.
    runs.push((
        None,
        Box::new(move || matmul_run(NetConfig::qdr_infiniband(), true, false)),
    ));
    let overlap_variants = [("on (paper II-C3)", "on", true), ("off", "off", false)];
    for (_, slug, overlap) in overlap_variants {
        runs.push((
            Some(format!("overlap.{slug}")),
            Box::new(move || matmul_run(NetConfig::qdr_infiniband(), overlap, observed)),
        ));
    }

    // Ablation 3: interconnects.
    let network_variants = [
        ("QDR InfiniBand", "qdr-ib", NetConfig::qdr_infiniband()),
        ("gigabit Ethernet", "gbe", NetConfig::gigabit_ethernet()),
    ];
    for (_, slug, net) in network_variants {
        runs.push((
            Some(format!("network.{slug}")),
            Box::new(move || matmul_run(net, true, observed)),
        ));
    }

    // Ablation 4: leaf-slot baseline + 1/2/4 slots.
    runs.push((
        None,
        Box::new(move || {
            kmeans_on(
                &ClusterSpec::paper_hetero_kmeans(),
                Policy::Scenario,
                2,
                67_000_000,
                false,
            )
        }),
    ));
    for slots in [1usize, 2, 4] {
        runs.push((
            Some(format!("leaf-slots.{slots}")),
            Box::new(move || {
                kmeans_on(
                    &ClusterSpec::paper_hetero_kmeans(),
                    Policy::Scenario,
                    slots,
                    67_000_000,
                    observed,
                )
            }),
        ));
    }

    let (labels, tasks): (Vec<_>, Vec<_>) = runs.into_iter().unzip();
    let results = sweep_fns(tasks, jobs);
    // Emit per-run trace/audit files in declared order before the tables,
    // matching the sequential layout.
    let makespan = |i: usize| -> f64 {
        let (m, cap) = &results[i];
        if let (Some(label), Some(cap)) = (&labels[i], cap) {
            report_run(&obs, label, cap);
        }
        *m
    };

    let mut json = Vec::new();
    let mut idx = 0;

    println!(
        "Ablation 1: device load balancer (k-means on one K20 + Xeon Phi node,\n\
         where the per-job device choice actually binds)\n"
    );
    let mut t = Table::new(&["policy", "makespan", "vs scenario"]);
    let base = makespan(idx);
    idx += 1;
    for (name, _, _) in balancer_policies {
        let m = makespan(idx);
        idx += 1;
        t.row(vec![
            name.to_string(),
            format!("{m:.2}s"),
            format!("{:.2}x", m / base),
        ]);
        json.push(AblationRow {
            study: "balancer".into(),
            variant: name.into(),
            makespan_s: m,
            relative: m / base,
        });
    }
    println!("{}", t.render());

    println!("Ablation 2: PCIe transfer/kernel overlap (matmul 16384³, 8 gtx480)\n");
    let mut t = Table::new(&["overlap", "makespan", "vs overlapped"]);
    let on = makespan(idx);
    idx += 1;
    for (name, _, _) in overlap_variants {
        let m = makespan(idx);
        idx += 1;
        t.row(vec![
            name.to_string(),
            format!("{m:.2}s"),
            format!("{:.2}x", m / on),
        ]);
        json.push(AblationRow {
            study: "overlap".into(),
            variant: name.into(),
            makespan_s: m,
            relative: m / on,
        });
    }
    println!("{}", t.render());

    println!("Ablation 3: interconnect (same matmul)\n");
    let mut t = Table::new(&["network", "makespan", "vs QDR IB"]);
    for (name, _, _) in network_variants {
        let m = makespan(idx);
        idx += 1;
        t.row(vec![
            name.to_string(),
            format!("{m:.2}s"),
            format!("{:.2}x", m / on),
        ]);
        json.push(AblationRow {
            study: "network".into(),
            variant: name.into(),
            makespan_s: m,
            relative: m / on,
        });
    }
    println!("{}", t.render());

    println!(
        "Ablation 4: concurrent node-leaves per node (heterogeneous k-means, 22\n\
         nodes — light transfers, so pipelining trades against hoarding)\n"
    );
    let mut t = Table::new(&["management slots", "makespan", "vs 2 slots"]);
    let slots_base = makespan(idx);
    idx += 1;
    for slots in [1usize, 2, 4] {
        let m = makespan(idx);
        idx += 1;
        t.row(vec![
            slots.to_string(),
            format!("{m:.2}s"),
            format!("{:.2}x", m / slots_base),
        ]);
        json.push(AblationRow {
            study: "leaf-slots".into(),
            variant: slots.to_string(),
            makespan_s: m,
            relative: m / slots_base,
        });
    }
    println!("{}", t.render());

    write_json("ablation", &json);
}
