//! Regenerate Fig. 6: kernel performance (GFLOPS, execution only — no
//! transfer overhead) for the four applications on the seven devices,
//! unoptimized (`perfect`-level kernel) vs optimized (stepwise-refined
//! lower-level kernels).
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin fig6
//! cargo run --release -p cashmere-bench --bin fig6 -- --jobs 4
//! cargo run --release -p cashmere-bench --bin fig6 -- --scenario s.json
//! ```
//!
//! With `--jobs N` the app × device kernel measurements run on N worker
//! threads; output order is unchanged, so results are byte-identical to
//! `--jobs 1`. `--scenario file.json` runs an arbitrary cluster scenario
//! through the shared driver instead (the kernel measurements themselves
//! are not cluster runs, so a bare `--dump-scenario` has nothing to print).

use cashmere_apps::KernelSet;
use cashmere_bench::{cli, kernel_gflops, sweep, write_report, AppId, Table};
use cashmere_hwdesc::DeviceKind;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    app: String,
    device: String,
    unoptimized_gflops: f64,
    optimized_gflops: f64,
    speedup: f64,
}

/// One sampled-launch measurement in the `fig6_breakdown` artifact: which
/// kernel, how long the interpreter took, and how many kernel measurements
/// (launches) that wall time covers.
#[derive(Serialize)]
struct BreakdownRow {
    app: String,
    device: String,
    kernel_set: String,
    gflops: f64,
    wall_ms: f64,
    measurements: u64,
}

#[derive(Serialize)]
struct Breakdown {
    engine: String,
    total_wall_ms: f64,
    total_measurements: u64,
    rows: Vec<BreakdownRow>,
}

fn main() {
    let (common, _rest) = cli::common_args();
    if cli::handle_scenario(&common) {
        return;
    }
    if common.dump {
        println!("note: fig6 measures isolated kernels — no cluster scenarios to dump");
        return;
    }
    let jobs = common.jobs;
    if common.obs.enabled() {
        // Fig. 6 measures isolated kernel executions — there is no cluster
        // run to trace. Accept the shared flags so sweep scripts can pass
        // them uniformly, but say why nothing is emitted.
        println!("note: fig6 runs kernels in isolation; --trace/--explain have no effect here\n");
    }
    println!("Fig. 6: kernel GFLOPS, unoptimized vs optimized\n");
    // Each (app, device) point interprets both kernel sets independently.
    let mut points = Vec::new();
    for app in AppId::ALL {
        for dev in DeviceKind::ALL {
            points.push((app, dev));
        }
    }
    let results = sweep(points, jobs, |(app, dev)| {
        let t0 = Instant::now();
        let un = kernel_gflops(app, KernelSet::Unoptimized, dev).unwrap_or(0.0);
        let un_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let opt = kernel_gflops(app, KernelSet::Optimized, dev).unwrap_or(0.0);
        let opt_ms = t1.elapsed().as_secs_f64() * 1e3;
        (un, opt, un_ms, opt_ms)
    });
    let mut json = Vec::new();
    let mut breakdown = Vec::new();
    let mut results = results.into_iter();
    for app in AppId::ALL {
        let mut t = Table::new(&["device", "unoptimized", "optimized", "speedup", "wall"]);
        for dev in DeviceKind::ALL {
            let (un, opt, un_ms, opt_ms) = results.next().expect("one result per app x device");
            let speedup = if un > 0.0 { opt / un } else { 0.0 };
            t.row(vec![
                dev.display_name().to_string(),
                format!("{un:.0}"),
                format!("{opt:.0}"),
                format!("{speedup:.2}x"),
                format!("{:.1}ms", un_ms + opt_ms),
            ]);
            json.push(Row {
                app: app.name().to_string(),
                device: dev.level_name().to_string(),
                unoptimized_gflops: un,
                optimized_gflops: opt,
                speedup,
            });
            for (set, gflops, ms) in [("unoptimized", un, un_ms), ("optimized", opt, opt_ms)] {
                breakdown.push(BreakdownRow {
                    app: app.name().to_string(),
                    device: dev.level_name().to_string(),
                    kernel_set: set.to_string(),
                    gflops,
                    wall_ms: ms,
                    measurements: 1,
                });
            }
        }
        println!("{}:", app.name());
        println!("{}", t.render());
    }
    // Same schema/provenance/data envelope as the cluster bins; the
    // provenance list is empty because these are isolated kernel runs, not
    // cluster scenarios.
    write_report("fig6_kernel_performance", &[], &json);
    // Interpreter-cost breakdown: which kernels the wall time went to and
    // under which engine. Wall times are machine-dependent — this artifact
    // is diagnostic (CI uploads it), not part of the canonical result set.
    let total_wall_ms: f64 = breakdown.iter().map(|r| r.wall_ms).sum();
    let total_measurements: u64 = breakdown.iter().map(|r| r.measurements).sum();
    write_report(
        "fig6_breakdown",
        &[],
        &Breakdown {
            engine: cashmere_mcl::default_engine().name().to_string(),
            total_wall_ms,
            total_measurements,
            rows: breakdown,
        },
    );
    println!(
        "expected shape (paper): optimization helps drastically for matmul /\n\
         k-means / n-body; the raytracer barely moves (divergence-bound)."
    );
    cli::finish(&common, &[]);
}
