//! Regenerate Fig. 6: kernel performance (GFLOPS, execution only — no
//! transfer overhead) for the four applications on the seven devices,
//! unoptimized (`perfect`-level kernel) vs optimized (stepwise-refined
//! lower-level kernels).
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin fig6
//! cargo run --release -p cashmere-bench --bin fig6 -- --jobs 4
//! cargo run --release -p cashmere-bench --bin fig6 -- --scenario s.json
//! ```
//!
//! With `--jobs N` the app × device kernel measurements run on N worker
//! threads; output order is unchanged, so results are byte-identical to
//! `--jobs 1`. `--scenario file.json` runs an arbitrary cluster scenario
//! through the shared driver instead (the kernel measurements themselves
//! are not cluster runs, so a bare `--dump-scenario` has nothing to print).

use cashmere_apps::KernelSet;
use cashmere_bench::{cli, kernel_gflops, sweep, write_report, AppId, Table};
use cashmere_hwdesc::DeviceKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    app: String,
    device: String,
    unoptimized_gflops: f64,
    optimized_gflops: f64,
    speedup: f64,
}

fn main() {
    let (common, _rest) = cli::common_args();
    if cli::handle_scenario(&common) {
        return;
    }
    if common.dump {
        println!("note: fig6 measures isolated kernels — no cluster scenarios to dump");
        return;
    }
    let jobs = common.jobs;
    if common.obs.enabled() {
        // Fig. 6 measures isolated kernel executions — there is no cluster
        // run to trace. Accept the shared flags so sweep scripts can pass
        // them uniformly, but say why nothing is emitted.
        println!("note: fig6 runs kernels in isolation; --trace/--explain have no effect here\n");
    }
    println!("Fig. 6: kernel GFLOPS, unoptimized vs optimized\n");
    // Each (app, device) point interprets both kernel sets independently.
    let mut points = Vec::new();
    for app in AppId::ALL {
        for dev in DeviceKind::ALL {
            points.push((app, dev));
        }
    }
    let results = sweep(points, jobs, |(app, dev)| {
        let un = kernel_gflops(app, KernelSet::Unoptimized, dev).unwrap_or(0.0);
        let opt = kernel_gflops(app, KernelSet::Optimized, dev).unwrap_or(0.0);
        (un, opt)
    });
    let mut json = Vec::new();
    let mut results = results.into_iter();
    for app in AppId::ALL {
        let mut t = Table::new(&["device", "unoptimized", "optimized", "speedup"]);
        for dev in DeviceKind::ALL {
            let (un, opt) = results.next().expect("one result per app x device");
            let speedup = if un > 0.0 { opt / un } else { 0.0 };
            t.row(vec![
                dev.display_name().to_string(),
                format!("{un:.0}"),
                format!("{opt:.0}"),
                format!("{speedup:.2}x"),
            ]);
            json.push(Row {
                app: app.name().to_string(),
                device: dev.level_name().to_string(),
                unoptimized_gflops: un,
                optimized_gflops: opt,
                speedup,
            });
        }
        println!("{}:", app.name());
        println!("{}", t.render());
    }
    // Same schema/provenance/data envelope as the cluster bins; the
    // provenance list is empty because these are isolated kernel runs, not
    // cluster scenarios.
    write_report("fig6_kernel_performance", &[], &json);
    println!(
        "expected shape (paper): optimization helps drastically for matmul /\n\
         k-means / n-body; the raytracer barely moves (divergence-bound)."
    );
}
