//! Regenerate the paper's background tables and Fig. 2.
//!
//! ```text
//! cargo run --release -p cashmere-bench --bin tables            # everything
//! cargo run --release -p cashmere-bench --bin tables -- table1  # one item
//! ```

use cashmere_bench::Table;
use cashmere_hwdesc::library::das4_inventory;
use cashmere_hwdesc::{standard_hierarchy, DeviceKind};

fn table1() {
    println!("Table I: TOP500 supercomputers with heterogeneous many-core devices");
    println!("(as of November 2014, reproduced from the paper)\n");
    let rows: &[(&str, &str, u32, &str)] = &[
        (
            "Quartetto",
            "Kyushu University",
            49,
            "K20, K20X, Xeon Phi 5110P",
        ),
        (
            "Lomonosov",
            "Moscow State University",
            58,
            "2070, PowerXCell 8i",
        ),
        (
            "HYDRA",
            "Max-Planck-Gesellschaft MPI/IPP",
            77,
            "K20X, Xeon Phi",
        ),
        (
            "SuperMIC",
            "Louisiana State University",
            88,
            "Xeon Phi 7110P, K20X",
        ),
        ("Palmetto2", "Clemson University", 89, "K20m, M2075, M2070"),
        ("Armstrong", "Navy DSRC", 103, "Xeon Phi 5120D, K40"),
        (
            "Loewe-CSC",
            "Universitaet Frankfurt",
            179,
            "HD5870, FirePro S10000",
        ),
        (
            "Inspur TS10000",
            "Shanghai Jiaotong University",
            310,
            "K20m, Xeon Phi 5110P",
        ),
        (
            "Tsubame 2.5",
            "Tokyo Institute of Technology",
            392,
            "K20X, S1070, S2070",
        ),
        (
            "El Gato",
            "University of Arizona",
            465,
            "K20, K20X, Xeon Phi 5110P",
        ),
    ];
    let mut t = Table::new(&["name", "institute", "ranking", "configuration"]);
    for (n, i, r, c) in rows {
        t.row(vec![
            n.to_string(),
            i.to_string(),
            r.to_string(),
            c.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn table2() {
    println!("Table II: application classes used to evaluate Cashmere\n");
    let mut t = Table::new(&["application", "type", "computation", "communication"]);
    for (a, ty, co, cm) in [
        ("raytracer", "irregular", "heavy", "light"),
        ("matmul", "regular", "heavy", "heavy"),
        ("k-means", "iterative", "moderate", "light"),
        ("n-body", "iterative", "heavy", "moderate"),
    ] {
        t.row(vec![a.into(), ty.into(), co.into(), cm.into()]);
    }
    println!("{}", t.render());
}

fn fig2() {
    println!("Fig. 2: hierarchy of hardware descriptions\n");
    let h = standard_hierarchy();
    println!("{}", h.render_tree());
    println!("device database (published specs):\n");
    let mut t = Table::new(&[
        "device",
        "units",
        "simd",
        "GHz",
        "peak SP GFLOPS",
        "mem GB/s",
        "rel. speed",
    ]);
    for d in DeviceKind::ALL {
        let p = h.device_params(d.level(&h)).expect("device resolves");
        t.row(vec![
            d.display_name().to_string(),
            p.compute_units.to_string(),
            p.simd_width.to_string(),
            format!("{:.3}", p.clock_ghz),
            format!("{:.0}", p.peak_sp_gflops()),
            format!("{:.0}", p.mem_bandwidth_gbs),
            format!("{:.0}", p.relative_speed),
        ]);
    }
    println!("{}", t.render());
    println!("DAS-4 many-core inventory (Sec. IV):");
    for (d, n) in das4_inventory() {
        println!("  {n:>2} × {}", d.display_name());
    }
}

fn main() {
    // The shared flags are accepted for uniformity with the sweep bins;
    // `--scenario file.json` runs an arbitrary cluster scenario through
    // the shared driver, everything else has nothing to act on here.
    let (common, rest) = cashmere_bench::cli::common_args();
    if cashmere_bench::cli::handle_scenario(&common) {
        return;
    }
    if common.dump {
        println!("note: tables prints static data — no cluster scenarios to dump");
        return;
    }
    if common.obs.enabled() {
        // The tables are static reproductions (TOP500 background, app
        // classes, hierarchy) — no simulation runs, nothing to trace.
        println!("note: tables prints static data; --trace/--explain have no effect here\n");
    }
    let arg = rest.get(1).cloned().unwrap_or_default();
    match arg.as_str() {
        "table1" => table1(),
        "table2" => table2(),
        "fig2" => fig2(),
        "" => {
            table1();
            table2();
            fig2();
        }
        other => {
            eprintln!("unknown item `{other}` (expected table1|table2|fig2)");
            std::process::exit(2);
        }
    }
    cashmere_bench::cli::finish(&common, &[]);
}
