//! Shared experiment vocabulary: applications, measurement series, run
//! outcomes, and the Fig. 6 kernel-only measurement.
//!
//! Cluster execution lives in [`crate::scenario`]: every bench bin builds
//! [`crate::scenario::Scenario`] values and hands them to
//! [`crate::scenario::run_scenario`].
//!
//! Grain choices (node-level jobs ≈ 1024, device jobs = 8 per leaf, Satin
//! leaves 8× finer) mirror the paper's setup: "Satin has more overhead in
//! job creation because it needs to create 8 times more jobs to keep one
//! node busy" (Sec. V-B).

use cashmere_apps::kmeans::{KmeansApp, KmeansProblem};
use cashmere_apps::matmul::{MatmulApp, MatmulProblem};
use cashmere_apps::nbody::{NbodyApp, NbodyProblem};
use cashmere_apps::raytracer::{RaytracerApp, RaytracerProblem};
use cashmere_apps::{AppMode, KernelSet};
use cashmere_devsim::{ExecMode, SimDevice};
use cashmere_hwdesc::DeviceKind;
use cashmere_mcl::interp::Sampling;
use serde::{Deserialize, Serialize};

/// The four applications (Table II order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    Raytracer,
    Matmul,
    Kmeans,
    Nbody,
}

// Hand-written so the JSON form is the stable CLI token (`raytracer`,
// `matmul`, `kmeans`, `nbody`), with the paper's display spellings
// (`k-means`, `n-body`) accepted on input via [`AppId::parse`].
impl Serialize for AppId {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.token().to_string())
    }
}

impl Deserialize for AppId {
    fn from_content(content: &serde::Content) -> Result<AppId, serde::DeError> {
        match content.as_str() {
            Some(s) => AppId::parse(s).ok_or_else(|| serde::DeError::unknown_variant(s, "AppId")),
            None => Err(serde::DeError::expected("string", "AppId", content)),
        }
    }
}

impl AppId {
    pub const ALL: [AppId; 4] = [AppId::Raytracer, AppId::Matmul, AppId::Kmeans, AppId::Nbody];

    pub fn name(self) -> &'static str {
        match self {
            AppId::Raytracer => "raytracer",
            AppId::Matmul => "matmul",
            AppId::Kmeans => "k-means",
            AppId::Nbody => "n-body",
        }
    }

    /// The undashed CLI/JSON token (`kmeans` where [`AppId::name`] says
    /// `k-means`).
    pub fn token(self) -> &'static str {
        match self {
            AppId::Raytracer => "raytracer",
            AppId::Matmul => "matmul",
            AppId::Kmeans => "kmeans",
            AppId::Nbody => "nbody",
        }
    }

    pub fn parse(s: &str) -> Option<AppId> {
        match s.to_ascii_lowercase().as_str() {
            "raytracer" | "rt" => Some(AppId::Raytracer),
            "matmul" | "mm" => Some(AppId::Matmul),
            "kmeans" | "k-means" | "km" => Some(AppId::Kmeans),
            "nbody" | "n-body" | "nb" => Some(AppId::Nbody),
            _ => None,
        }
    }
}

/// The paper's three measurement series (Sec. IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Series {
    Satin,
    CashmereUnopt,
    CashmereOpt,
}

// Hand-written: the JSON form is [`Series::name`] (`satin`,
// `cashmere-unopt`, `cashmere-opt`).
impl Serialize for Series {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.name().to_string())
    }
}

impl Deserialize for Series {
    fn from_content(content: &serde::Content) -> Result<Series, serde::DeError> {
        match content.as_str() {
            Some(s) => Series::parse(s).ok_or_else(|| serde::DeError::unknown_variant(s, "Series")),
            None => Err(serde::DeError::expected("string", "Series", content)),
        }
    }
}

impl Series {
    pub const ALL: [Series; 3] = [Series::Satin, Series::CashmereUnopt, Series::CashmereOpt];

    pub fn name(self) -> &'static str {
        match self {
            Series::Satin => "satin",
            Series::CashmereUnopt => "cashmere-unopt",
            Series::CashmereOpt => "cashmere-opt",
        }
    }

    pub fn parse(s: &str) -> Option<Series> {
        Series::ALL.into_iter().find(|x| x.name() == s)
    }
}

/// Recovery-cost accounting of one faulted run: how gracefully the cluster
/// degraded. Present on a [`RunOutcome`] only when the run observed
/// injected faults, so fault-free artifacts keep their exact bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverySummary {
    pub crashes: u64,
    /// Nodes that (re)joined mid-run.
    pub joins: u64,
    /// Subtree roots re-queued for re-execution after crashes.
    pub jobs_restarted: u64,
    /// Orphan results salvaged into the global result table.
    pub orphans_harvested: u64,
    /// Salvaged results reused instead of re-executing their subtree.
    pub orphans_reused: u64,
    /// Salvaged results that expired unused (holder crashed or run ended).
    pub orphans_expired: u64,
    /// Virtual time spent redoing lost work (re-executed leaf compute plus
    /// aborted device time).
    pub work_lost_s: f64,
    /// Wall (virtual) time with at least one restarted subtree outstanding.
    pub time_to_recover_s: f64,
}

impl RecoverySummary {
    pub fn from_report(r: &cashmere_satin::RunReport) -> RecoverySummary {
        RecoverySummary {
            crashes: r.crashes,
            joins: r.joins,
            jobs_restarted: r.jobs_restarted,
            orphans_harvested: r.orphans_harvested,
            orphans_reused: r.orphans_reused,
            orphans_expired: r.orphans_expired,
            work_lost_s: r.recovery_time.as_secs_f64(),
            time_to_recover_s: r.time_to_recover.as_secs_f64(),
        }
    }
}

/// Result of one measured run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    pub app: String,
    pub series: String,
    pub nodes: usize,
    pub makespan_s: f64,
    pub gflops: f64,
    pub kernels_run: u64,
    pub cpu_fallbacks: u64,
    pub steals_ok: u64,
    pub network_bytes: u64,
    /// Failure-accounting section of the run report; present only when the
    /// run observed injected faults (`--faults`).
    pub failure_summary: Option<String>,
    /// Recovery-cost counters; present only alongside `failure_summary`.
    pub recovery: Option<RecoverySummary>,
}

/// Node-level grain at paper scale. The light-communication applications
/// use ≈1024 node jobs so the end-of-run tail (in-flight leaves cannot
/// migrate) stays a small fraction of the makespan even on the 22-node
/// heterogeneous configurations; matmul uses ≈256 taller jobs because each
/// device job re-ships a `B` column panel, so smaller jobs would multiply
/// PCIe traffic.
pub(crate) fn node_grain(app: AppId) -> u64 {
    match app {
        AppId::Raytracer => RaytracerProblem::paper().pixels() / 1024,
        AppId::Matmul => 128,     // 32768 rows / 128 = 256 jobs
        AppId::Kmeans => 262_144, // ≈1024 jobs of 268 M points
        AppId::Nbody => 1_954,    // 2 M bodies / 1024
    }
}

pub(crate) const DEVICE_JOBS: u64 = 8;

pub(crate) fn kernel_set(series: Series) -> KernelSet {
    match series {
        Series::CashmereOpt => KernelSet::Optimized,
        _ => KernelSet::Unoptimized,
    }
}

/// Fig. 6 measurement: kernel execution time alone (no transfers) for one
/// representative device job of the paper-scale problem.
pub fn kernel_gflops(app: AppId, set: KernelSet, device: DeviceKind) -> Option<f64> {
    let _prof = cashmere_des::obs::prof::scope("kernel::measure");
    let h = cashmere_hwdesc::standard_hierarchy();
    let dev = SimDevice::new(&h, device.level(&h)).ok()?;
    let job = (0u64, node_grain(app) / DEVICE_JOBS);

    let (reg, call, flops) = match app {
        AppId::Raytracer => {
            let pr = RaytracerProblem::paper();
            let a = RaytracerApp::new(pr, AppMode::Phantom, node_grain(app), DEVICE_JOBS);
            (
                RaytracerApp::registry(set),
                cashmere::CashmereApp::kernel_call(&a, &job),
                pr.job_flops(job.1),
            )
        }
        AppId::Matmul => {
            let pr = MatmulProblem::paper();
            let a = MatmulApp::phantom(pr, node_grain(app), DEVICE_JOBS);
            // One device job exactly as the cluster runs produce them: a
            // node-grain row stripe × one of the 8 column panels.
            let djob = cashmere::CashmereApp::device_jobs(&a, &a.row_job(0, node_grain(app)))[0];
            (
                MatmulApp::registry(set),
                cashmere::CashmereApp::kernel_call(&a, &djob),
                pr.block_flops(djob.rows(), djob.cols()),
            )
        }
        AppId::Kmeans => {
            let pr = KmeansProblem::paper();
            let a = KmeansApp::phantom(pr, node_grain(app), DEVICE_JOBS);
            (
                KmeansApp::registry(set),
                cashmere::CashmereApp::kernel_call(&a, &job),
                pr.job_flops(job.1),
            )
        }
        AppId::Nbody => {
            let pr = NbodyProblem::paper();
            let a = NbodyApp::phantom(pr, node_grain(app), DEVICE_JOBS);
            (
                NbodyApp::registry(set),
                cashmere::CashmereApp::kernel_call(&a, &job),
                pr.job_flops(job.1),
            )
        }
    };

    let kernel_name = call.kernel.clone();
    let ck = reg.select(&kernel_name, dev.level)?;
    let run = dev
        .run_kernel(
            &h,
            ck,
            call.args,
            ExecMode::Sampled {
                sampling: Sampling::default(),
                extra_scale: call.extra_scale,
            },
        )
        .ok()?;
    Some(flops / run.cost.total_s / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_and_series_parse() {
        assert_eq!(AppId::parse("matmul"), Some(AppId::Matmul));
        assert_eq!(AppId::parse("K-MEANS"), Some(AppId::Kmeans));
        assert_eq!(AppId::parse("bogus"), None);
        assert_eq!(Series::ALL.len(), 3);
        assert_eq!(Series::parse("cashmere-opt"), Some(Series::CashmereOpt));
    }

    #[test]
    fn ids_serialize_kebab_case() {
        assert_eq!(
            serde_json::to_string(&AppId::Kmeans).unwrap(),
            r#""kmeans""#
        );
        assert_eq!(
            serde_json::from_str::<AppId>(r#""k-means""#).unwrap(),
            AppId::Kmeans
        );
        assert_eq!(
            serde_json::to_string(&Series::CashmereUnopt).unwrap(),
            r#""cashmere-unopt""#
        );
        assert_eq!(
            serde_json::from_str::<Series>(r#""satin""#).unwrap(),
            Series::Satin
        );
    }

    #[test]
    fn kernel_gflops_sane_for_matmul() {
        let un = kernel_gflops(AppId::Matmul, KernelSet::Unoptimized, DeviceKind::Gtx480).unwrap();
        let opt = kernel_gflops(AppId::Matmul, KernelSet::Optimized, DeviceKind::Gtx480).unwrap();
        assert!(opt > un * 2.0, "opt {opt:.0} vs unopt {un:.0}");
        assert!(opt < 1345.0, "below GTX480 peak");
    }
}
