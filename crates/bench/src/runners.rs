//! Shared experiment glue: build and run any of the four applications at
//! paper scale, in any of the three measurement series, on any cluster.
//!
//! Grain choices (node-level jobs ≈ 64, device jobs = 8 per leaf, Satin
//! leaves 8× finer) mirror the paper's setup: "Satin has more overhead in
//! job creation because it needs to create 8 times more jobs to keep one
//! node busy" (Sec. V-B).

use crate::advisor::PerturbSet;
use crate::obs::ObsCapture;
use cashmere::{build_cluster, AuditEntry, CashmereLeafRuntime, ClusterSpec, RuntimeConfig};
use cashmere_apps::kmeans::{self, KmeansApp, KmeansProblem};
use cashmere_apps::matmul::{MatmulApp, MatmulProblem};
use cashmere_apps::nbody::{self, NbodyApp, NbodyProblem};
use cashmere_apps::raytracer::{RaytracerApp, RaytracerProblem};
use cashmere_apps::{AppMode, KernelSet};
use cashmere_des::fault::FaultPlan;
use cashmere_devsim::{ExecMode, SimDevice};
use cashmere_hwdesc::DeviceKind;
use cashmere_mcl::interp::Sampling;
use cashmere_satin::{ClusterApp, ClusterSim, LeafRuntime, RunReport, SimConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The four applications (Table II order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppId {
    Raytracer,
    Matmul,
    Kmeans,
    Nbody,
}

impl AppId {
    pub const ALL: [AppId; 4] = [AppId::Raytracer, AppId::Matmul, AppId::Kmeans, AppId::Nbody];

    pub fn name(self) -> &'static str {
        match self {
            AppId::Raytracer => "raytracer",
            AppId::Matmul => "matmul",
            AppId::Kmeans => "k-means",
            AppId::Nbody => "n-body",
        }
    }

    pub fn parse(s: &str) -> Option<AppId> {
        match s.to_ascii_lowercase().as_str() {
            "raytracer" | "rt" => Some(AppId::Raytracer),
            "matmul" | "mm" => Some(AppId::Matmul),
            "kmeans" | "k-means" | "km" => Some(AppId::Kmeans),
            "nbody" | "n-body" | "nb" => Some(AppId::Nbody),
            _ => None,
        }
    }
}

/// The paper's three measurement series (Sec. IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Series {
    Satin,
    CashmereUnopt,
    CashmereOpt,
}

impl Series {
    pub const ALL: [Series; 3] = [Series::Satin, Series::CashmereUnopt, Series::CashmereOpt];

    pub fn name(self) -> &'static str {
        match self {
            Series::Satin => "satin",
            Series::CashmereUnopt => "cashmere-unopt",
            Series::CashmereOpt => "cashmere-opt",
        }
    }
}

/// Result of one measured run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    pub app: String,
    pub series: String,
    pub nodes: usize,
    pub makespan_s: f64,
    pub gflops: f64,
    pub kernels_run: u64,
    pub cpu_fallbacks: u64,
    pub steals_ok: u64,
    pub network_bytes: u64,
    /// Failure-accounting section of the run report; present only when the
    /// run observed injected faults (`--faults`).
    pub failure_summary: Option<String>,
}

/// Node-level grain at paper scale. The light-communication applications
/// use ≈1024 node jobs so the end-of-run tail (in-flight leaves cannot
/// migrate) stays a small fraction of the makespan even on the 22-node
/// heterogeneous configurations; matmul uses ≈256 taller jobs because each
/// device job re-ships a `B` column panel, so smaller jobs would multiply
/// PCIe traffic.
fn node_grain(app: AppId) -> u64 {
    match app {
        AppId::Raytracer => RaytracerProblem::paper().pixels() / 1024,
        AppId::Matmul => 128,     // 32768 rows / 128 = 256 jobs
        AppId::Kmeans => 262_144, // ≈1024 jobs of 268 M points
        AppId::Nbody => 1_954,    // 2 M bodies / 1024
    }
}

const DEVICE_JOBS: u64 = 8;

/// Cluster engine configuration used by all paper experiments.
pub fn paper_sim_config(series: Series, seed: u64) -> SimConfig {
    SimConfig {
        cores_per_node: 8,
        seed,
        // Cashmere pipelines two sets of device jobs per node (kernels of
        // one overlap transfers of the other); Satin leaves are one-core
        // jobs, so every core may run one.
        max_concurrent_leaves: match series {
            Series::Satin => usize::MAX,
            _ => 2,
        },
        // Ibis/Satin's steal round trip on QDR IB is tens of microseconds;
        // a 50 µs retry keeps fast devices fed on heterogeneous clusters.
        steal_retry: cashmere_des::SimTime::from_micros(50),
        ..SimConfig::default()
    }
}

fn kernel_set(series: Series) -> KernelSet {
    match series {
        Series::CashmereOpt => KernelSet::Optimized,
        _ => KernelSet::Unoptimized,
    }
}

/// Load a fault plan from a JSON file (the bench bins' `--faults` flag).
pub fn load_fault_plan(path: &str) -> Result<FaultPlan, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Split `--faults <plan.json>` out of argv. Returns the loaded plan (empty
/// when the flag is absent) and the remaining arguments, argv[0] included.
/// Exits with a message on a missing or unreadable plan.
pub fn fault_plan_from_args() -> (FaultPlan, Vec<String>) {
    let mut rest = Vec::new();
    let mut plan = FaultPlan::default();
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--faults" {
            let Some(path) = args.next() else {
                eprintln!("--faults requires a path to a JSON fault plan");
                std::process::exit(2);
            };
            match load_fault_plan(&path) {
                Ok(p) => plan = p,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        } else {
            rest.push(a);
        }
    }
    (plan, rest)
}

fn failures_of(r: &RunReport) -> Option<String> {
    r.saw_failures().then(|| r.failure_summary())
}

/// Clone the observability exports (span trace, metrics, audit log) out of
/// a finished run, when observing.
fn capture_of<A: ClusterApp, L: LeafRuntime<A>>(
    on: bool,
    cs: &ClusterSim<A, L>,
    audit: Vec<AuditEntry>,
) -> Option<ObsCapture> {
    on.then(|| ObsCapture {
        trace: cs.trace().clone(),
        metrics: cs.metrics().clone(),
        audit,
        horizon: cs.trace().horizon(),
    })
}

/// Run one application in one series on the given cluster; phantom mode,
/// paper problem sizes.
pub fn run_app(app: AppId, series: Series, spec: &ClusterSpec, seed: u64) -> RunOutcome {
    run_app_with_faults(app, series, spec, seed, FaultPlan::default())
}

/// [`run_app`] with an injected fault plan.
pub fn run_app_with_faults(
    app: AppId,
    series: Series,
    spec: &ClusterSpec,
    seed: u64,
    faults: FaultPlan,
) -> RunOutcome {
    run_app_observed(app, series, spec, seed, faults, false).0
}

/// [`run_app`] with an injected fault plan and optional observability:
/// when `observe` is set the run executes with tracing on and returns the
/// captured span trace, metrics, and balancer audit log alongside the
/// outcome. Fault plans that do not validate for this cluster size (e.g.
/// crashing a node the spec does not have) are skipped with a note, so one
/// plan can ride through a whole node sweep.
pub fn run_app_observed(
    app: AppId,
    series: Series,
    spec: &ClusterSpec,
    seed: u64,
    faults: FaultPlan,
    observe: bool,
) -> (RunOutcome, Option<ObsCapture>) {
    run_app_perturbed(app, series, spec, seed, faults, observe, None)
}

/// Apply the advisor's per-device perturbations to a freshly built Cashmere
/// cluster, before the run starts.
fn perturb_runtime<A: ClusterApp>(
    cs: &mut ClusterSim<A, CashmereLeafRuntime>,
    perturb: Option<&PerturbSet>,
) where
    CashmereLeafRuntime: LeafRuntime<A>,
{
    if let Some(p) = perturb {
        p.apply_runtime(cs.leaf_runtime_mut());
    }
}

/// [`run_app_observed`] under an advisor perturbation: the cluster-wide
/// factors (network, steal pacing) are scaled into the engine config and
/// the per-device ones (compute speed, PCIe, balancer table) into the
/// Cashmere runtime before the run, so the whole deterministic simulation
/// re-executes in the virtually scaled world. Satin runs only honor the
/// cluster-wide targets (they have no devices).
pub fn run_app_perturbed(
    app: AppId,
    series: Series,
    spec: &ClusterSpec,
    seed: u64,
    faults: FaultPlan,
    observe: bool,
    perturb: Option<&PerturbSet>,
) -> (RunOutcome, Option<ObsCapture>) {
    let mut cfg = paper_sim_config(series, seed);
    cfg.trace = observe;
    match faults.validate(spec.nodes()) {
        Ok(()) => cfg.faults = faults,
        Err(e) => {
            if !faults.is_empty() {
                eprintln!(
                    "note: fault plan skipped for the {}-node {} run: {e}",
                    spec.nodes(),
                    series.name()
                );
            }
        }
    }
    if let Some(p) = perturb {
        p.apply_sim_config(&mut cfg);
    }
    let cfg = cfg;
    let rt_cfg = RuntimeConfig::default();
    let grain = node_grain(app);
    // Satin: leaves sized for a single core (8× more jobs per node).
    let satin_grain = (grain / 8).max(1);

    let (makespan_s, total_flops, kernels, fallbacks, steals, bytes, failures, cap) = match app {
        AppId::Raytracer => {
            let pr = RaytracerProblem::paper();
            match series {
                Series::Satin => {
                    let a = Arc::new(RaytracerApp::new(pr, AppMode::Phantom, satin_grain, 1));
                    let rt = a.satin_runtime();
                    let app2 = RaytracerApp::new(pr, AppMode::Phantom, satin_grain, 1);
                    let mut cs = ClusterSim::new(
                        app2,
                        rt,
                        SimConfig {
                            nodes: spec.nodes(),
                            ..cfg
                        },
                    );
                    let _ = cs.run_root((0, pr.pixels()));
                    let r = cs.report();
                    (
                        r.makespan.as_secs_f64(),
                        pr.flops(),
                        0,
                        0,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, Vec::new()),
                    )
                }
                _ => {
                    let a = RaytracerApp::new(pr, AppMode::Phantom, grain, DEVICE_JOBS);
                    let reg = RaytracerApp::registry(kernel_set(series));
                    let mut cs = build_cluster(a, reg, spec, cfg, rt_cfg).unwrap();
                    perturb_runtime(&mut cs, perturb);
                    let _ = cs.run_root((0, pr.pixels()));
                    let (r, l) = (cs.report(), cs.leaf_runtime());
                    (
                        r.makespan.as_secs_f64(),
                        pr.flops(),
                        l.kernels_run,
                        l.cpu_fallbacks,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, l.audit.clone()),
                    )
                }
            }
        }
        AppId::Matmul => {
            let pr = MatmulProblem::paper();
            match series {
                Series::Satin => {
                    let a = MatmulApp::phantom(pr, satin_grain, 1);
                    let root = a.row_job(0, pr.n);
                    let rt = a.satin_runtime();
                    let mut cs = ClusterSim::new(
                        a,
                        rt,
                        SimConfig {
                            nodes: spec.nodes(),
                            ..cfg
                        },
                    );
                    // Strong scaling includes distributing B to every node —
                    // the O(n²) traffic that makes matmul communication-heavy.
                    let start = cs.now();
                    cs.broadcast(pr.p * pr.m * 4);
                    let bcast = (cs.now() - start).as_secs_f64();
                    let _ = cs.run_root(root);
                    let r = cs.report();
                    (
                        bcast + r.makespan.as_secs_f64(),
                        pr.flops(),
                        0,
                        0,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, Vec::new()),
                    )
                }
                _ => {
                    let a = MatmulApp::phantom(pr, grain, DEVICE_JOBS);
                    let root = a.row_job(0, pr.n);
                    let reg = MatmulApp::registry(kernel_set(series));
                    let mut cs = build_cluster(a, reg, spec, cfg, rt_cfg).unwrap();
                    perturb_runtime(&mut cs, perturb);
                    let start = cs.now();
                    cs.broadcast(pr.p * pr.m * 4);
                    let bcast = (cs.now() - start).as_secs_f64();
                    let _ = cs.run_root(root);
                    let (r, l) = (cs.report(), cs.leaf_runtime());
                    (
                        bcast + r.makespan.as_secs_f64(),
                        pr.flops(),
                        l.kernels_run,
                        l.cpu_fallbacks,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, l.audit.clone()),
                    )
                }
            }
        }
        AppId::Kmeans => {
            let pr = KmeansProblem::paper();
            match series {
                Series::Satin => {
                    let a = Arc::new(KmeansApp::phantom(pr, satin_grain, 1));
                    let rt = a.satin_runtime();
                    let app2 = KmeansApp::phantom(pr, satin_grain, 1);
                    let cents = app2.centroids.clone();
                    let mut cs = ClusterSim::new(
                        app2,
                        rt,
                        SimConfig {
                            nodes: spec.nodes(),
                            ..cfg
                        },
                    );
                    let (_, elapsed) = kmeans::run_iterations(&mut cs, &pr, &cents, false);
                    let r = cs.report();
                    (
                        elapsed.as_secs_f64(),
                        pr.total_flops(),
                        0,
                        0,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, Vec::new()),
                    )
                }
                _ => {
                    let a = KmeansApp::phantom(pr, grain, DEVICE_JOBS);
                    let cents = a.centroids.clone();
                    let reg = KmeansApp::registry(kernel_set(series));
                    let mut cs = build_cluster(a, reg, spec, cfg, rt_cfg).unwrap();
                    perturb_runtime(&mut cs, perturb);
                    let (_, elapsed) = kmeans::run_iterations(&mut cs, &pr, &cents, false);
                    let (r, l) = (cs.report(), cs.leaf_runtime());
                    (
                        elapsed.as_secs_f64(),
                        pr.total_flops(),
                        l.kernels_run,
                        l.cpu_fallbacks,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, l.audit.clone()),
                    )
                }
            }
        }
        AppId::Nbody => {
            let pr = NbodyProblem::paper();
            match series {
                Series::Satin => {
                    let a = Arc::new(NbodyApp::phantom(pr, satin_grain, 1));
                    let rt = a.satin_runtime();
                    let app2 = NbodyApp::phantom(pr, satin_grain, 1);
                    let mut cs = ClusterSim::new(
                        app2,
                        rt,
                        SimConfig {
                            nodes: spec.nodes(),
                            ..cfg
                        },
                    );
                    let elapsed = nbody::run_iterations(&mut cs, &pr, |_| {});
                    let r = cs.report();
                    (
                        elapsed.as_secs_f64(),
                        pr.total_flops(),
                        0,
                        0,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, Vec::new()),
                    )
                }
                _ => {
                    let a = NbodyApp::phantom(pr, grain, DEVICE_JOBS);
                    let reg = NbodyApp::registry(kernel_set(series));
                    let mut cs = build_cluster(a, reg, spec, cfg, rt_cfg).unwrap();
                    perturb_runtime(&mut cs, perturb);
                    let elapsed = nbody::run_iterations(&mut cs, &pr, |_| {});
                    let (r, l) = (cs.report(), cs.leaf_runtime());
                    (
                        elapsed.as_secs_f64(),
                        pr.total_flops(),
                        l.kernels_run,
                        l.cpu_fallbacks,
                        r.steals_ok,
                        r.bytes_total(),
                        failures_of(r),
                        capture_of(observe, &cs, l.audit.clone()),
                    )
                }
            }
        }
    };

    let outcome = RunOutcome {
        app: app.name().to_string(),
        series: series.name().to_string(),
        nodes: spec.nodes(),
        makespan_s,
        gflops: total_flops / makespan_s / 1e9,
        kernels_run: kernels,
        cpu_fallbacks: fallbacks,
        steals_ok: steals,
        network_bytes: bytes,
        failure_summary: failures,
    };
    (outcome, cap)
}

/// Fig. 6 measurement: kernel execution time alone (no transfers) for one
/// representative device job of the paper-scale problem.
pub fn kernel_gflops(app: AppId, set: KernelSet, device: DeviceKind) -> Option<f64> {
    let h = cashmere_hwdesc::standard_hierarchy();
    let dev = SimDevice::new(&h, device.level(&h)).ok()?;
    let job = (0u64, node_grain(app) / DEVICE_JOBS);

    let (reg, call, flops) = match app {
        AppId::Raytracer => {
            let pr = RaytracerProblem::paper();
            let a = RaytracerApp::new(pr, AppMode::Phantom, node_grain(app), DEVICE_JOBS);
            (
                RaytracerApp::registry(set),
                cashmere::CashmereApp::kernel_call(&a, &job),
                pr.job_flops(job.1),
            )
        }
        AppId::Matmul => {
            let pr = MatmulProblem::paper();
            let a = MatmulApp::phantom(pr, node_grain(app), DEVICE_JOBS);
            // One device job exactly as the cluster runs produce them: a
            // node-grain row stripe × one of the 8 column panels.
            let djob = cashmere::CashmereApp::device_jobs(&a, &a.row_job(0, node_grain(app)))[0];
            (
                MatmulApp::registry(set),
                cashmere::CashmereApp::kernel_call(&a, &djob),
                pr.block_flops(djob.rows(), djob.cols()),
            )
        }
        AppId::Kmeans => {
            let pr = KmeansProblem::paper();
            let a = KmeansApp::phantom(pr, node_grain(app), DEVICE_JOBS);
            (
                KmeansApp::registry(set),
                cashmere::CashmereApp::kernel_call(&a, &job),
                pr.job_flops(job.1),
            )
        }
        AppId::Nbody => {
            let pr = NbodyProblem::paper();
            let a = NbodyApp::phantom(pr, node_grain(app), DEVICE_JOBS);
            (
                NbodyApp::registry(set),
                cashmere::CashmereApp::kernel_call(&a, &job),
                pr.job_flops(job.1),
            )
        }
    };

    let kernel_name = call.kernel.clone();
    let ck = reg.select(&kernel_name, dev.level)?;
    let run = dev
        .run_kernel(
            &h,
            ck,
            call.args,
            ExecMode::Sampled {
                sampling: Sampling::default(),
                extra_scale: call.extra_scale,
            },
        )
        .ok()?;
    Some(flops / run.cost.total_s / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_and_series_parse() {
        assert_eq!(AppId::parse("matmul"), Some(AppId::Matmul));
        assert_eq!(AppId::parse("K-MEANS"), Some(AppId::Kmeans));
        assert_eq!(AppId::parse("bogus"), None);
        assert_eq!(Series::ALL.len(), 3);
    }

    #[test]
    fn kernel_gflops_sane_for_matmul() {
        let un = kernel_gflops(AppId::Matmul, KernelSet::Unoptimized, DeviceKind::Gtx480).unwrap();
        let opt = kernel_gflops(AppId::Matmul, KernelSet::Optimized, DeviceKind::Gtx480).unwrap();
        assert!(opt > un * 2.0, "opt {opt:.0} vs unopt {un:.0}");
        assert!(opt < 1345.0, "below GTX480 peak");
    }

    #[test]
    fn scaling_run_one_node_vs_four() {
        let one = run_app(
            AppId::Kmeans,
            Series::CashmereOpt,
            &ClusterSpec::homogeneous(1, "gtx480"),
            1,
        );
        let four = run_app(
            AppId::Kmeans,
            Series::CashmereOpt,
            &ClusterSpec::homogeneous(4, "gtx480"),
            1,
        );
        let speedup = one.makespan_s / four.makespan_s;
        assert!(speedup > 2.0, "4-node speedup {speedup:.2}");
        assert!(four.gflops > one.gflops * 2.0);
    }
}
