//! Table printing and JSON output for the harness binaries.

use crate::scenario::Scenario;
use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// A simple aligned-column text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:>w$}", w = width[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }
}

/// Write a serializable value as JSON under `bench/out/<name>.json`
/// (relative to the workspace root); prints the path on success.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("bench/out");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => match fs::write(&path, s) {
            Ok(()) => println!("[wrote {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("warning: serialize {name}: {e}"),
    }
}

/// The shape every provenance-bearing artifact shares: the resolved
/// scenarios that produced the data, then the data itself. Re-running any
/// provenance entry through `run_scenario` reproduces its rows
/// byte-identically.
struct Report<'a, T: Serialize> {
    schema: u32,
    /// Resolved scenarios in declared run order, outputs stripped (the
    /// observability flags of the generating invocation are not part of
    /// the experiment).
    provenance: Vec<Scenario>,
    data: &'a T,
}

// Hand-written: the shim's derive rejects generic types.
impl<T: Serialize> Serialize for Report<'_, T> {
    fn to_content(&self) -> serde::Content {
        use serde::Content;
        Content::Map(vec![
            (Content::Str("schema".to_string()), self.schema.to_content()),
            (
                Content::Str("provenance".to_string()),
                self.provenance.to_content(),
            ),
            (Content::Str("data".to_string()), self.data.to_content()),
        ])
    }
}

/// [`write_json`] with a provenance block: the JSON artifact embeds the
/// resolved scenarios that produced it, so any published number can be
/// re-run from the output file alone.
pub fn write_report<T: Serialize>(name: &str, scenarios: &[Scenario], data: &T) {
    let report = Report {
        schema: 1,
        provenance: scenarios.iter().map(Scenario::provenance_form).collect(),
        data,
    };
    write_json(name, &report);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
