//! # cashmere-bench — figure and table regeneration harnesses
//!
//! One binary per experiment of the paper's evaluation (Sec. V):
//!
//! | binary    | regenerates |
//! |-----------|-------------|
//! | `tables`  | Table I (TOP500 background), Table II (app classes), Fig. 2 (hierarchy) |
//! | `fig6`    | Fig. 6 — kernel GFLOPS, unoptimized vs optimized, 4 apps × 7 devices |
//! | `scaling` | Figs. 7–14 — speedup + absolute GFLOPS, 1..16 GTX480 nodes, three series |
//! | `hetero`  | Table III + Fig. 15 — heterogeneous GFLOPS and efficiency |
//! | `gantt`   | Figs. 16/17 — Gantt charts of the heterogeneous K-means run |
//! | `advisor` | What-if ranking: virtual-speedup re-executions, utilization, counterfactuals |
//! | `diff`    | Regression explainer — re-runs two scenarios/artifacts and attributes the makespan delta |
//!
//! All binaries print the series the paper plots and write JSON to
//! `bench/out/`. Runs are deterministic (fixed seeds, virtual time).

pub mod advisor;
pub mod obs;
pub mod output;
pub mod runners;
pub mod scenario;
pub mod sweep;

pub use advisor::{
    advise, AdvisorFull, AdvisorJson, AdvisorRun, CounterfactualSummary, LaneSummary, PerturbSet,
    UtilizationSummary,
};
pub use obs::{
    fingerprint, labeled_path, obs_args, parse_simtime, report_run, subsystem_rows,
    write_self_profile, ObsArgs, ObsCapture, SelfProfileReport, SubsystemShare,
};
pub use output::{write_json, write_report, Table};
pub use runners::{kernel_gflops, AppId, RecoverySummary, RunOutcome, Series};
pub use scenario::cli::{self, load_fault_plan, CommonArgs};
pub use scenario::{run_scenario, PolicySpec, Problem, Scenario, ScenarioReport, ScenarioRun};
pub use sweep::{default_jobs, jobs_from_args, sweep, sweep_fns};
