//! What-if advisor driver: apply perturbations to live simulations and fan
//! the re-executions out over the deterministic sweep executor.
//!
//! The vocabulary (specs, candidate enumeration, ranked report) lives in
//! `cashmere_des::obs::advisor`; this module supplies the two things the
//! DES layer cannot know: *how* each perturbation maps onto the stack
//! ([`PerturbSet::apply_sim_config`] for cluster-wide knobs,
//! [`PerturbSet::apply_runtime`] for per-device ones) and *how* to re-run a
//! workload ([`advise`] takes a runner closure, so paper-scale bins and
//! small test problems share the driver).
//!
//! Every experiment is a full deterministic re-execution with one factor
//! scaled; results are reassembled in declared order after [`sweep`]
//! returns, so the report — text and JSON — is byte-identical at any
//! `--jobs`.

use crate::obs::ObsCapture;
use crate::sweep::sweep;
use cashmere::counterfactual::replay_audit;
use cashmere::{CashmereLeafRuntime, ClusterSpec};
use cashmere_des::obs::{
    critical_share_pct, enumerate_candidates, CriticalPath, PerturbTarget, Perturbation,
    UtilizationTimelines, WhatIfReport,
};
use cashmere_des::SimTime;
use cashmere_satin::SimConfig;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A set of perturbations applied to one re-execution. Auto-enumerated
/// experiments are always singletons; `--what-if dev:k20:2x+net:2x` builds
/// a joint set whose factors apply together in one run. Serializes
/// transparently as the perturbation list, so a `Scenario`'s `perturb`
/// field reads as a plain JSON array.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerturbSet {
    pub items: Vec<Perturbation>,
}

// Hand-written transparent (de)serialization: a set IS its perturbation
// list in JSON.
impl Serialize for PerturbSet {
    fn to_content(&self) -> serde::Content {
        self.items.to_content()
    }
}

impl Deserialize for PerturbSet {
    fn from_content(content: &serde::Content) -> Result<PerturbSet, serde::DeError> {
        Vec::<Perturbation>::from_content(content).map(|items| PerturbSet { items })
    }
}

impl PerturbSet {
    pub fn single(p: Perturbation) -> PerturbSet {
        PerturbSet { items: vec![p] }
    }

    /// Parse a `+`-joined joint spec (`dev:k20:2x+net:2x`); a plain spec
    /// parses to a singleton set.
    pub fn parse_list(s: &str) -> Result<PerturbSet, String> {
        let items = s
            .split('+')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(Perturbation::parse)
            .collect::<Result<Vec<_>, _>>()?;
        if items.is_empty() {
            return Err(format!("no perturbations in `{s}`"));
        }
        Ok(PerturbSet { items })
    }

    /// Canonical joint spec (`dev:k20:2x+net:*:2x`).
    pub fn spec(&self) -> String {
        self.items
            .iter()
            .map(Perturbation::spec)
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Apply the cluster-wide perturbations (network fabric, steal pacing)
    /// to the engine configuration, before the cluster is built.
    pub fn apply_sim_config(&self, cfg: &mut SimConfig) {
        let div = |t: SimTime, f: f64| SimTime::from_secs_f64(t.as_secs_f64() / f);
        for p in &self.items {
            match p.target {
                PerturbTarget::Network => cfg.net = cfg.net.scaled(p.factor),
                PerturbTarget::StealRetry => {
                    cfg.steal_retry = div(cfg.steal_retry, p.factor);
                    cfg.steal_retry_max = div(cfg.steal_retry_max, p.factor);
                    cfg.steal_timeout = div(cfg.steal_timeout, p.factor);
                }
                _ => {}
            }
        }
    }

    /// Apply the per-device perturbations (compute speed, PCIe link,
    /// balancer table belief) to a built Cashmere leaf runtime, before the
    /// run starts.
    pub fn apply_runtime(&self, rt: &mut CashmereLeafRuntime) {
        for p in &self.items {
            match p.target {
                PerturbTarget::DeviceSpeed => {
                    rt.scale_device_speed(&p.selector, p.factor);
                }
                PerturbTarget::PcieLink => {
                    rt.scale_pcie(&p.selector, p.factor);
                }
                PerturbTarget::BalancerTable => {
                    rt.scale_balancer_table(&p.selector, p.factor);
                }
                _ => {}
            }
        }
    }
}

/// One audit-log replay under a perturbed speed table (see
/// `cashmere::counterfactual`): how many recorded placements would flip.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterfactualSummary {
    /// The perturbation whose table the audit was replayed under.
    pub spec: String,
    pub decisions: usize,
    pub replayed: usize,
    pub flips: usize,
    pub flip_pct: f64,
}

/// Compact per-lane occupancy: everything in [`LaneUsage`] except the
/// step-function points. The full timelines of a paper-scale run serialize
/// to megabytes of `(time, count)` pairs — this summary is what the default
/// advisor artifact carries; the points stay available behind `--full-json`
/// (see [`AdvisorFull`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaneSummary {
    pub lane: usize,
    pub name: String,
    pub spans: usize,
    pub busy: SimTime,
    pub busy_pct: f64,
}

/// Compact form of [`UtilizationTimelines`]: per-lane busy fractions
/// without the occupancy step functions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationSummary {
    pub horizon: SimTime,
    pub lanes: Vec<LaneSummary>,
}

impl UtilizationSummary {
    pub fn of(full: &UtilizationTimelines) -> UtilizationSummary {
        UtilizationSummary {
            horizon: full.horizon,
            lanes: full
                .lanes
                .iter()
                .map(|l| LaneSummary {
                    lane: l.lane,
                    name: l.name.clone(),
                    spans: l.spans,
                    busy: l.busy,
                    busy_pct: l.busy_pct,
                })
                .collect(),
        }
    }
}

/// Everything one advisor invocation produces, JSON-serializable. Field
/// order (and therefore the pretty-printed bytes) is deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdvisorJson {
    /// Ranked what-if table, best measured improvement first.
    pub report: WhatIfReport,
    /// Per-lane occupancy of the *baseline* run (compact; the step
    /// functions live in [`AdvisorRun::timelines`]).
    pub utilization: UtilizationSummary,
    /// Audit replays for the device-speed / table experiments.
    pub counterfactuals: Vec<CounterfactualSummary>,
}

/// The full-fidelity advisor dump (`--full-json`): the ranked report with
/// the complete occupancy step functions instead of the compact summary.
#[derive(Debug, Clone)]
pub struct AdvisorFull<'a> {
    pub report: &'a WhatIfReport,
    pub utilization: &'a UtilizationTimelines,
    pub counterfactuals: &'a [CounterfactualSummary],
}

// Hand-written: the shim's derive rejects lifetime-generic types.
impl Serialize for AdvisorFull<'_> {
    fn to_content(&self) -> serde::Content {
        use serde::Content;
        Content::Map(vec![
            (Content::Str("report".to_string()), self.report.to_content()),
            (
                Content::Str("utilization".to_string()),
                self.utilization.to_content(),
            ),
            (
                Content::Str("counterfactuals".to_string()),
                self.counterfactuals.to_content(),
            ),
        ])
    }
}

/// Advisor output: the serializable report, the rendered text digest, and
/// the full baseline timelines (for `--full-json` dumps).
#[derive(Debug, Clone)]
pub struct AdvisorRun {
    pub json: AdvisorJson,
    pub text: String,
    /// Full occupancy step functions of the baseline run.
    pub timelines: UtilizationTimelines,
}

/// Run the full advisor workflow over one workload.
///
/// `runner(perturb, observe)` must deterministically re-execute the
/// workload — same seed, same problem — returning the makespan in seconds
/// and, when `observe` is set, the observability capture. The baseline runs
/// first (observed, unperturbed); then either the explicit `what_if`
/// experiments or, when that list is empty, every enumerated candidate ×
/// every `factors` entry, fanned out over `jobs` worker threads.
pub fn advise<F>(
    workload: &str,
    seed: u64,
    spec: &ClusterSpec,
    what_if: &[PerturbSet],
    factors: &[f64],
    jobs: usize,
    runner: F,
) -> Result<AdvisorRun, String>
where
    F: Fn(Option<&PerturbSet>, bool) -> (f64, Option<ObsCapture>) + Sync,
{
    let (baseline_s, cap) = runner(None, true);
    let cap = cap.ok_or("advisor runner returned no capture for the baseline run")?;
    let cp = CriticalPath::compute(&cap.trace);

    // Experiment list: explicit what-ifs verbatim, otherwise enumerated
    // candidates swept over the factor list. `cp_share_pct` records what
    // pure critical-path extrapolation would credit each experiment.
    let experiments: Vec<(PerturbSet, f64)> = if what_if.is_empty() {
        enumerate_candidates(&cap.trace, &spec.distinct_devices())
            .iter()
            .flat_map(|c| {
                factors.iter().map(|&f| {
                    (
                        PerturbSet::single(c.perturbation.with_factor(f)),
                        c.cp_share_pct,
                    )
                })
            })
            .collect()
    } else {
        what_if
            .iter()
            .map(|set| {
                let share = set
                    .items
                    .iter()
                    .map(|p| critical_share_pct(&cp, p.target))
                    .fold(0.0f64, f64::max);
                (set.clone(), share)
            })
            .collect()
    };

    // One full deterministic re-execution per experiment; results come back
    // in declared order, so the report is identical at any `jobs`.
    let sets: Vec<PerturbSet> = experiments.iter().map(|(s, _)| s.clone()).collect();
    let makespans = sweep(sets, jobs, |set| runner(Some(&set), false).0);

    let baseline_ns = SimTime::from_secs_f64(baseline_s).as_nanos();
    let mut report = WhatIfReport::new(workload, seed, baseline_ns);
    for ((set, share), m) in experiments.iter().zip(&makespans) {
        report.push(&set.items[0], *share, SimTime::from_secs_f64(*m).as_nanos());
        // A joint set is one experiment; report it under its joint spec.
        if set.items.len() > 1 {
            report.rows.last_mut().expect("just pushed").spec = set.spec();
        }
    }
    report.rank();

    // Baseline-side context: occupancy timelines and, for the experiments
    // that change what the balancer believes about device speed, an audit
    // replay showing which recorded placements would flip.
    let utilization = UtilizationTimelines::compute(&cap.trace);
    let mut counterfactuals = Vec::new();
    if !cap.audit.is_empty() {
        for (set, _) in &experiments {
            for p in &set.items {
                if !matches!(
                    p.target,
                    PerturbTarget::DeviceSpeed | PerturbTarget::BalancerTable
                ) {
                    continue;
                }
                let replay = replay_audit(&cap.audit, |node, didx| {
                    match spec.node_devices[node].get(didx) {
                        Some(name) if p.matches_device(name) => p.factor,
                        _ => 1.0,
                    }
                });
                counterfactuals.push(CounterfactualSummary {
                    spec: p.spec(),
                    decisions: replay.decisions,
                    replayed: replay.replayed,
                    flips: replay.flips.len(),
                    flip_pct: replay.flip_pct(),
                });
            }
        }
    }

    let mut text = report.to_text();
    text.push('\n');
    text.push_str(&utilization.text_digest());
    if !counterfactuals.is_empty() {
        text.push_str("\nbalancer counterfactuals (audit replay under the perturbed table):\n");
        let w = counterfactuals
            .iter()
            .map(|c| c.spec.len())
            .max()
            .unwrap_or(4);
        for c in &counterfactuals {
            let _ = writeln!(
                text,
                "  {:<w$}  {}/{} placements flip ({:.1}%)",
                c.spec, c.flips, c.replayed, c.flip_pct
            );
        }
    }

    Ok(AdvisorRun {
        json: AdvisorJson {
            report,
            utilization: UtilizationSummary::of(&utilization),
            counterfactuals,
        },
        text,
        timelines: utilization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_list_splits_and_validates() {
        let set = PerturbSet::parse_list("dev:*:2x+ net:0.5").unwrap();
        assert_eq!(set.items.len(), 2);
        assert_eq!(set.spec(), "dev:*:2x+net:*:0.5x");
        assert_eq!(PerturbSet::parse_list("steal:2x").unwrap().items.len(), 1);
        assert!(PerturbSet::parse_list("").is_err());
        assert!(PerturbSet::parse_list("dev:*:zero").is_err());
    }

    #[test]
    fn sim_config_perturbations_scale_the_right_knobs() {
        let mut cfg = SimConfig::default();
        let base = cfg.clone();
        PerturbSet::parse_list("net:2x+steal:2x")
            .unwrap()
            .apply_sim_config(&mut cfg);
        assert!((cfg.net.bandwidth_gbs - base.net.bandwidth_gbs * 2.0).abs() < 1e-12);
        assert_eq!(
            cfg.net.latency,
            SimTime::from_secs_f64(base.net.latency.as_secs_f64() / 2.0)
        );
        assert_eq!(
            cfg.steal_retry,
            SimTime::from_secs_f64(base.steal_retry.as_secs_f64() / 2.0)
        );
        assert_eq!(
            cfg.steal_timeout,
            SimTime::from_secs_f64(base.steal_timeout.as_secs_f64() / 2.0)
        );
        // Device-level perturbations leave the engine config alone.
        let mut cfg2 = SimConfig::default();
        PerturbSet::parse_list("dev:*:2x+pcie:*:2x+table:*:2x")
            .unwrap()
            .apply_sim_config(&mut cfg2);
        assert_eq!(cfg2.net, SimConfig::default().net);
        assert_eq!(cfg2.steal_retry, SimConfig::default().steal_retry);
    }

    #[test]
    fn runtime_perturbations_reach_the_device_slots() {
        use cashmere::RuntimeConfig;
        use cashmere_apps::kmeans::KmeansApp;
        let reg = KmeansApp::registry(cashmere_apps::KernelSet::Optimized);
        let spec = vec![vec!["gtx480".to_string(), "k20".to_string()]];
        let mut rt = CashmereLeafRuntime::new(reg, &spec, RuntimeConfig::default()).unwrap();
        PerturbSet::parse_list("dev:k20:2x+pcie:*:4x")
            .unwrap()
            .apply_runtime(&mut rt);
        assert_eq!(rt.nodes[0].devices[0].sim.speed_scale, 1.0);
        assert_eq!(rt.nodes[0].devices[1].sim.speed_scale, 2.0);
        assert_eq!(rt.nodes[0].devices[0].sim.pcie_scale, 4.0);
        assert_eq!(rt.nodes[0].devices[1].sim.pcie_scale, 4.0);
    }
}
