//! Parallel sweeps must be invisible: `--jobs 4` and `--jobs 1` produce
//! byte-identical stdout (tables) and JSON output for the same invocation.
//!
//! Runs the real `scaling` binary (one app to keep CI fast) twice and
//! compares both channels byte-for-byte.

use std::path::PathBuf;
use std::process::Command;

fn run_scaling(jobs: &str) -> (Vec<u8>, Vec<u8>) {
    let exe = env!("CARGO_BIN_EXE_scaling");
    let out = Command::new(exe)
        .args(["kmeans", "--jobs", jobs])
        .output()
        .expect("scaling binary runs");
    assert!(
        out.status.success(),
        "scaling --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The JSON lands in bench/out/ at the repo root.
    let mut json = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    json.pop();
    json.pop();
    json.push("bench/out/fig7_14_scaling_kmeans.json");
    let json = std::fs::read(&json).expect("scaling wrote its JSON");
    (out.stdout, json)
}

#[test]
fn scaling_jobs_4_is_byte_identical_to_jobs_1() {
    let (stdout_seq, json_seq) = run_scaling("1");
    let (stdout_par, json_par) = run_scaling("4");
    assert_eq!(
        stdout_seq, stdout_par,
        "stdout differs between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        json_seq, json_par,
        "JSON output differs between --jobs 1 and --jobs 4"
    );
    // Sanity: the run actually produced the paper's table, not an error.
    let text = String::from_utf8(stdout_seq).expect("stdout is UTF-8");
    assert!(text.contains("Fig. 11"), "expected the k-means figures");
    assert!(text.contains("cashmere-opt"), "expected all three series");
}
