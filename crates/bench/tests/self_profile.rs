//! Self-profiler contract tests: profiling is observer-pure (reports and
//! artifacts are byte-identical with profiling on or off, at any `--jobs`
//! width) and the aggregated tree is structurally stable (merge order
//! never shows). Plus well-formedness of the collapsed-stack export.

use cashmere::ClusterSpec;
use cashmere_bench::{run_scenario, sweep, AppId, Problem, Scenario, ScenarioReport, Series};
use cashmere_des::fault::{FaultPlan, LinkFault, NodeCrash, NodeJoin};
use cashmere_des::obs::{prof, ProfNode, ProfTree};
use cashmere_des::SimTime;
use std::sync::Mutex;

/// The profiler's enable flag and absorbed-tree accumulator are process
/// globals; serialize the tests that touch them.
static PROF_LOCK: Mutex<()> = Mutex::new(());

/// A small chaos scenario: crash + rejoin + lossy link, the workload whose
/// recovery machinery exercises the most instrumented paths.
fn chaos(crash_ms: u64) -> Scenario {
    Scenario::new(
        format!("prof-chaos-{crash_ms}"),
        AppId::Kmeans,
        Series::CashmereOpt,
        &ClusterSpec::homogeneous(2, "gtx480"),
    )
    .with_problem(Problem::Kmeans {
        n: 1_000_000,
        k: 256,
        d: 4,
        iterations: 1,
    })
    .with_grain(125_000)
    .with_faults(FaultPlan {
        node_crashes: vec![NodeCrash {
            node: 1,
            at: SimTime::from_millis(crash_ms),
        }],
        node_joins: vec![NodeJoin {
            node: 1,
            at: SimTime::from_millis(crash_ms + 5),
        }],
        link_faults: vec![LinkFault {
            src: None,
            dst: Some(0),
            from: SimTime::from_millis(1),
            until: SimTime::from_millis(crash_ms + 8),
            loss: 0.1,
            spike: SimTime::from_micros(200),
            spike_probability: 0.2,
        }],
        ..FaultPlan::default()
    })
}

fn scenarios() -> Vec<Scenario> {
    vec![chaos(2), chaos(4), chaos(6), chaos(8)]
}

/// Run the chaos sweep at the given jobs width, returning the canonical
/// report bytes per point and the drained profile tree.
fn sweep_reports(jobs: usize) -> (Vec<String>, ProfTree) {
    let reports = sweep(scenarios(), jobs, |sc| {
        ScenarioReport::new(&sc, run_scenario(&sc).outcome).to_canonical_json()
    });
    (reports, prof::take())
}

/// The shape of a tree with the host-dependent numbers erased: the
/// structural identity [`prof::take`]'s name-sort guarantees.
fn skeleton(nodes: &[ProfNode]) -> Vec<(String, Vec<(String, usize)>)> {
    nodes
        .iter()
        .map(|n| {
            (
                n.name.clone(),
                n.children
                    .iter()
                    .map(|c| (c.name.clone(), c.children.len()))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn profiling_is_observer_pure_at_any_jobs_width() {
    let _guard = PROF_LOCK.lock().unwrap();
    prof::set_enabled(false);
    let _ = prof::take();

    // Profiling off: the baseline bytes.
    let (off, empty) = sweep_reports(1);
    assert!(empty.is_empty(), "disabled profiler records nothing");
    let (off4, _) = sweep_reports(4);
    assert_eq!(off, off4, "sweep is --jobs independent before profiling");

    // Profiling on, sequential and parallel.
    prof::set_enabled(true);
    let (on1, tree1) = sweep_reports(1);
    prof::set_enabled(true); // re-stamp; take() above drained the state
    let (on4, tree4) = sweep_reports(4);
    prof::set_enabled(false);

    assert_eq!(off, on1, "profiling must not change report bytes (jobs=1)");
    assert_eq!(off, on4, "profiling must not change report bytes (jobs=4)");

    // The instrumented layers actually recorded: event dispatch and the
    // scenario driver at minimum.
    assert!(!tree1.is_empty() && !tree4.is_empty());
    let names1 = tree1.collapsed("t");
    assert!(names1.contains("scenario::run"), "{names1}");
    assert!(names1.contains("event::"), "{names1}");
    assert!(names1.contains("mcl::execute"), "{names1}");

    // Merge determinism: identical structure regardless of which worker
    // ran which point when (values differ — they are host wall times).
    assert_eq!(
        skeleton(&tree1.roots),
        skeleton(&tree4.roots),
        "aggregated tree structure must not depend on --jobs"
    );
}

#[test]
fn collapsed_stacks_are_well_formed() {
    let _guard = PROF_LOCK.lock().unwrap();
    prof::set_enabled(false);
    let _ = prof::take();
    prof::set_enabled(true);
    let _ = run_scenario(&chaos(3));
    prof::set_enabled(false);
    let tree = prof::take();

    let collapsed = tree.collapsed("selftest");
    assert!(!collapsed.is_empty());
    for line in collapsed.lines() {
        let (stack, count) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("line has no count: {line}"));
        let count: u64 = count
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric count: {line}"));
        assert!(count > 0, "counts are positive: {line}");
        let frames: Vec<&str> = stack.split(';').collect();
        assert!(frames.len() >= 2, "program + at least one frame: {line}");
        assert_eq!(frames[0], "selftest", "consistent root frame: {line}");
        assert!(
            frames.iter().all(|f| !f.is_empty()),
            "no empty frames: {line}"
        );
    }
}
