//! Flight recorder + regression explainer, end to end at the bench layer:
//! probe series are byte-identical at any `--jobs` width, enabling the
//! recorder changes no simulated outcome, a run diffed against itself is
//! exactly zero, and a perturbed run's makespan delta is attributed to the
//! perturbed factor.

use cashmere::ClusterSpec;
use cashmere_bench::{fingerprint, run_scenario, sweep, AppId, PerturbSet, Problem, Scenario};
use cashmere_des::fault::{FaultPlan, LinkFault, NodeCrash, NodeJoin};
use cashmere_des::obs::RunDiff;
use cashmere_des::SimTime;

fn small() -> Scenario {
    Scenario::new(
        "probe-test",
        AppId::Kmeans,
        cashmere_bench::Series::CashmereOpt,
        &ClusterSpec::homogeneous(2, "gtx480"),
    )
    .with_problem(Problem::Kmeans {
        n: 1_000_000,
        k: 256,
        d: 4,
        iterations: 1,
    })
    .with_grain(125_000)
}

/// A crash + rejoin + lossy-link scenario: the hardest case for probe
/// determinism, since the sampler ticks through the fault window.
fn faulted() -> Scenario {
    small().named("probe-test-faulted").with_faults(FaultPlan {
        node_crashes: vec![NodeCrash {
            node: 1,
            at: SimTime::from_millis(2),
        }],
        node_joins: vec![NodeJoin {
            node: 1,
            at: SimTime::from_millis(7),
        }],
        link_faults: vec![LinkFault {
            src: None,
            dst: Some(0),
            from: SimTime::from_millis(1),
            until: SimTime::from_millis(10),
            loss: 0.1,
            spike: SimTime::from_micros(200),
            spike_probability: 0.2,
        }],
        ..FaultPlan::default()
    })
}

#[test]
fn probe_series_is_byte_identical_at_any_jobs_width() {
    let sc = faulted()
        .with_capture(true)
        .with_probe(SimTime::from_micros(500));
    let points = vec![sc.clone(), sc.clone(), sc.clone(), sc];
    let exports = |jobs: usize| -> Vec<(String, String, String)> {
        sweep(points.clone(), jobs, |sc| run_scenario(&sc))
            .into_iter()
            .map(|r| {
                let p = r.cap.expect("capture on").probes.expect("probe on");
                (p.to_csv(), p.to_openmetrics(), p.to_chrome_json())
            })
            .collect()
    };
    let serial = exports(1);
    assert_eq!(
        serial,
        exports(4),
        "probe exports must not depend on --jobs"
    );
    let (csv, om, chrome) = &serial[0];
    assert!(csv.starts_with("t_ns,"), "CSV header present");
    assert!(csv.lines().count() > 10, "recorder sampled the run");
    assert!(om.ends_with("# EOF\n"), "OpenMetrics terminator");
    assert!(chrome.contains("\"ph\":\"C\""), "Chrome counter track");
}

#[test]
fn enabling_the_probe_changes_no_simulated_outcome() {
    let base = faulted();
    let probed = faulted()
        .with_capture(true)
        .with_probe(SimTime::from_micros(250));
    let a = run_scenario(&base);
    let b = run_scenario(&probed);
    assert_eq!(
        serde_json::to_string(&a.outcome).unwrap(),
        serde_json::to_string(&b.outcome).unwrap(),
        "the flight recorder must be a pure observer"
    );
}

#[test]
fn diff_of_identical_runs_is_zero() {
    let sc = faulted()
        .with_capture(true)
        .with_probe(SimTime::from_millis(1));
    let a = run_scenario(&sc);
    let b = run_scenario(&sc);
    let fa = fingerprint("a", a.outcome.makespan_s, a.cap.as_ref().unwrap());
    let fb = fingerprint("b", b.outcome.makespan_s, b.cap.as_ref().unwrap());
    let d = RunDiff::compute(&fa, &fb);
    assert!(d.is_zero(), "same scenario + seed must diff to zero: {d:?}");
    assert!(d.digest().contains("zero delta"));
}

#[test]
fn diff_attributes_a_kernel_perturbation_to_the_kernel_factor() {
    let base = small()
        .with_capture(true)
        .with_probe(SimTime::from_millis(1));
    let fast = base
        .clone()
        .named("probe-test-fast")
        .with_perturb(PerturbSet::parse_list("dev:gtx480:2x").unwrap());
    let a = run_scenario(&base);
    let b = run_scenario(&fast);
    let fa = fingerprint("base", a.outcome.makespan_s, a.cap.as_ref().unwrap());
    let fb = fingerprint("2x-kernels", b.outcome.makespan_s, b.cap.as_ref().unwrap());
    let d = RunDiff::compute(&fa, &fb);
    assert!(!d.is_zero());
    assert!(
        d.makespan_delta_s < 0.0,
        "2x faster kernels shorten the run"
    );
    let top = d.factors.first().expect("ranked factors");
    assert_eq!(top.name, "kernel", "top factor is the perturbed one: {d:?}");
    assert!(
        top.share_pct.abs() > 50.0,
        "kernel explains the majority of the delta, got {:.1}%",
        top.share_pct
    );
    let digest = d.digest();
    assert!(digest.contains("what changed (ranked):"));
    assert!(digest.contains("kernel"));
}
