//! The declarative scenario layer, end to end: the checked-in catalog
//! parses and validates, canonical JSON round-trips, invalid specs are
//! rejected with a real exit code, and the provenance block embedded in
//! every report re-runs byte-identically at any `--jobs`.

use cashmere_bench::{run_scenario, Scenario, ScenarioReport};
use std::path::PathBuf;
use std::process::Command;

fn repo_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn catalog() -> Vec<(PathBuf, Scenario)> {
    let dir = repo_root().join("bench/scenarios");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("bench/scenarios exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 3,
        "expected the checked-in catalog (paper, hetero, fault demo), found {files:?}"
    );
    files
        .into_iter()
        .map(|p| {
            let sc = Scenario::load(p.to_str().unwrap())
                .unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            (p, sc)
        })
        .collect()
}

#[test]
fn catalog_scenarios_parse_and_validate() {
    for (path, sc) in catalog() {
        sc.validate()
            .unwrap_or_else(|e| panic!("{}: invalid: {e}", path.display()));
    }
}

#[test]
fn catalog_scenarios_round_trip_canonically() {
    for (path, sc) in catalog() {
        let canonical = sc.to_canonical_json();
        let back = Scenario::from_json(&canonical)
            .unwrap_or_else(|e| panic!("{}: canonical form rejected: {e}", path.display()));
        assert_eq!(
            sc,
            back,
            "{}: round trip changed the scenario",
            path.display()
        );
        // Canonical JSON is a fixed point: serializing the round-tripped
        // value reproduces the exact bytes.
        assert_eq!(
            canonical,
            back.to_canonical_json(),
            "{}: canonical JSON is not a fixed point",
            path.display()
        );
    }
}

#[test]
fn invalid_scenario_fails_with_exit_2() {
    let dir = std::env::temp_dir().join("cashmere-scenario-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad_device.json");
    std::fs::write(
        &bad,
        r#"{"name":"bad","app":"kmeans","series":"cashmere-opt","nodes":[["gtx9999"]]}"#,
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_tables"))
        .args(["--scenario", bad.to_str().unwrap()])
        .output()
        .expect("tables binary runs");
    assert_eq!(out.status.code(), Some(2), "invalid spec must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown device"),
        "error should name the problem, got: {err}"
    );
}

#[test]
fn report_provenance_reruns_byte_identically() {
    let path = repo_root().join("bench/scenarios/smoke.json");
    let sc = Scenario::load(path.to_str().unwrap()).expect("smoke scenario loads");
    let report = ScenarioReport::new(&sc, run_scenario(&sc).outcome);
    let first = report.to_canonical_json();
    // Parse the report back as a consumer would (from the JSON alone) and
    // re-execute its embedded provenance block.
    let parsed = ScenarioReport::from_json(&first).expect("report parses");
    let second = parsed.rerun().to_canonical_json();
    assert_eq!(first, second, "provenance re-run is not byte-identical");
}

#[test]
fn scenario_run_is_byte_identical_at_any_jobs() {
    let spec = repo_root().join("bench/scenarios/smoke.json");
    let run = |jobs: &str| {
        let report = std::env::temp_dir()
            .join("cashmere-scenario-test")
            .join(format!("smoke_jobs{jobs}.json"));
        std::fs::create_dir_all(report.parent().unwrap()).unwrap();
        // Point the report at a temp file via the outputs.report field so
        // parallel test runs don't race on bench/out/.
        let mut sc = Scenario::load(spec.to_str().unwrap()).unwrap();
        sc.outputs.report = Some(report.to_str().unwrap().to_string());
        let patched = report.with_extension("spec.json");
        std::fs::write(&patched, sc.to_canonical_json()).unwrap();
        let out = Command::new(env!("CARGO_BIN_EXE_tables"))
            .args(["--scenario", patched.to_str().unwrap(), "--jobs", jobs])
            .output()
            .expect("tables binary runs");
        assert!(
            out.status.success(),
            "--jobs {jobs} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let json = std::fs::read(&report).expect("report written");
        (out.stdout, json)
    };
    let (stdout_seq, json_seq) = run("1");
    let (stdout_par, json_par) = run("4");
    // stdout includes the [wrote …] path, which differs by file name; the
    // table block above it must match.
    let table = |b: &[u8]| {
        String::from_utf8_lossy(b)
            .lines()
            .filter(|l| !l.starts_with("[wrote"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(table(&stdout_seq), table(&stdout_par));
    assert_eq!(json_seq, json_par, "report bytes differ across --jobs");
}
