//! Criterion microbenchmarks of the substrate hot paths: the real
//! work-stealing pool, the discrete-event engine, the MCPL interpreter and
//! the device load balancer.
//!
//! ```text
//! cargo bench -p cashmere-bench
//! ```
//!
//! Sample sizes are kept small: these exist to catch order-of-magnitude
//! regressions in the simulation substrate, not to microtune.

use cashmere::Balancer;
use cashmere_des::{Sim, SimTime};
use cashmere_hwdesc::standard_hierarchy;
use cashmere_mcl::interp::{execute, ExecOptions};
use cashmere_mcl::value::{ArgValue, ArrayArg};
use cashmere_mcl::{compile, CheckedKernel};
use cashmere_satin::{parallel_reduce, SatinPool};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_satin_pool(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool = SatinPool::new(threads);
    c.bench_function("satin_pool/parallel_reduce_1M", |b| {
        b.iter(|| {
            let sum = pool.run(|| {
                parallel_reduce(
                    0,
                    1_000_000,
                    1 << 13,
                    &|lo, hi| (lo..hi).map(|x| x.wrapping_mul(31)).sum::<u64>(),
                    &|a, b| a.wrapping_add(b),
                )
            });
            black_box(sum)
        })
    });
    c.bench_function("satin_pool/fib_20_join_overhead", |b| {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (x, y) = cashmere_satin::join(|| fib(n - 1), || fib(n - 2));
            x + y
        }
        b.iter(|| black_box(pool.run(|| fib(20))))
    });
}

fn bench_des(c: &mut Criterion) {
    c.bench_function("des/100k_events", |b| {
        b.iter_batched(
            || {
                let mut sim: Sim<u64> = Sim::new(1);
                for i in 0..100_000u64 {
                    sim.schedule_at(SimTime::from_nanos(i % 977), move |w: &mut u64, _| {
                        *w = w.wrapping_add(i);
                    });
                }
                sim
            },
            |mut sim| {
                let mut world = 0u64;
                sim.run(&mut world);
                black_box(world)
            },
            BatchSize::SmallInput,
        )
    });
    // End-to-end schedule + run: includes the allocation side, which the
    // slab's inline closure storage eliminates.
    c.bench_function("des/100k_schedule_run", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new(1);
            for i in 0..100_000u64 {
                sim.schedule_at(SimTime::from_nanos(i % 977), move |w: &mut u64, _| {
                    *w = w.wrapping_add(i);
                });
            }
            let mut world = 0u64;
            sim.run(&mut world);
            black_box(world)
        })
    });
    // Steady-state churn, the pattern cluster simulations actually produce:
    // a bounded set of in-flight chains, each event scheduling a successor.
    // The closure captures a node/job/generation-sized payload like the
    // work-stealing engine's events do, so the per-event allocation cost is
    // representative.
    c.bench_function("des/churn_1k_chains_100k_events", |b| {
        fn chain(w: &mut u64, sim: &mut Sim<u64>, node: usize, job: usize, generation: u64) {
            *w += 1;
            if *w < 100_000 {
                let (n, j, g) = (node ^ 1, job + 1, generation);
                sim.schedule_in(SimTime::from_nanos(997), move |w: &mut u64, sim| {
                    chain(w, sim, n, j, g)
                });
            }
        }
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new(1);
            for i in 0..1_000u64 {
                sim.schedule_at(SimTime::from_nanos(i), move |w: &mut u64, sim| {
                    chain(w, sim, i as usize, 0, i)
                });
            }
            let mut world = 0u64;
            sim.run(&mut world);
            black_box(world)
        })
    });
    // Schedule/cancel throughput: the work-stealing engine arms and disarms
    // steal-timeout and retry events constantly.
    c.bench_function("des/100k_schedule_cancel", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new(1);
            let handles: Vec<_> = (0..100_000u64)
                .map(|i| {
                    sim.schedule_at(SimTime::from_nanos(1 + i % 977), move |w: &mut u64, _| {
                        *w = w.wrapping_add(i);
                    })
                })
                .collect();
            for h in handles {
                assert!(sim.cancel(h));
            }
            let mut world = 0u64;
            sim.run(&mut world);
            black_box(sim.events_fired())
        })
    });
}

fn saxpy_kernel() -> (CheckedKernel, Vec<String>) {
    let h = standard_hierarchy();
    let ck = compile(
        "perfect void saxpy(int n, float alpha, float[n] y, float[n] x) {
  foreach (int i in n threads) { y[i] += alpha * x[i]; }
}",
        &h,
    )
    .expect("saxpy compiles");
    (ck, vec!["threads".to_string()])
}

/// A tiled matmul with deep uniform `for` nests and a shared scratch tile —
/// the shape that dominates the fig6 corpus (the XeonPhi optimized kernel).
fn tiled_kernel() -> (CheckedKernel, Vec<String>) {
    let h = standard_hierarchy();
    let ck = compile(
        "perfect void matmul(int n, int m, int p, float[n,m] c, float[n,p] a, float[p,m] b) {
  foreach (int j in m threads) {
    local float tile[64];
    for (int kt = 0; kt < (p + 63) / 64; kt = kt + 1) {
      for (int kk = 0; kk < 64; kk = kk + 1) {
        int k = kt * 64 + kk;
        if (k < p) { tile[kk] = 1.0; }
      }
      for (int i = 0; i < n; i = i + 1) {
        float acc = 0.0;
        for (int kk = 0; kk < 64; kk = kk + 1) {
          int k = kt * 64 + kk;
          if (k < p) { acc = acc + a[i,k] * tile[kk]; }
        }
        c[i,j] = c[i,j] + acc * b[0,j];
      }
    }
  }
}",
        &h,
    )
    .expect("tiled matmul compiles");
    (ck, vec!["threads".to_string()])
}

/// Bench one (kernel, engine, mode) cell: tree vs register VM, full vs
/// sampled. Both engines produce bit-identical stats; only wall time may
/// differ.
fn bench_engines(
    c: &mut Criterion,
    name: &str,
    ck: &CheckedKernel,
    units: &[String],
    args: &dyn Fn() -> Vec<ArgValue>,
    sampled: bool,
) {
    let opts = ExecOptions {
        sample: sampled.then(Default::default),
        ..ExecOptions::default()
    };
    let mode = if sampled { "sampled" } else { "full" };
    c.bench_function(&format!("mcl_interp/{name}_{mode}_tree"), |b| {
        b.iter_batched(
            args,
            |a| {
                let r = execute(ck, a, units, &opts).expect("runs");
                black_box(r.stats.flops)
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function(&format!("mcl_interp/{name}_{mode}_vm"), |b| {
        b.iter_batched(
            args,
            |a| {
                let r = cashmere_mcl::vm::execute(ck, a, units, &opts).expect("runs");
                black_box(r.stats.flops)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_interpreter(c: &mut Criterion) {
    // Small kernel: per-launch overhead (compile-to-bytecode included on
    // the VM side) dominates.
    let (ck, units) = saxpy_kernel();
    let small = 4 * 1024u64;
    let small_args = move || {
        vec![
            ArgValue::Int(small as i64),
            ArgValue::Float(2.0),
            ArgValue::Array(ArrayArg::float(&[small], vec![1.0; small as usize])),
            ArgValue::Array(ArrayArg::float(&[small], vec![2.0; small as usize])),
        ]
    };
    bench_engines(c, "saxpy_4k", &ck, &units, &small_args, false);
    bench_engines(c, "saxpy_4k", &ck, &units, &small_args, true);

    // Large kernel: per-lane interpretation dominates; this is where the
    // register VM's uniformity fast paths pay off.
    let n = 64 * 1024u64;
    let large_args = move || {
        vec![
            ArgValue::Int(n as i64),
            ArgValue::Float(2.0),
            ArgValue::Array(ArrayArg::float(&[n], vec![1.0; n as usize])),
            ArgValue::Array(ArrayArg::float(&[n], vec![2.0; n as usize])),
        ]
    };
    bench_engines(c, "saxpy_64k", &ck, &units, &large_args, false);

    let (tk, tunits) = tiled_kernel();
    let (tn, tm, tp) = (64i64, 256i64, 256i64);
    let tiled_args = move || {
        vec![
            ArgValue::Int(tn),
            ArgValue::Int(tm),
            ArgValue::Int(tp),
            ArgValue::Array(ArrayArg::float(
                &[tn as u64, tm as u64],
                vec![0.0; (tn * tm) as usize],
            )),
            ArgValue::Array(ArrayArg::float(
                &[tn as u64, tp as u64],
                vec![1.0; (tn * tp) as usize],
            )),
            ArgValue::Array(ArrayArg::float(
                &[tp as u64, tm as u64],
                vec![1.0; (tp * tm) as usize],
            )),
        ]
    };
    bench_engines(c, "tiled_matmul", &tk, &tunits, &tiled_args, false);
    bench_engines(c, "tiled_matmul", &tk, &tunits, &tiled_args, true);
}

fn bench_balancer(c: &mut Criterion) {
    c.bench_function("balancer/choose_among_4_devices", |b| {
        let mut bal = Balancer::new(&[40.0, 20.0, 30.0, 10.0]);
        for d in 0..4 {
            bal.on_submit(d);
            bal.on_complete("k", d, SimTime::from_millis(100 + d as u64 * 25));
        }
        for _ in 0..5 {
            bal.on_submit(0);
        }
        b.iter(|| black_box(bal.choose("k")))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_satin_pool, bench_des, bench_interpreter, bench_balancer
}
criterion_main!(benches);
