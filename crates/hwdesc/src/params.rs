//! Hardware parameters attached to a level of the hierarchy.
//!
//! Inner levels specify only what they know (`gpu` knows there are blocks and
//! threads and a local memory, but not how many compute units); leaf levels
//! are fully specified. [`HwParams`] therefore keeps every field optional and
//! [`HwParams::merge_from_parent`] implements inheritance: a child keeps its
//! own setting and falls back to the parent's.

use serde::{Deserialize, Serialize};

/// One unit of the parallelism hierarchy a level exposes to kernels, ordered
/// outer → inner (e.g. `blocks` then `threads` on GPUs). `max = None` means
/// unbounded (the `perfect` level).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParUnit {
    pub name: String,
    pub max: Option<u64>,
}

/// A memory space visible to kernels at some level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemSpace {
    pub name: String,
    /// Sustained bandwidth in GB/s; `None` = idealized (no bandwidth limit).
    pub bandwidth_gbs: Option<f64>,
    /// Access latency in device cycles; `None` = idealized (1 cycle).
    pub latency_cycles: Option<u64>,
    /// Capacity in KiB (for scratch/local memories); `None` = unlimited.
    pub size_kb: Option<u64>,
}

/// Hardware parameters of a level. All fields optional so that inner levels
/// can be partial; [`HwParams::resolve`] checks that a leaf device ended up
/// fully specified.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HwParams {
    /// Number of compute units (SMs / CUs / cores).
    pub compute_units: Option<u32>,
    /// SIMD lanes per compute unit (warp width, wavefront width, vector width).
    pub simd_width: Option<u32>,
    /// Core clock in GHz.
    pub clock_ghz: Option<f64>,
    /// Single-precision FLOPs per lane per cycle (2 with FMA).
    pub flops_per_lane_per_cycle: Option<f64>,
    /// Sustained global-memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: Option<f64>,
    /// Scratch ("local"/"shared") memory per compute unit in KiB.
    pub shared_mem_kb: Option<u64>,
    /// Host↔device bandwidth in GB/s (PCI Express).
    pub pcie_gbs: Option<f64>,
    /// Host↔device transfer setup latency in microseconds.
    pub pcie_latency_us: Option<f64>,
    /// Entry in Cashmere's static relative-speed table (paper Sec. III-B:
    /// "a K20 GPU has speed 40 and a GTX480 speed 20").
    pub relative_speed: Option<f64>,
    /// Maximum resident threads per compute unit (occupancy bound).
    pub max_threads_per_unit: Option<u32>,
    /// Parallelism hierarchy exposed to kernels, outer → inner.
    pub par_units: Vec<ParUnit>,
    /// Memory spaces visible to kernels.
    pub mem_spaces: Vec<MemSpace>,
}

/// Fully resolved parameters of a leaf device: every relevant field present.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedParams {
    pub compute_units: u32,
    pub simd_width: u32,
    pub clock_ghz: f64,
    pub flops_per_lane_per_cycle: f64,
    pub mem_bandwidth_gbs: f64,
    pub shared_mem_kb: u64,
    pub pcie_gbs: f64,
    pub pcie_latency_us: f64,
    pub relative_speed: f64,
    pub max_threads_per_unit: u32,
    pub par_units: Vec<ParUnit>,
    pub mem_spaces: Vec<MemSpace>,
}

impl ResolvedParams {
    /// Theoretical peak single-precision GFLOPS.
    pub fn peak_sp_gflops(&self) -> f64 {
        f64::from(self.compute_units)
            * f64::from(self.simd_width)
            * self.flops_per_lane_per_cycle
            * self.clock_ghz
    }

    /// Total hardware lanes.
    pub fn total_lanes(&self) -> u64 {
        u64::from(self.compute_units) * u64::from(self.simd_width)
    }
}

impl HwParams {
    /// Inheritance: keep own fields, fall back to the parent's. Lists
    /// (par units, memory spaces) are replaced wholesale when the child
    /// defines any, since a lower level redefines the programming
    /// abstractions rather than appending to them.
    pub fn merge_from_parent(&self, parent: &HwParams) -> HwParams {
        HwParams {
            compute_units: self.compute_units.or(parent.compute_units),
            simd_width: self.simd_width.or(parent.simd_width),
            clock_ghz: self.clock_ghz.or(parent.clock_ghz),
            flops_per_lane_per_cycle: self
                .flops_per_lane_per_cycle
                .or(parent.flops_per_lane_per_cycle),
            mem_bandwidth_gbs: self.mem_bandwidth_gbs.or(parent.mem_bandwidth_gbs),
            shared_mem_kb: self.shared_mem_kb.or(parent.shared_mem_kb),
            pcie_gbs: self.pcie_gbs.or(parent.pcie_gbs),
            pcie_latency_us: self.pcie_latency_us.or(parent.pcie_latency_us),
            relative_speed: self.relative_speed.or(parent.relative_speed),
            max_threads_per_unit: self.max_threads_per_unit.or(parent.max_threads_per_unit),
            par_units: if self.par_units.is_empty() {
                parent.par_units.clone()
            } else {
                self.par_units.clone()
            },
            mem_spaces: if self.mem_spaces.is_empty() {
                parent.mem_spaces.clone()
            } else {
                self.mem_spaces.clone()
            },
        }
    }

    /// Check full specification (leaf device) and produce [`ResolvedParams`].
    pub fn resolve(&self, level_name: &str) -> Result<ResolvedParams, String> {
        let missing = |f: &str| format!("level `{level_name}`: missing device parameter `{f}`");
        Ok(ResolvedParams {
            compute_units: self.compute_units.ok_or_else(|| missing("compute_units"))?,
            simd_width: self.simd_width.ok_or_else(|| missing("simd_width"))?,
            clock_ghz: self.clock_ghz.ok_or_else(|| missing("clock_ghz"))?,
            flops_per_lane_per_cycle: self
                .flops_per_lane_per_cycle
                .ok_or_else(|| missing("flops_per_lane_per_cycle"))?,
            mem_bandwidth_gbs: self
                .mem_bandwidth_gbs
                .ok_or_else(|| missing("mem_bandwidth_gbs"))?,
            shared_mem_kb: self.shared_mem_kb.ok_or_else(|| missing("shared_mem_kb"))?,
            pcie_gbs: self.pcie_gbs.ok_or_else(|| missing("pcie_gbs"))?,
            pcie_latency_us: self
                .pcie_latency_us
                .ok_or_else(|| missing("pcie_latency_us"))?,
            relative_speed: self
                .relative_speed
                .ok_or_else(|| missing("relative_speed"))?,
            max_threads_per_unit: self
                .max_threads_per_unit
                .ok_or_else(|| missing("max_threads_per_unit"))?,
            par_units: self.par_units.clone(),
            mem_spaces: self.mem_spaces.clone(),
        })
    }

    /// Find a memory space by name.
    pub fn mem_space(&self, name: &str) -> Option<&MemSpace> {
        self.mem_spaces.iter().find(|m| m.name == name)
    }

    /// Find a parallelism unit by name.
    pub fn par_unit(&self, name: &str) -> Option<&ParUnit> {
        self.par_units.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_level() -> HwParams {
        HwParams {
            flops_per_lane_per_cycle: Some(2.0),
            pcie_gbs: Some(8.0),
            pcie_latency_us: Some(10.0),
            par_units: vec![
                ParUnit {
                    name: "blocks".into(),
                    max: None,
                },
                ParUnit {
                    name: "threads".into(),
                    max: Some(1024),
                },
            ],
            mem_spaces: vec![MemSpace {
                name: "global".into(),
                bandwidth_gbs: None,
                latency_cycles: Some(400),
                size_kb: None,
            }],
            ..HwParams::default()
        }
    }

    #[test]
    fn merge_prefers_child() {
        let parent = gpu_level();
        let child = HwParams {
            compute_units: Some(15),
            simd_width: Some(32),
            pcie_gbs: Some(6.0),
            ..HwParams::default()
        };
        let merged = child.merge_from_parent(&parent);
        assert_eq!(merged.compute_units, Some(15));
        assert_eq!(merged.pcie_gbs, Some(6.0), "child overrides parent");
        assert_eq!(merged.flops_per_lane_per_cycle, Some(2.0), "inherited");
        assert_eq!(merged.par_units.len(), 2, "lists inherited when empty");
    }

    #[test]
    fn merge_replaces_lists_wholesale() {
        let parent = gpu_level();
        let child = HwParams {
            par_units: vec![ParUnit {
                name: "cores".into(),
                max: Some(60),
            }],
            ..HwParams::default()
        };
        let merged = child.merge_from_parent(&parent);
        assert_eq!(merged.par_units.len(), 1);
        assert_eq!(merged.par_units[0].name, "cores");
    }

    #[test]
    fn resolve_reports_missing_field() {
        let err = gpu_level().resolve("gpu").unwrap_err();
        assert!(err.contains("compute_units"), "err = {err}");
    }

    #[test]
    fn resolved_peak_flops() {
        let p = ResolvedParams {
            compute_units: 15,
            simd_width: 32,
            clock_ghz: 1.401,
            flops_per_lane_per_cycle: 2.0,
            mem_bandwidth_gbs: 177.4,
            shared_mem_kb: 48,
            pcie_gbs: 8.0,
            pcie_latency_us: 10.0,
            relative_speed: 20.0,
            max_threads_per_unit: 1536,
            par_units: vec![],
            mem_spaces: vec![],
        };
        // GTX480: 15 SM × 32 lanes × 2 flops × 1.401 GHz ≈ 1345 GFLOPS
        assert!((p.peak_sp_gflops() - 1344.96).abs() < 0.1);
        assert_eq!(p.total_lanes(), 480);
    }

    #[test]
    fn lookup_helpers() {
        let g = gpu_level();
        assert!(g.mem_space("global").is_some());
        assert!(g.mem_space("texture").is_none());
        assert_eq!(g.par_unit("threads").unwrap().max, Some(1024));
    }
}
