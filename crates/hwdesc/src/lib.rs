//! # cashmere-hwdesc — MCL hardware descriptions
//!
//! MCL (Many-Core Levels) organizes *hardware descriptions* in a hierarchy
//! (paper Fig. 2): at the root sits `perfect` — idealized hardware with
//! unlimited compute units and 1-cycle memory — and each child level adds
//! detail, down to concrete devices such as `gtx480` or `xeon_phi`. Kernels
//! are written against a level's *programming abstractions* (e.g. `threads`,
//! `blocks`) and the most specific kernel version available is selected for
//! each physical device.
//!
//! This crate provides:
//!
//! * [`hierarchy::Hierarchy`] — the level tree with parameter inheritance and
//!   most-specific-version resolution;
//! * [`params::HwParams`] — per-level hardware parameters (compute units,
//!   SIMD width, clock, memory system, PCIe), partial at inner levels and
//!   fully resolved at leaves;
//! * [`hdl`] — the textual Hardware Description Language and its parser;
//! * [`library`] — the built-in hierarchy used throughout the paper, written
//!   in HDL and parsed at startup, covering the seven DAS-4 devices
//!   (GTX480, C2050, GTX680, K20, Titan, HD7970, Xeon Phi) plus the host CPU.

pub mod hdl;
pub mod hierarchy;
pub mod library;
pub mod params;

pub use hierarchy::{Hierarchy, LevelId};
pub use library::{standard_hierarchy, DeviceKind};
pub use params::{HwParams, MemSpace, ParUnit};
