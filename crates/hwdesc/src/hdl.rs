//! HDL — the textual Hardware Description Language.
//!
//! MCL defines hardware in a dedicated language; this module implements a
//! lexer and recursive-descent parser for it. A description looks like:
//!
//! ```text
//! // The idealized root level.
//! hardware perfect {
//!     parallelism { unit threads; }
//!     memory { space global; }
//!     device { flops_per_lane_per_cycle 2; }
//! }
//!
//! hardware gpu extends perfect {
//!     parallelism {
//!         unit blocks;
//!         unit threads max 1024;
//!     }
//!     memory {
//!         space global latency_cycles 400;
//!         space local size_kb 48 latency_cycles 4;
//!     }
//!     device { pcie_gbs 8.0; pcie_latency_us 10; }
//! }
//! ```
//!
//! `hardware X extends Y { … }` adds level `X` below `Y`; the first block in
//! a file is the root and takes no `extends`. Section order inside a block is
//! free and every section is optional.

use crate::hierarchy::Hierarchy;
use crate::params::{HwParams, MemSpace, ParUnit};
use std::fmt;

/// Parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdlError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for HdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HDL parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for HdlError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    LBrace,
    RBrace,
    Semi,
}

#[derive(Debug, Clone)]
struct Lexed {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<Lexed>, HdlError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(HdlError {
                        line,
                        message: "stray `/` (expected `//` comment)".into(),
                    });
                }
            }
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' => {
                out.push(Lexed {
                    tok: Tok::LBrace,
                    line,
                });
                chars.next();
            }
            '}' => {
                out.push(Lexed {
                    tok: Tok::RBrace,
                    line,
                });
                chars.next();
            }
            ';' => {
                out.push(Lexed {
                    tok: Tok::Semi,
                    line,
                });
                chars.next();
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v: f64 = s.replace('_', "").parse().map_err(|_| HdlError {
                    line,
                    message: format!("bad number `{s}`"),
                })?;
                out.push(Lexed {
                    tok: Tok::Number(v),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Lexed {
                    tok: Tok::Ident(s),
                    line,
                });
            }
            other => {
                return Err(HdlError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Lexed>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|l| &l.tok)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |l| l.line)
    }

    fn err(&self, msg: impl Into<String>) -> HdlError {
        HdlError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn next(&mut self) -> Result<Tok, HdlError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|l| l.tok.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_ident(&mut self) -> Result<String, HdlError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), HdlError> {
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, got `{id}`")))
        }
    }

    fn expect_number(&mut self) -> Result<f64, HdlError> {
        match self.next()? {
            Tok::Number(v) => Ok(v),
            other => Err(self.err(format!("expected number, got {other:?}"))),
        }
    }

    fn expect_tok(&mut self, want: Tok) -> Result<(), HdlError> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(self.err(format!("expected {want:?}, got {got:?}")))
        }
    }

    fn parse_file(&mut self) -> Result<Hierarchy, HdlError> {
        let mut h = Hierarchy::new();
        while self.peek().is_some() {
            self.expect_keyword("hardware")?;
            let name = self.expect_ident()?;
            let parent = if let Some(Tok::Ident(id)) = self.peek() {
                if id == "extends" {
                    self.next()?;
                    Some(self.expect_ident()?)
                } else {
                    return Err(self.err(format!("expected `extends` or `{{`, got `{id}`")));
                }
            } else {
                None
            };
            let params = self.parse_block()?;
            h.add_level(&name, parent.as_deref(), params)
                .map_err(|e| self.err(e))?;
        }
        if h.is_empty() {
            return Err(HdlError {
                line: 0,
                message: "empty HDL source".into(),
            });
        }
        Ok(h)
    }

    fn parse_block(&mut self) -> Result<HwParams, HdlError> {
        self.expect_tok(Tok::LBrace)?;
        let mut params = HwParams::default();
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.next()?;
                    return Ok(params);
                }
                Some(Tok::Ident(section)) => {
                    let section = section.clone();
                    self.next()?;
                    match section.as_str() {
                        "parallelism" => self.parse_parallelism(&mut params)?,
                        "memory" => self.parse_memory(&mut params)?,
                        "device" => self.parse_device(&mut params)?,
                        other => {
                            return Err(self.err(format!(
                                "unknown section `{other}` (expected parallelism/memory/device)"
                            )))
                        }
                    }
                }
                _ => return Err(self.err("expected section or `}`")),
            }
        }
    }

    fn parse_parallelism(&mut self, params: &mut HwParams) -> Result<(), HdlError> {
        self.expect_tok(Tok::LBrace)?;
        while self.peek() != Some(&Tok::RBrace) {
            self.expect_keyword("unit")?;
            let name = self.expect_ident()?;
            let mut max = None;
            if let Some(Tok::Ident(id)) = self.peek() {
                if id == "max" {
                    self.next()?;
                    max = Some(self.expect_number()? as u64);
                }
            }
            self.expect_tok(Tok::Semi)?;
            params.par_units.push(ParUnit { name, max });
        }
        self.expect_tok(Tok::RBrace)
    }

    fn parse_memory(&mut self, params: &mut HwParams) -> Result<(), HdlError> {
        self.expect_tok(Tok::LBrace)?;
        while self.peek() != Some(&Tok::RBrace) {
            self.expect_keyword("space")?;
            let name = self.expect_ident()?;
            let mut space = MemSpace {
                name,
                bandwidth_gbs: None,
                latency_cycles: None,
                size_kb: None,
            };
            while let Some(Tok::Ident(attr)) = self.peek() {
                let attr = attr.clone();
                self.next()?;
                let v = self.expect_number()?;
                match attr.as_str() {
                    "bandwidth_gbs" => space.bandwidth_gbs = Some(v),
                    "latency_cycles" => space.latency_cycles = Some(v as u64),
                    "size_kb" => space.size_kb = Some(v as u64),
                    other => return Err(self.err(format!("unknown memory attribute `{other}`"))),
                }
            }
            self.expect_tok(Tok::Semi)?;
            params.mem_spaces.push(space);
        }
        self.expect_tok(Tok::RBrace)
    }

    fn parse_device(&mut self, params: &mut HwParams) -> Result<(), HdlError> {
        self.expect_tok(Tok::LBrace)?;
        while self.peek() != Some(&Tok::RBrace) {
            let key = self.expect_ident()?;
            let v = self.expect_number()?;
            self.expect_tok(Tok::Semi)?;
            match key.as_str() {
                "compute_units" => params.compute_units = Some(v as u32),
                "simd_width" => params.simd_width = Some(v as u32),
                "clock_ghz" => params.clock_ghz = Some(v),
                "flops_per_lane_per_cycle" => params.flops_per_lane_per_cycle = Some(v),
                "mem_bandwidth_gbs" => params.mem_bandwidth_gbs = Some(v),
                "shared_mem_kb" => params.shared_mem_kb = Some(v as u64),
                "pcie_gbs" => params.pcie_gbs = Some(v),
                "pcie_latency_us" => params.pcie_latency_us = Some(v),
                "relative_speed" => params.relative_speed = Some(v),
                "max_threads_per_unit" => params.max_threads_per_unit = Some(v as u32),
                other => return Err(self.err(format!("unknown device parameter `{other}`"))),
            }
        }
        self.expect_tok(Tok::RBrace)
    }
}

/// Parse an HDL source file into a [`Hierarchy`].
pub fn parse(src: &str) -> Result<Hierarchy, HdlError> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.parse_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
        // root
        hardware perfect {
            parallelism { unit threads; }
            memory { space global; }
            device { flops_per_lane_per_cycle 2; }
        }
        hardware gpu extends perfect {
            parallelism {
                unit blocks;
                unit threads max 1024;
            }
            memory {
                space global latency_cycles 400;
                space local size_kb 48 latency_cycles 4;
            }
            device { pcie_gbs 8.0; pcie_latency_us 10; }
        }
        hardware gtx480 extends gpu {
            device {
                compute_units 15;
                simd_width 32;
                clock_ghz 1.401;
                mem_bandwidth_gbs 177.4;
                shared_mem_kb 48;
                relative_speed 20;
                max_threads_per_unit 1536;
            }
        }
    "#;

    #[test]
    fn parses_small_hierarchy() {
        let h = parse(SMALL).unwrap();
        assert_eq!(h.len(), 3);
        let gtx = h.id("gtx480").unwrap();
        let p = h.device_params(gtx).unwrap();
        assert_eq!(p.compute_units, 15);
        assert_eq!(p.simd_width, 32);
        assert!((p.peak_sp_gflops() - 1344.96).abs() < 0.1);
        assert_eq!(p.pcie_gbs, 8.0, "inherited from gpu level");
        // parallelism list inherited from gpu (gtx480 defines none).
        assert_eq!(p.par_units.len(), 2);
        assert_eq!(p.par_units[0].name, "blocks");
    }

    #[test]
    fn memory_attributes_parse() {
        let h = parse(SMALL).unwrap();
        let eff = h.effective_params(h.id("gtx480").unwrap());
        let local = eff.mem_space("local").unwrap();
        assert_eq!(local.size_kb, Some(48));
        assert_eq!(local.latency_cycles, Some(4));
        let global = eff.mem_space("global").unwrap();
        assert_eq!(global.latency_cycles, Some(400));
        assert_eq!(global.bandwidth_gbs, None);
    }

    #[test]
    fn comments_and_underscored_numbers() {
        let src = "
            # hash comment
            hardware root {
                device { mem_bandwidth_gbs 1_000; } // eol comment
            }
        ";
        let h = parse(src).unwrap();
        assert_eq!(
            h.effective_params(h.id("root").unwrap()).mem_bandwidth_gbs,
            Some(1000.0)
        );
    }

    #[test]
    fn error_unknown_parent() {
        let err = parse("hardware a extends nope { }").unwrap_err();
        assert!(err.message.contains("unknown level"), "{err}");
    }

    #[test]
    fn error_duplicate_level() {
        let err =
            parse("hardware a { } hardware b extends a { } hardware b extends a { }").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn error_unknown_section_has_line() {
        let err = parse("hardware a {\n  bogus { }\n}").unwrap_err();
        assert!(err.message.contains("unknown section"), "{err}");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn error_missing_semicolon() {
        let err = parse("hardware a { device { clock_ghz 1.0 } }").unwrap_err();
        assert!(err.message.contains("Semi"), "{err}");
    }

    #[test]
    fn error_second_root() {
        let err = parse("hardware a { } hardware b { }").unwrap_err();
        assert!(err.message.contains("root"), "{err}");
    }

    #[test]
    fn error_empty_source() {
        assert!(parse("  // nothing\n").is_err());
    }

    #[test]
    fn error_bad_char() {
        let err = parse("hardware a { device { clock_ghz @; } }").unwrap_err();
        assert!(err.message.contains("unexpected character"), "{err}");
    }
}
