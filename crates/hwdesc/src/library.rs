//! The built-in hardware-description library (paper Fig. 2).
//!
//! The hierarchy is written in HDL (exercising the parser on every startup)
//! and covers the seven many-core devices of the DAS-4 evaluation cluster
//! plus the host CPU used for Satin-only runs and CPU fallback:
//!
//! ```text
//! perfect
//!   manycore
//!     gpu
//!       nvidia
//!         fermi    → gtx480, c2050
//!         kepler   → gtx680, k20, titan
//!       amd        → hd7970
//!     mic          → xeon_phi
//!   host_cpu
//! ```
//!
//! Device numbers are the published specifications: peak single-precision
//! GFLOPS follow from `compute_units × simd_width × flops/lane/cycle × clock`
//! (e.g. GTX480: 15 × 32 × 2 × 1.401 ≈ 1345 GFLOPS). The `relative_speed`
//! entries seed Cashmere's static load-balancing table; the paper gives
//! K20 = 40 and GTX480 = 20 (Sec. III-B) and the rest are scaled by measured
//! kernel throughput ratios from the paper's Fig. 6.

use crate::hdl;
use crate::hierarchy::{Hierarchy, LevelId};
use serde::{Deserialize, Serialize};

/// HDL source of the standard hierarchy.
pub const STANDARD_HDL: &str = r#"
// Root: idealized hardware — unlimited compute units, 1-cycle memory.
hardware perfect {
    parallelism { unit threads; }
    memory { space global; }
    device { flops_per_lane_per_cycle 2; }
}

// Any many-core accelerator: sits behind a PCI Express bus.
hardware manycore extends perfect {
    device { pcie_gbs 8.0; pcie_latency_us 10.0; }
}

// GPUs: two-level parallelism, fast scratch memory per compute unit.
hardware gpu extends manycore {
    parallelism {
        unit blocks;
        unit threads max 1024;
    }
    memory {
        space global latency_cycles 400;
        space local size_kb 48 latency_cycles 4;
        space registers;
    }
}

hardware nvidia extends gpu {
    device { simd_width 32; }
}

hardware fermi extends nvidia {
    device { shared_mem_kb 48; max_threads_per_unit 1536; }
}

hardware kepler extends nvidia {
    device { shared_mem_kb 48; max_threads_per_unit 2048; simd_width 192; }
}

hardware gtx480 extends fermi {
    device {
        compute_units 15;
        clock_ghz 1.401;
        mem_bandwidth_gbs 177.4;
        relative_speed 20;
    }
}

hardware c2050 extends fermi {
    device {
        compute_units 14;
        clock_ghz 1.15;
        mem_bandwidth_gbs 144.0;
        relative_speed 15;
    }
}

hardware gtx680 extends kepler {
    device {
        compute_units 8;
        clock_ghz 1.006;
        mem_bandwidth_gbs 192.2;
        relative_speed 30;
    }
}

hardware k20 extends kepler {
    device {
        compute_units 13;
        clock_ghz 0.706;
        mem_bandwidth_gbs 208.0;
        relative_speed 40;
    }
}

hardware titan extends kepler {
    device {
        compute_units 14;
        clock_ghz 0.837;
        mem_bandwidth_gbs 288.4;
        relative_speed 45;
    }
}

hardware amd extends gpu {
    device { simd_width 64; }
}

hardware hd7970 extends amd {
    device {
        compute_units 32;
        clock_ghz 0.925;
        mem_bandwidth_gbs 264.0;
        shared_mem_kb 64;
        max_threads_per_unit 2560;
        relative_speed 38;
    }
}

// Intel MIC (Xeon Phi): many x86 cores with wide vector units. Needs
// coarser-grained parallelism than GPUs (paper Sec. III-A).
hardware mic extends manycore {
    parallelism {
        unit cores max 61;
        // 4 hardware threads x 16-wide VPU presented as 64 logical lanes,
        // grouped into 16-lane vector "warps" for issue accounting.
        unit threads max 64;
    }
    memory {
        space global latency_cycles 300;
        space local size_kb 32 latency_cycles 10;
        space registers;
    }
    device { pcie_gbs 6.5; }
}

hardware xeon_phi extends mic {
    device {
        compute_units 60;
        simd_width 16;
        clock_ghz 1.053;
        mem_bandwidth_gbs 320.0;
        shared_mem_kb 32;
        max_threads_per_unit 64;
        relative_speed 10;
    }
}

// The host CPU of a DAS-4 node: dual quad-core Xeon E5620 (used by
// Satin-only runs and by the leafCPU fallback path).
hardware host_cpu extends perfect {
    parallelism {
        unit cores max 8;
    }
    memory {
        space global latency_cycles 100;
        space local size_kb 256 latency_cycles 10;
    }
    device {
        compute_units 8;
        simd_width 4;
        clock_ghz 2.4;
        mem_bandwidth_gbs 25.6;
        shared_mem_kb 256;
        pcie_gbs 100.0;
        pcie_latency_us 0.1;
        max_threads_per_unit 1;
        relative_speed 1;
    }
}
"#;

/// Parse the built-in hierarchy. Panics only if the embedded HDL is broken,
/// which the test suite guards against.
pub fn standard_hierarchy() -> Hierarchy {
    hdl::parse(STANDARD_HDL).expect("embedded standard HDL must parse")
}

/// The seven many-core devices of the paper's evaluation (Sec. IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceKind {
    Gtx480,
    C2050,
    Gtx680,
    K20,
    Titan,
    Hd7970,
    XeonPhi,
}

impl DeviceKind {
    /// All seven devices, in the order the paper lists them.
    pub const ALL: [DeviceKind; 7] = [
        DeviceKind::Gtx480,
        DeviceKind::K20,
        DeviceKind::XeonPhi,
        DeviceKind::C2050,
        DeviceKind::Titan,
        DeviceKind::Gtx680,
        DeviceKind::Hd7970,
    ];

    /// The leaf level name in the standard hierarchy.
    pub fn level_name(self) -> &'static str {
        match self {
            DeviceKind::Gtx480 => "gtx480",
            DeviceKind::C2050 => "c2050",
            DeviceKind::Gtx680 => "gtx680",
            DeviceKind::K20 => "k20",
            DeviceKind::Titan => "titan",
            DeviceKind::Hd7970 => "hd7970",
            DeviceKind::XeonPhi => "xeon_phi",
        }
    }

    /// Marketing name, for table output.
    pub fn display_name(self) -> &'static str {
        match self {
            DeviceKind::Gtx480 => "NVIDIA GTX480",
            DeviceKind::C2050 => "NVIDIA C2050",
            DeviceKind::Gtx680 => "NVIDIA GTX680",
            DeviceKind::K20 => "NVIDIA K20",
            DeviceKind::Titan => "NVIDIA Titan",
            DeviceKind::Hd7970 => "AMD HD7970",
            DeviceKind::XeonPhi => "Intel Xeon Phi",
        }
    }

    /// Resolve this device's leaf level in a hierarchy.
    pub fn level(self, h: &Hierarchy) -> LevelId {
        h.id(self.level_name())
            .unwrap_or_else(|| panic!("hierarchy lacks device level {}", self.level_name()))
    }

    pub fn from_level_name(name: &str) -> Option<DeviceKind> {
        DeviceKind::ALL.into_iter().find(|d| d.level_name() == name)
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.level_name())
    }
}

/// The DAS-4 many-core inventory of the paper's methodology section:
/// `(device, how many nodes carry one)`.
pub fn das4_inventory() -> Vec<(DeviceKind, usize)> {
    vec![
        (DeviceKind::Gtx480, 22),
        (DeviceKind::K20, 8),
        (DeviceKind::XeonPhi, 2),
        (DeviceKind::C2050, 2),
        (DeviceKind::Titan, 1),
        (DeviceKind::Gtx680, 1),
        (DeviceKind::Hd7970, 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_hierarchy_parses() {
        let h = standard_hierarchy();
        // 7 device leaves + host_cpu.
        let leaves = h.leaves();
        assert_eq!(leaves.len(), 8);
        for d in DeviceKind::ALL {
            let lvl = d.level(&h);
            assert!(h.children(lvl).is_empty(), "{d} must be a leaf");
        }
    }

    #[test]
    fn all_devices_fully_resolve() {
        let h = standard_hierarchy();
        for d in DeviceKind::ALL {
            let p = h.device_params(d.level(&h)).unwrap();
            assert!(p.peak_sp_gflops() > 100.0, "{d}: {}", p.peak_sp_gflops());
            assert!(p.mem_bandwidth_gbs > 10.0);
            assert!(p.relative_speed > 0.0);
        }
        let cpu = h.id("host_cpu").unwrap();
        let p = h.device_params(cpu).unwrap();
        assert!((p.peak_sp_gflops() - 153.6).abs() < 0.1);
    }

    #[test]
    fn peak_flops_match_published_specs() {
        let h = standard_hierarchy();
        let check = |d: DeviceKind, expect: f64| {
            let p = h.device_params(d.level(&h)).unwrap();
            let got = p.peak_sp_gflops();
            assert!(
                (got - expect).abs() / expect < 0.02,
                "{d}: got {got:.0}, expected {expect:.0}"
            );
        };
        check(DeviceKind::Gtx480, 1345.0);
        check(DeviceKind::C2050, 1030.0);
        check(DeviceKind::Gtx680, 3090.0);
        check(DeviceKind::K20, 3524.0);
        check(DeviceKind::Titan, 4500.0);
        check(DeviceKind::Hd7970, 3789.0);
        check(DeviceKind::XeonPhi, 2022.0);
    }

    #[test]
    fn static_speed_table_matches_paper() {
        // Sec. III-B: "the table states that a K20 GPU has speed 40 and a
        // GTX480 speed 20".
        let h = standard_hierarchy();
        let speed = |d: DeviceKind| h.device_params(d.level(&h)).unwrap().relative_speed;
        assert_eq!(speed(DeviceKind::K20), 40.0);
        assert_eq!(speed(DeviceKind::Gtx480), 20.0);
    }

    #[test]
    fn most_specific_matches_paper_example() {
        // Paper Sec. III-A: kernel versions at perfect, gpu, amd, hd7970 ⇒
        // Xeon Phi gets perfect, NVIDIA GPUs get gpu, HD7970 gets hd7970.
        let h = standard_hierarchy();
        let avail: Vec<_> = ["perfect", "gpu", "amd", "hd7970"]
            .iter()
            .map(|n| h.id(n).unwrap())
            .collect();
        let pick = |d: DeviceKind| {
            let lvl = h.most_specific(&avail, d.level(&h)).unwrap();
            h.name(lvl).to_string()
        };
        assert_eq!(pick(DeviceKind::XeonPhi), "perfect");
        assert_eq!(pick(DeviceKind::Gtx480), "gpu");
        assert_eq!(pick(DeviceKind::K20), "gpu");
        assert_eq!(pick(DeviceKind::Hd7970), "hd7970");
    }

    #[test]
    fn inventory_counts_match_methodology() {
        let inv = das4_inventory();
        let total: usize = inv.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 22 + 8 + 2 + 2 + 1 + 1 + 1);
        assert_eq!(inv[0], (DeviceKind::Gtx480, 22));
    }

    #[test]
    fn kind_roundtrips_through_level_name() {
        for d in DeviceKind::ALL {
            assert_eq!(DeviceKind::from_level_name(d.level_name()), Some(d));
        }
        assert_eq!(DeviceKind::from_level_name("host_cpu"), None);
    }

    #[test]
    fn render_tree_shows_fig2_shape() {
        let h = standard_hierarchy();
        let t = h.render_tree();
        assert!(t.starts_with("perfect\n"));
        for d in DeviceKind::ALL {
            assert!(t.contains(d.level_name()), "tree missing {d}");
        }
    }
}
