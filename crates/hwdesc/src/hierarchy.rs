//! The level tree: `perfect` at the root, concrete devices at the leaves.
//!
//! Two operations drive the rest of the system:
//!
//! * **parameter resolution** — a level's effective parameters are its own
//!   merged with everything inherited from its ancestors;
//! * **most-specific-version selection** (paper Sec. III-A) — given the set
//!   of levels a kernel has been written for and a target device, pick the
//!   deepest level on the device's root path. This is how an `hd7970` kernel
//!   is chosen for the HD7970 while the NVIDIA GPUs fall back to the `gpu`
//!   version and the Xeon Phi to `perfect`.

use crate::params::{HwParams, ResolvedParams};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Index of a level in a [`Hierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LevelId(pub usize);

#[derive(Debug, Clone)]
struct Level {
    name: String,
    parent: Option<LevelId>,
    children: Vec<LevelId>,
    params: HwParams,
}

/// The hardware-description hierarchy.
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    levels: Vec<Level>,
    by_name: HashMap<String, LevelId>,
}

impl Hierarchy {
    pub fn new() -> Self {
        Hierarchy::default()
    }

    /// Add a level. The first level added must be the root (no parent);
    /// every other level names an existing parent.
    pub fn add_level(
        &mut self,
        name: &str,
        parent: Option<&str>,
        params: HwParams,
    ) -> Result<LevelId, String> {
        if self.by_name.contains_key(name) {
            return Err(format!("duplicate hardware description `{name}`"));
        }
        let parent_id = match parent {
            None => {
                if !self.levels.is_empty() {
                    return Err(format!(
                        "`{name}` has no parent but the hierarchy already has a root"
                    ));
                }
                None
            }
            Some(p) => Some(
                self.id(p)
                    .ok_or_else(|| format!("`{name}` extends unknown level `{p}`"))?,
            ),
        };
        let id = LevelId(self.levels.len());
        self.levels.push(Level {
            name: name.to_string(),
            parent: parent_id,
            children: Vec::new(),
            params,
        });
        if let Some(p) = parent_id {
            self.levels[p.0].children.push(id);
        }
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Look up a level by name.
    pub fn id(&self, name: &str) -> Option<LevelId> {
        self.by_name.get(name).copied()
    }

    pub fn name(&self, id: LevelId) -> &str {
        &self.levels[id.0].name
    }

    pub fn parent(&self, id: LevelId) -> Option<LevelId> {
        self.levels[id.0].parent
    }

    pub fn children(&self, id: LevelId) -> &[LevelId] {
        &self.levels[id.0].children
    }

    pub fn root(&self) -> Option<LevelId> {
        if self.levels.is_empty() {
            None
        } else {
            Some(LevelId(0))
        }
    }

    pub fn len(&self) -> usize {
        self.levels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Leaf levels = concrete devices.
    pub fn leaves(&self) -> Vec<LevelId> {
        (0..self.levels.len())
            .map(LevelId)
            .filter(|id| self.levels[id.0].children.is_empty())
            .collect()
    }

    /// Path from the root down to `id` (inclusive).
    pub fn root_path(&self, id: LevelId) -> Vec<LevelId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.levels[cur.0].parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Depth of a level (root = 0).
    pub fn depth(&self, id: LevelId) -> usize {
        self.root_path(id).len() - 1
    }

    /// Is `ancestor` on the root path of `id` (or equal to it)?
    pub fn is_ancestor_or_self(&self, ancestor: LevelId, id: LevelId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.levels[c.0].parent;
        }
        false
    }

    /// Raw (un-inherited) parameters of a level.
    pub fn raw_params(&self, id: LevelId) -> &HwParams {
        &self.levels[id.0].params
    }

    /// Effective parameters: own merged with all ancestors'.
    pub fn effective_params(&self, id: LevelId) -> HwParams {
        let path = self.root_path(id);
        let mut acc = self.levels[path[0].0].params.clone();
        for lvl in &path[1..] {
            acc = self.levels[lvl.0].params.merge_from_parent(&acc);
        }
        acc
    }

    /// Fully resolved parameters of a leaf device.
    pub fn device_params(&self, id: LevelId) -> Result<ResolvedParams, String> {
        self.effective_params(id).resolve(self.name(id))
    }

    /// Most-specific-version selection (paper Sec. III-A): among the levels a
    /// kernel exists for, pick the deepest one that is an ancestor-or-self of
    /// `device`. Returns `None` when no version applies.
    pub fn most_specific(&self, available: &[LevelId], device: LevelId) -> Option<LevelId> {
        available
            .iter()
            .copied()
            .filter(|lvl| self.is_ancestor_or_self(*lvl, device))
            .max_by_key(|lvl| self.depth(*lvl))
    }

    /// Pretty-print the tree (paper Fig. 2) as indented text.
    pub fn render_tree(&self) -> String {
        fn walk(h: &Hierarchy, id: LevelId, depth: usize, out: &mut String) {
            let _ = writeln!(out, "{}{}", "  ".repeat(depth), h.name(id));
            for c in h.children(id) {
                walk(h, *c, depth + 1, out);
            }
        }
        let mut out = String::new();
        if let Some(root) = self.root() {
            walk(self, root, 0, &mut out);
        }
        out
    }

    /// All level names, in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.levels.iter().map(|l| l.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        // perfect -> gpu -> {nvidia -> {gtx480}, amd}
        //         -> mic
        let mut h = Hierarchy::new();
        h.add_level("perfect", None, HwParams::default()).unwrap();
        h.add_level("gpu", Some("perfect"), HwParams::default())
            .unwrap();
        h.add_level("mic", Some("perfect"), HwParams::default())
            .unwrap();
        h.add_level("nvidia", Some("gpu"), HwParams::default())
            .unwrap();
        h.add_level("amd", Some("gpu"), HwParams::default())
            .unwrap();
        h.add_level("gtx480", Some("nvidia"), HwParams::default())
            .unwrap();
        h
    }

    #[test]
    fn build_and_lookup() {
        let h = small();
        assert_eq!(h.len(), 6);
        assert_eq!(h.name(h.id("gpu").unwrap()), "gpu");
        assert!(h.id("cpu").is_none());
        assert_eq!(h.root(), h.id("perfect"));
    }

    #[test]
    fn duplicate_and_bad_parent_rejected() {
        let mut h = small();
        assert!(h
            .add_level("gpu", Some("perfect"), HwParams::default())
            .is_err());
        assert!(h
            .add_level("x", Some("nonexistent"), HwParams::default())
            .is_err());
        assert!(h
            .add_level("second-root", None, HwParams::default())
            .is_err());
    }

    #[test]
    fn paths_and_depths() {
        let h = small();
        let gtx = h.id("gtx480").unwrap();
        let names: Vec<_> = h.root_path(gtx).iter().map(|l| h.name(*l)).collect();
        assert_eq!(names, ["perfect", "gpu", "nvidia", "gtx480"]);
        assert_eq!(h.depth(gtx), 3);
        assert_eq!(h.depth(h.root().unwrap()), 0);
    }

    #[test]
    fn ancestor_queries() {
        let h = small();
        let (gpu, mic, gtx) = (
            h.id("gpu").unwrap(),
            h.id("mic").unwrap(),
            h.id("gtx480").unwrap(),
        );
        assert!(h.is_ancestor_or_self(gpu, gtx));
        assert!(h.is_ancestor_or_self(gtx, gtx));
        assert!(!h.is_ancestor_or_self(mic, gtx));
        assert!(!h.is_ancestor_or_self(gtx, gpu));
    }

    #[test]
    fn leaves_are_childless() {
        let h = small();
        let leaves: Vec<_> = h.leaves().iter().map(|l| h.name(*l)).collect();
        assert_eq!(leaves, ["mic", "amd", "gtx480"]);
    }

    #[test]
    fn most_specific_selection() {
        let h = small();
        let (perfect, gpu, nvidia, amd, gtx) = (
            h.id("perfect").unwrap(),
            h.id("gpu").unwrap(),
            h.id("nvidia").unwrap(),
            h.id("amd").unwrap(),
            h.id("gtx480").unwrap(),
        );
        // Kernel exists at perfect, gpu and amd. For the GTX480 the gpu
        // version wins; for amd the amd version; for mic only perfect applies.
        let avail = vec![perfect, gpu, amd];
        assert_eq!(h.most_specific(&avail, gtx), Some(gpu));
        assert_eq!(h.most_specific(&avail, amd), Some(amd));
        assert_eq!(h.most_specific(&avail, h.id("mic").unwrap()), Some(perfect));
        // Kernel only at nvidia: nothing applies to amd.
        assert_eq!(h.most_specific(&[nvidia], amd), None);
    }

    #[test]
    fn effective_params_inherit_down_the_path() {
        let mut h = Hierarchy::new();
        h.add_level(
            "perfect",
            None,
            HwParams {
                flops_per_lane_per_cycle: Some(2.0),
                ..HwParams::default()
            },
        )
        .unwrap();
        h.add_level(
            "gpu",
            Some("perfect"),
            HwParams {
                pcie_gbs: Some(8.0),
                ..HwParams::default()
            },
        )
        .unwrap();
        h.add_level(
            "dev",
            Some("gpu"),
            HwParams {
                compute_units: Some(10),
                pcie_gbs: Some(6.0),
                ..HwParams::default()
            },
        )
        .unwrap();
        let eff = h.effective_params(h.id("dev").unwrap());
        assert_eq!(eff.flops_per_lane_per_cycle, Some(2.0));
        assert_eq!(eff.pcie_gbs, Some(6.0), "closest level wins");
        assert_eq!(eff.compute_units, Some(10));
    }

    #[test]
    fn render_tree_is_indented() {
        let h = small();
        let t = h.render_tree();
        assert!(t.starts_with("perfect\n"));
        assert!(t.contains("  gpu\n"));
        assert!(t.contains("    nvidia\n"));
        assert!(t.contains("      gtx480\n"));
    }
}
