//! K-means clustering — the paper's iterative application with minimal
//! (constant) communication between iterations (Table II).
//!
//! Each iteration assigns every point to its nearest centroid on the
//! devices, the hosts reduce partial sums per cluster, and the master
//! updates and broadcasts the new centroids (communication `O(k)`,
//! computation `O(n·k·d)` — Sec. IV). The paper clusters 268 million
//! 4-feature points into 4096 clusters over 3 iterations (Sec. V-B3).
//!
//! Kernel versions:
//! * `perfect` — straightforward nearest-centroid loop;
//! * `gpu` — centroids staged through local memory in tiles, distance loop
//!   unrolled for `d = 4`;
//! * `mic` — coarse per-core point chunks (few, fat work-groups).

use crate::common::{binary_divide, split_range, AppMode, CpuLeafModel, KernelSet};
use cashmere::{CashmereApp, KernelCall, KernelRegistry};
use cashmere_des::SimTime;
use cashmere_mcl::value::{ArgValue, ArrayArg};
use cashmere_mcl::ElemTy;
use cashmere_satin::{ClusterApp, CpuLeafRuntime, DcStep};
use std::sync::{Arc, RwLock};

/// Unoptimized assignment kernel.
pub const KERNEL_PERFECT: &str = "\
perfect void kmeans_assign(int npts, int k, int d,
    int[npts] assign, float[npts,d] points, float[k,d] centroids) {
  foreach (int i in npts threads) {
    float best = 1e30;
    int bestc = 0;
    for (int c = 0; c < k; c++) {
      float dist = 0.0;
      for (int f = 0; f < d; f++) {
        float diff = points[i,f] - centroids[c,f];
        dist += diff * diff;
      }
      if (dist < best) { best = dist; bestc = c; }
    }
    assign[i] = bestc;
  }
}";

/// Optimized `gpu` version: centroid tiles in local memory, `d = 4`
/// unrolled (the evaluation's feature count).
pub const KERNEL_GPU: &str = "\
gpu void kmeans_assign(int npts, int k, int d,
    int[npts] assign, float[npts,d] points, float[k,d] centroids) {
  foreach (int b in (npts + 255) / 256 blocks) {
    local float cent[64,4];
    foreach (int t in 256 threads) {
      int i = b * 256 + t;
      float p0 = 0.0;
      float p1 = 0.0;
      float p2 = 0.0;
      float p3 = 0.0;
      if (i < npts) {
        p0 = points[i,0];
        p1 = points[i,1];
        p2 = points[i,2];
        p3 = points[i,3];
      }
      float best = 1e30;
      int bestc = 0;
      int tiles = (k + 63) / 64;
      for (int tile = 0; tile < tiles; tile++) {
        int base = tile * 64;
        if (t < 64 && base + t < k) {
          cent[t,0] = centroids[base + t, 0];
          cent[t,1] = centroids[base + t, 1];
          cent[t,2] = centroids[base + t, 2];
          cent[t,3] = centroids[base + t, 3];
        }
        barrier();
        int limit = min(64, k - base);
        for (int c = 0; c < limit; c++) {
          float d0 = p0 - cent[c,0];
          float d1 = p1 - cent[c,1];
          float d2 = p2 - cent[c,2];
          float d3 = p3 - cent[c,3];
          float dist = d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3;
          if (dist < best) { best = dist; bestc = base + c; }
        }
        barrier();
      }
      if (i < npts) { assign[i] = bestc; }
    }
  }
}";

/// Optimized `mic` version: coarse per-core point chunks with centroid
/// tiles staged through local memory, `d = 4` unrolled.
pub const KERNEL_MIC: &str = "\
mic void kmeans_assign(int npts, int k, int d,
    int[npts] assign, float[npts,d] points, float[k,d] centroids) {
  foreach (int chunk in (npts + 4095) / 4096 cores) {
    local float cent[64,4];
    foreach (int t in 64 threads) {
      int blocks = 4096 / 64;
      for (int bb = 0; bb < blocks; bb++) {
        int i = chunk * 4096 + bb * 64 + t;
        float p0 = 0.0;
        float p1 = 0.0;
        float p2 = 0.0;
        float p3 = 0.0;
        if (i < npts) {
          p0 = points[i,0];
          p1 = points[i,1];
          p2 = points[i,2];
          p3 = points[i,3];
        }
        float best = 1e30;
        int bestc = 0;
        int tiles = (k + 63) / 64;
        for (int tile = 0; tile < tiles; tile++) {
          int base = tile * 64;
          if (base + t < k) {
            cent[t,0] = centroids[base + t, 0];
            cent[t,1] = centroids[base + t, 1];
            cent[t,2] = centroids[base + t, 2];
            cent[t,3] = centroids[base + t, 3];
          }
          barrier();
          int limit = min(64, k - base);
          for (int c = 0; c < limit; c++) {
            float d0 = p0 - cent[c,0];
            float d1 = p1 - cent[c,1];
            float d2 = p2 - cent[c,2];
            float d3 = p3 - cent[c,3];
            float dist = d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3;
            if (dist < best) { best = dist; bestc = base + c; }
          }
          barrier();
        }
        if (i < npts) { assign[i] = bestc; }
      }
    }
  }
}";

/// Problem description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmeansProblem {
    /// Number of points.
    pub n: u64,
    /// Clusters.
    pub k: u64,
    /// Features per point.
    pub d: u64,
    /// Iterations to run.
    pub iterations: u32,
}

impl KmeansProblem {
    /// The paper's problem: 268 M points, 4 features, 4096 clusters,
    /// 3 iterations (Sec. V-B3).
    pub fn paper() -> KmeansProblem {
        KmeansProblem {
            n: 268_000_000,
            k: 4096,
            d: 4,
            iterations: 3,
        }
    }

    /// Algorithmic flops per iteration: distance evaluation is
    /// `3·d` flops (sub, mul, add) per point per centroid.
    pub fn flops_per_iteration(&self) -> f64 {
        3.0 * self.n as f64 * self.k as f64 * self.d as f64
    }

    pub fn total_flops(&self) -> f64 {
        self.flops_per_iteration() * f64::from(self.iterations)
    }

    pub fn job_flops(&self, pts: u64) -> f64 {
        3.0 * pts as f64 * self.k as f64 * self.d as f64
    }
}

/// Partial clustering statistics produced per job and summed by `combine`.
#[derive(Debug, Clone, PartialEq)]
pub struct KmOut {
    /// `k × d` feature sums (empty in phantom mode).
    pub sums: Vec<f64>,
    /// Points per cluster (empty in phantom mode).
    pub counts: Vec<u64>,
}

impl KmOut {
    fn add(mut self, other: KmOut) -> KmOut {
        if self.sums.is_empty() {
            return other;
        }
        if other.sums.is_empty() {
            return self;
        }
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self
    }
}

/// Shared mutable centroids (updated by the driver between iterations).
pub type Centroids = Arc<RwLock<Vec<f64>>>;

/// The master's centroid update: every non-empty cluster moves to the mean
/// of its assigned points. Returns the maximum displacement.
pub fn apply_centroid_update(pr: &KmeansProblem, out: &KmOut, cent: &mut [f64]) -> f64 {
    let d = pr.d as usize;
    let mut movement = 0.0f64;
    for c in 0..pr.k as usize {
        if out.counts[c] == 0 {
            continue;
        }
        for f in 0..d {
            let new = out.sums[c * d + f] / out.counts[c] as f64;
            movement = movement.max((new - cent[c * d + f]).abs());
            cent[c * d + f] = new;
        }
    }
    movement
}

/// The K-means application.
pub struct KmeansApp {
    pub problem: KmeansProblem,
    pub mode: AppMode,
    pub node_grain_pts: u64,
    pub device_jobs: u64,
    pub cpu_model: CpuLeafModel,
    /// Point data, AoS `n × d` (Real mode only).
    points: Option<Arc<Vec<f64>>>,
    /// Current centroids, `k × d`.
    pub centroids: Centroids,
}

impl KmeansApp {
    pub fn phantom(problem: KmeansProblem, node_grain_pts: u64, device_jobs: u64) -> KmeansApp {
        KmeansApp {
            problem,
            mode: AppMode::Phantom,
            node_grain_pts,
            device_jobs,
            cpu_model: CpuLeafModel::MODERATE,
            points: None,
            centroids: Arc::new(RwLock::new(Vec::new())),
        }
    }

    pub fn real(
        problem: KmeansProblem,
        node_grain_pts: u64,
        device_jobs: u64,
        seed: u64,
    ) -> KmeansApp {
        let points = generate_points(&problem, seed);
        let centroids = initial_centroids(&problem, &points);
        KmeansApp {
            problem,
            mode: AppMode::Real,
            node_grain_pts,
            device_jobs,
            cpu_model: CpuLeafModel::MODERATE,
            points: Some(Arc::new(points)),
            centroids: Arc::new(RwLock::new(centroids)),
        }
    }

    pub fn registry(set: KernelSet) -> KernelRegistry {
        crate::common::build_registry(&[KERNEL_PERFECT], &[KERNEL_GPU, KERNEL_MIC], set)
    }

    pub fn points(&self) -> Option<&Arc<Vec<f64>>> {
        self.points.as_ref()
    }

    /// Calibrated cluster count for phantom runs.
    fn k_cal(&self) -> u64 {
        self.problem.k.min(128)
    }

    /// Nearest-centroid assignment + partial sums on the CPU for points
    /// `[lo, hi)` — the reference and the `leafCPU` body.
    pub fn cpu_assign(&self, lo: u64, hi: u64) -> KmOut {
        let (Some(points), pr) = (&self.points, &self.problem) else {
            return KmOut {
                sums: Vec::new(),
                counts: Vec::new(),
            };
        };
        let cent = self.centroids.read().expect("centroids lock");
        let d = pr.d as usize;
        let k = pr.k as usize;
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0u64; k];
        for i in lo..hi {
            let p = &points[i as usize * d..(i as usize + 1) * d];
            let mut best = f64::INFINITY;
            let mut bestc = 0usize;
            for c in 0..k {
                let mut dist = 0.0;
                for (f, pf) in p.iter().enumerate() {
                    let diff = ((pf - cent[c * d + f]) as f32) as f64;
                    dist += diff * diff;
                }
                let dist = (dist as f32) as f64;
                if dist < best {
                    best = dist;
                    bestc = c;
                }
            }
            counts[bestc] += 1;
            for (f, pf) in p.iter().enumerate() {
                sums[bestc * d + f] += pf;
            }
        }
        KmOut { sums, counts }
    }

    /// Partial sums from device-computed assignments.
    fn sums_from_assignments(&self, lo: u64, hi: u64, assign: &[i64]) -> KmOut {
        let (Some(points), pr) = (&self.points, &self.problem) else {
            return KmOut {
                sums: Vec::new(),
                counts: Vec::new(),
            };
        };
        let d = pr.d as usize;
        let k = pr.k as usize;
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0u64; k];
        for (j, i) in (lo..hi).enumerate() {
            let c = assign[j] as usize;
            counts[c] += 1;
            for f in 0..d {
                sums[c * d + f] += points[i as usize * d + f];
            }
        }
        KmOut { sums, counts }
    }

    /// Satin (CPU-only) leaf runtime.
    #[allow(clippy::type_complexity)]
    pub fn satin_runtime(
        self: &Arc<Self>,
    ) -> CpuLeafRuntime<impl FnMut(usize, &(u64, u64), SimTime) -> (SimTime, KmOut)> {
        let app = Arc::clone(self);
        CpuLeafRuntime(move |_node, &(lo, hi): &(u64, u64), _now| {
            let t = app.cpu_model.time(app.problem.job_flops(hi - lo));
            (t, app.cpu_assign(lo, hi))
        })
    }

    /// Update centroids from an iteration's global sums (Real mode);
    /// returns the movement (max centroid displacement).
    pub fn update_centroids(&self, out: &KmOut) -> f64 {
        if out.sums.is_empty() {
            return 0.0;
        }
        let mut cent = self.centroids.write().expect("centroids lock");
        apply_centroid_update(&self.problem, out, &mut cent)
    }
}

fn generate_points(pr: &KmeansProblem, seed: u64) -> Vec<f64> {
    // Clustered synthetic data: points scattered around k/8 loose centers.
    let centers = (pr.k / 8).max(2);
    (0..pr.n * pr.d)
        .map(|i| {
            let pt = i / pr.d;
            let mut x = (pt ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 29;
            let center = (x % centers) as f64 * 10.0;
            let mut y = (i ^ seed ^ 0xC0FFEE).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            y ^= y >> 31;
            center + (y % 1000) as f64 / 500.0
        })
        .collect()
}

fn initial_centroids(pr: &KmeansProblem, points: &[f64]) -> Vec<f64> {
    // First k points, the classic Forgy-style seeding.
    points[..(pr.k * pr.d) as usize].to_vec()
}

impl ClusterApp for KmeansApp {
    type Input = (u64, u64);
    type Output = KmOut;

    fn step(&self, &(lo, hi): &(u64, u64)) -> DcStep<(u64, u64)> {
        match binary_divide(lo, hi, self.node_grain_pts) {
            Some(ch) => DcStep::Divide(ch),
            None => DcStep::Leaf,
        }
    }

    fn combine(&self, _i: &(u64, u64), children: Vec<KmOut>) -> KmOut {
        children.into_iter().reduce(KmOut::add).unwrap_or(KmOut {
            sums: Vec::new(),
            counts: Vec::new(),
        })
    }

    fn input_bytes(&self, _i: &(u64, u64)) -> u64 {
        // The point data is pre-distributed (DAS-4 nodes read it from the
        // parallel filesystem; Satin's shared objects keep it resident), so
        // a stolen job ships only its range descriptor — the paper's
        // per-iteration communication for k-means is O(k), not O(n).
        256
    }

    fn output_bytes(&self, _o: &KmOut) -> u64 {
        // k×d sums + k counts.
        self.problem.k * (self.problem.d + 1) * 4
    }

    fn combine_cost(&self, _i: &(u64, u64)) -> SimTime {
        // Element-wise reduction of k×(d+1) values at ~1 G/s.
        SimTime::from_secs_f64(self.problem.k as f64 * (self.problem.d + 1) as f64 / 1e9)
    }
}

impl CashmereApp for KmeansApp {
    fn device_jobs(&self, &(lo, hi): &(u64, u64)) -> Vec<(u64, u64)> {
        split_range(lo, hi, self.device_jobs)
    }

    fn kernel_call(&self, &(lo, hi): &(u64, u64)) -> KernelCall {
        let pr = &self.problem;
        let pts = hi - lo;
        let (args, extra_scale) = match (&self.mode, &self.points) {
            (AppMode::Real, Some(points)) => {
                let slice = points[(lo * pr.d) as usize..(hi * pr.d) as usize].to_vec();
                let cent = self.centroids.read().expect("centroids lock").clone();
                (
                    vec![
                        ArgValue::Int(pts as i64),
                        ArgValue::Int(pr.k as i64),
                        ArgValue::Int(pr.d as i64),
                        ArgValue::Array(ArrayArg::zeros(ElemTy::Int, &[pts])),
                        ArgValue::Array(ArrayArg::float(&[pts, pr.d], slice)),
                        ArgValue::Array(ArrayArg::float(&[pr.k, pr.d], cent)),
                    ],
                    1.0,
                )
            }
            _ => {
                let k_cal = self.k_cal();
                (
                    vec![
                        ArgValue::Int(pts as i64),
                        ArgValue::Int(k_cal as i64),
                        ArgValue::Int(pr.d as i64),
                        ArgValue::Array(ArrayArg::phantom(ElemTy::Int, &[pts])),
                        ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[pts, pr.d])),
                        ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[k_cal, pr.d])),
                    ],
                    pr.k as f64 / self.k_cal() as f64,
                )
            }
        };
        let mut call = KernelCall::from_args("kmeans_assign", args, &[3]);
        // Points are resident across iterations; per-job traffic is the
        // fresh centroids in and the assignments out.
        call.h2d_bytes = pr.k * pr.d * 4;
        call.resident_bytes = pts * pr.d * 4;
        call.d2h_bytes = pts * 4;
        call.extra_scale = extra_scale;
        call
    }

    fn job_output(&self, &(lo, hi): &(u64, u64), args: Vec<ArgValue>) -> KmOut {
        match self.mode {
            AppMode::Real => {
                let assign = args[3].clone().array();
                self.sums_from_assignments(lo, hi, assign.as_i64())
            }
            AppMode::Phantom => KmOut {
                sums: Vec::new(),
                counts: Vec::new(),
            },
        }
    }

    fn leaf_cpu(&self, &(lo, hi): &(u64, u64)) -> (SimTime, KmOut) {
        let t = self.cpu_model.time(self.problem.job_flops(hi - lo));
        (t, self.cpu_assign(lo, hi))
    }
}

/// Run the full iterative algorithm on a built cluster; returns the final
/// global statistics and the virtual time spent (excluding construction).
pub fn run_iterations<L>(
    cluster: &mut cashmere_satin::ClusterSim<KmeansApp, L>,
    problem: &KmeansProblem,
    centroids: &Centroids,
    update: bool,
) -> (KmOut, SimTime)
where
    L: cashmere_satin::LeafRuntime<KmeansApp>,
{
    let start = cluster.now();
    let mut last = KmOut {
        sums: Vec::new(),
        counts: Vec::new(),
    };
    for _ in 0..problem.iterations {
        let out = cluster.run_root((0, problem.n));
        if update && !out.sums.is_empty() {
            // Update centroids exactly as the master would.
            let mut cent = centroids.write().expect("centroids lock");
            apply_centroid_update(problem, &out, &mut cent);
        }
        // Broadcast the new centroids to every node.
        cluster.broadcast(problem.k * problem.d * 4);
        last = out;
    }
    (last, cluster.now() - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere::{build_cluster, ClusterSpec, RuntimeConfig};
    use cashmere_satin::{ClusterSim, SimConfig};

    fn small_problem() -> KmeansProblem {
        KmeansProblem {
            n: 3000,
            k: 16,
            d: 4,
            iterations: 2,
        }
    }

    #[test]
    fn kernels_compile() {
        assert_eq!(
            KmeansApp::registry(KernelSet::Optimized)
                .versions_of("kmeans_assign")
                .len(),
            3
        );
    }

    #[test]
    fn device_assignments_match_cpu_reference() {
        let pr = small_problem();
        let app = KmeansApp::real(pr, 1024, 4, 11);
        let reference = app.cpu_assign(0, pr.n);
        let centroids = Arc::clone(&app.centroids);
        let mut cluster = build_cluster(
            app,
            KmeansApp::registry(KernelSet::Optimized),
            &ClusterSpec::homogeneous(2, "gtx480"),
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let out = cluster.run_root((0, pr.n));
        assert_eq!(out.counts, reference.counts);
        for (a, b) in out.sums.iter().zip(&reference.sums) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        drop(centroids);
    }

    #[test]
    fn unoptimized_kernel_agrees_too() {
        let pr = KmeansProblem {
            n: 900,
            k: 7,
            d: 4,
            iterations: 1,
        };
        let app = KmeansApp::real(pr, 512, 2, 3);
        let reference = app.cpu_assign(0, pr.n);
        let mut cluster = build_cluster(
            app,
            KmeansApp::registry(KernelSet::Unoptimized),
            &ClusterSpec::homogeneous(1, "k20"),
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let out = cluster.run_root((0, pr.n));
        assert_eq!(out.counts, reference.counts);
    }

    #[test]
    fn iterations_converge_on_clustered_data() {
        let pr = small_problem();
        let app = KmeansApp::real(pr, 1024, 4, 42);
        let centroids = Arc::clone(&app.centroids);
        let before = centroids.read().unwrap().clone();
        let mut cluster = build_cluster(
            app,
            KmeansApp::registry(KernelSet::Optimized),
            &ClusterSpec::homogeneous(2, "gtx480"),
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let (out, elapsed) = run_iterations(&mut cluster, &pr, &centroids, true);
        assert!(elapsed > SimTime::ZERO);
        assert_eq!(out.counts.iter().sum::<u64>(), pr.n);
        let after = centroids.read().unwrap().clone();
        assert_ne!(before, after, "centroids moved");
        assert!(cluster.report().bytes_broadcast > 0);
    }

    #[test]
    fn phantom_paper_scale_runs_quickly_and_deterministically() {
        let run = || {
            let pr = KmeansProblem {
                iterations: 1,
                ..KmeansProblem::paper()
            };
            let app = KmeansApp::phantom(pr, 4_200_000, 8);
            let centroids = Arc::new(RwLock::new(Vec::new()));
            let mut cluster = build_cluster(
                app,
                KmeansApp::registry(KernelSet::Optimized),
                &ClusterSpec::homogeneous(16, "gtx480"),
                SimConfig {
                    max_concurrent_leaves: 2,
                    ..SimConfig::default()
                },
                RuntimeConfig::default(),
            )
            .unwrap();
            let (_, elapsed) = run_iterations(&mut cluster, &pr, &centroids, false);
            (elapsed, cluster.leaf_runtime().kernels_run)
        };
        let (t1, k1) = run();
        let (t2, k2) = run();
        assert_eq!((t1, k1), (t2, k2));
        assert!(k1 >= 64 * 8, "{k1}");
    }

    #[test]
    fn satin_variant_matches_reference() {
        let pr = KmeansProblem {
            n: 1200,
            k: 8,
            d: 4,
            iterations: 1,
        };
        let app = Arc::new(KmeansApp::real(pr, 256, 1, 5));
        let reference = app.cpu_assign(0, pr.n);
        let rt = app.satin_runtime();
        // The Arc<KmeansApp> cannot be moved into ClusterSim directly; build
        // a second identical app sharing the same points/centroids.
        let app2 = KmeansApp {
            problem: pr,
            mode: AppMode::Real,
            node_grain_pts: 256,
            device_jobs: 1,
            cpu_model: CpuLeafModel::MODERATE,
            points: app.points.clone(),
            centroids: Arc::clone(&app.centroids),
        };
        let mut cluster = ClusterSim::new(
            app2,
            rt,
            SimConfig {
                nodes: 3,
                ..SimConfig::default()
            },
        );
        let out = cluster.run_root((0, pr.n));
        assert_eq!(out.counts, reference.counts);
    }

    #[test]
    fn optimized_beats_unoptimized_at_scale() {
        let time_with = |set: KernelSet| {
            let pr = KmeansProblem {
                n: 8_000_000,
                k: 4096,
                d: 4,
                iterations: 1,
            };
            let app = KmeansApp::phantom(pr, 1_000_000, 8);
            let mut cluster = build_cluster(
                app,
                KmeansApp::registry(set),
                &ClusterSpec::homogeneous(2, "gtx480"),
                SimConfig {
                    max_concurrent_leaves: 2,
                    ..SimConfig::default()
                },
                RuntimeConfig::default(),
            )
            .unwrap();
            let _ = cluster.run_root((0, pr.n));
            cluster.report().makespan
        };
        let unopt = time_with(KernelSet::Unoptimized);
        let opt = time_with(KernelSet::Optimized);
        let factor = unopt.as_secs_f64() / opt.as_secs_f64();
        assert!(factor > 1.3, "unopt {unopt} vs opt {opt} ({factor:.2}x)");
    }
}
