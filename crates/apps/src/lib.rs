//! # cashmere-apps — the four evaluation applications
//!
//! The paper evaluates Cashmere with four applications, each representing a
//! class (Table II):
//!
//! | application | type      | computation | communication |
//! |-------------|-----------|-------------|---------------|
//! | raytracer   | irregular | heavy       | light         |
//! | matmul      | regular   | heavy       | heavy         |
//! | k-means     | iterative | moderate    | light         |
//! | n-body      | iterative | heavy       | moderate      |
//!
//! Every application provides: MCPL kernels (unoptimized `perfect` version
//! plus optimized lower-level versions), a divide-and-conquer driver
//! implementing [`cashmere_satin::ClusterApp`] + [`cashmere::CashmereApp`],
//! a CPU reference for correctness, a Satin-only leaf runtime, and
//! phantom-mode calibration for paper-scale measurement.

pub mod common;
pub mod kmeans;
pub mod matmul;
pub mod nbody;
pub mod raytracer;

pub use common::{AppMode, CpuLeafModel, KernelSet, RunResult};
