//! Path-tracing raytracer — the paper's highly parallel, compute-intensive
//! *irregular* application (Table II), based on smallpt / SmallptGPU.
//!
//! Every pixel traces `ns` random samples through the Cornell-box scene;
//! rays bounce diffusely with russian-roulette termination. The
//! data-dependent control flow (hit vs. miss, per-lane bounce depth,
//! roulette) makes warps diverge constantly — which is exactly why the
//! paper's Fig. 6 shows almost no gain from optimizing this kernel: "to
//! obtain better performance from the raytracer would mean a different
//! algorithm, something MCL cannot suggest".
//!
//! The kernel is real MCPL: xorshift32 RNG built from the language's
//! integer ops, quadratic sphere intersection, cosine-hemisphere sampling
//! with an orthonormal basis — all per lane. The `gpu` "optimized" version
//! stages the scene in local memory; as in the paper, it barely helps.

use crate::common::{binary_divide, split_range, AppMode, CpuLeafModel, KernelSet};
use cashmere::{CashmereApp, KernelCall, KernelRegistry};
use cashmere_des::SimTime;
use cashmere_mcl::value::{ArgValue, ArrayArg};
use cashmere_mcl::ElemTy;
use cashmere_satin::{ClusterApp, CpuLeafRuntime, DcStep};
use std::sync::Arc;

/// Maximum path depth.
pub const MAX_DEPTH: i64 = 10;
/// Russian-roulette survival probability after [`RR_DEPTH`] bounces.
pub const RR_KEEP: f64 = 0.75;
pub const RR_DEPTH: i64 = 4;
/// Estimated flops per sample per sphere test (for GFLOPS reporting).
pub const FLOPS_PER_SPHERE_TEST: f64 = 25.0;
/// Average path length assumed by the flop estimate.
pub const AVG_BOUNCES: f64 = 4.0;

/// Shared body of the path-tracing loop (the kernel is identical at both
/// levels except for where the scene lives).
macro_rules! tracer_body {
    ($scene:literal) => {
        concat!(
            "
  foreach (int i in npix threads) {
    int pid = p0 + i;
    int x = pid % width;
    int y = pid / width;
    int state = (seed ^ (pid * 2654435761)) & 2147483647;
    if (state == 0) { state = 88172645; }
    float rx = 0.0;
    float ry = 0.0;
    float rz = 0.0;
    for (int s = 0; s < ns; s++) {
      // xorshift32, masked to 32 bits
      state = (state ^ (state << 13)) & 4294967295;
      state = state ^ (state >> 17);
      state = (state ^ (state << 5)) & 4294967295;
      float jx = (float) (state & 8388607) / 8388608.0;
      state = (state ^ (state << 13)) & 4294967295;
      state = state ^ (state >> 17);
      state = (state ^ (state << 5)) & 4294967295;
      float jy = (float) (state & 8388607) / 8388608.0;
      // camera ray (smallpt-style)
      float u = ((float) x + jx) / (float) width - 0.5;
      float v = ((float) y + jy) / (float) height - 0.5;
      float dx = u * 0.5135 * (float) width / (float) height;
      float dy = 0.0 - v * 0.5135 - 0.042612;
      float dz = -1.0;
      float dl = rsqrt(dx * dx + dy * dy + dz * dz);
      dx = dx * dl;
      dy = dy * dl;
      dz = dz * dl;
      // As in smallpt: start the ray 140 units forward, inside the box.
      float ox = 50.0 + dx * 140.0;
      float oy = 52.0 + dy * 140.0;
      float oz = 295.6 + dz * 140.0;
      float tx = 1.0;
      float ty = 1.0;
      float tz = 1.0;
      int alive = 1;
      for (int depth = 0; depth < maxd && alive == 1; depth++) {
        // nearest sphere
        float best = 1e20;
        int hit = -1;
        for (int sp = 0; sp < nsph; sp++) {
          float opx = ",
            $scene,
            "[sp,1] - ox;
          float opy = ",
            $scene,
            "[sp,2] - oy;
          float opz = ",
            $scene,
            "[sp,3] - oz;
          float b = opx * dx + opy * dy + opz * dz;
          float det = b * b - (opx * opx + opy * opy + opz * opz)
              + ",
            $scene,
            "[sp,0] * ",
            $scene,
            "[sp,0];
          if (det >= 0.0) {
            float sd = sqrt(det);
            float t1 = b - sd;
            float t2 = b + sd;
            float t = 1e20;
            if (t1 > 0.0001) { t = t1; }
            else if (t2 > 0.0001) { t = t2; }
            if (t < best) { best = t; hit = sp; }
          }
        }
        if (hit < 0) {
          alive = 0;
        } else {
          // hit point + oriented normal
          float hx = ox + dx * best;
          float hy = oy + dy * best;
          float hz = oz + dz * best;
          float nx = hx - ",
            $scene,
            "[hit,1];
          float ny = hy - ",
            $scene,
            "[hit,2];
          float nz = hz - ",
            $scene,
            "[hit,3];
          float nl = rsqrt(nx * nx + ny * ny + nz * nz);
          nx = nx * nl;
          ny = ny * nl;
          nz = nz * nl;
          if (nx * dx + ny * dy + nz * dz > 0.0) {
            nx = 0.0 - nx;
            ny = 0.0 - ny;
            nz = 0.0 - nz;
          }
          // accumulate emission
          rx += tx * ",
            $scene,
            "[hit,4];
          ry += ty * ",
            $scene,
            "[hit,5];
          rz += tz * ",
            $scene,
            "[hit,6];
          tx *= ",
            $scene,
            "[hit,7];
          ty *= ",
            $scene,
            "[hit,8];
          tz *= ",
            $scene,
            "[hit,9];
          // russian roulette
          if (depth >= rrd) {
            state = (state ^ (state << 13)) & 4294967295;
            state = state ^ (state >> 17);
            state = (state ^ (state << 5)) & 4294967295;
            float rr = (float) (state & 8388607) / 8388608.0;
            if (rr > 0.75) {
              alive = 0;
            } else {
              tx /= 0.75;
              ty /= 0.75;
              tz /= 0.75;
            }
          }
          if (alive == 1) {
            // cosine-weighted hemisphere sample
            state = (state ^ (state << 13)) & 4294967295;
            state = state ^ (state >> 17);
            state = (state ^ (state << 5)) & 4294967295;
            float r1 = (float) (state & 8388607) / 8388608.0 * 6.2831853;
            state = (state ^ (state << 13)) & 4294967295;
            state = state ^ (state >> 17);
            state = (state ^ (state << 5)) & 4294967295;
            float r2 = (float) (state & 8388607) / 8388608.0;
            float r2s = sqrt(r2);
            // basis (w = n)
            float ax = 0.0;
            float ay = 1.0;
            if (fabs(nx) < 0.1) { ax = 1.0; ay = 0.0; }
            float ux = ay * nz;
            float uy = 0.0 - ax * nz;
            float uz = ax * ny - ay * nx;
            float ul = rsqrt(ux * ux + uy * uy + uz * uz);
            ux = ux * ul;
            uy = uy * ul;
            uz = uz * ul;
            float vx = ny * uz - nz * uy;
            float vy = nz * ux - nx * uz;
            float vz = nx * uy - ny * ux;
            float c1 = cos(r1) * r2s;
            float s1 = sin(r1) * r2s;
            float w1 = sqrt(1.0 - r2);
            dx = ux * c1 + vx * s1 + nx * w1;
            dy = uy * c1 + vy * s1 + ny * w1;
            dz = uz * c1 + vz * s1 + nz * w1;
            float dl2 = rsqrt(dx * dx + dy * dy + dz * dz);
            dx = dx * dl2;
            dy = dy * dl2;
            dz = dz * dl2;
            ox = hx + dx * 0.001;
            oy = hy + dy * 0.001;
            oz = hz + dz * 0.001;
          }
        }
      }
    }
    img[i,0] = rx / (float) ns;
    img[i,1] = ry / (float) ns;
    img[i,2] = rz / (float) ns;
  }
"
        )
    };
}

/// Unoptimized kernel: scene read from global memory.
pub const KERNEL_PERFECT: &str = concat!(
    "perfect void raytrace(int npix, int p0, int width, int height, int ns,
    int nsph, int seed, int maxd, int rrd,
    float[npix,3] img, float[nsph,10] spheres) {",
    tracer_body!("spheres"),
    "}"
);

/// "Optimized" `gpu` kernel: scene staged in local memory. As in the
/// paper, this barely helps — divergence dominates.
pub const KERNEL_GPU: &str = concat!(
    "gpu void raytrace(int npix, int p0, int width, int height, int ns,
    int nsph, int seed, int maxd, int rrd,
    float[npix,3] img, float[nsph,10] spheres) {
  foreach (int blk in (npix + 255) / 256 blocks) {
    local float lsph[16,10];
    foreach (int lt in 256 threads) {
      if (lt < nsph) {
        for (int q = 0; q < 10; q++) { lsph[lt,q] = spheres[lt,q]; }
      }
      barrier();
      int npix_inner = min(256, npix - blk * 256);
      int base = blk * 256;",
    // The inner foreach below re-expresses the pixel loop over this block.
    "
      if (lt < npix_inner) {
        int i = base + lt;
        int pid = p0 + i;
        int x = pid % width;
        int y = pid / width;
        int state = (seed ^ (pid * 2654435761)) & 2147483647;
        if (state == 0) { state = 88172645; }
        float rx = 0.0;
        float ry = 0.0;
        float rz = 0.0;
        for (int s = 0; s < ns; s++) {
          state = (state ^ (state << 13)) & 4294967295;
          state = state ^ (state >> 17);
          state = (state ^ (state << 5)) & 4294967295;
          float jx = (float) (state & 8388607) / 8388608.0;
          state = (state ^ (state << 13)) & 4294967295;
          state = state ^ (state >> 17);
          state = (state ^ (state << 5)) & 4294967295;
          float jy = (float) (state & 8388607) / 8388608.0;
          float u = ((float) x + jx) / (float) width - 0.5;
          float v = ((float) y + jy) / (float) height - 0.5;
          float dx = u * 0.5135 * (float) width / (float) height;
          float dy = 0.0 - v * 0.5135 - 0.042612;
          float dz = -1.0;
          float dl = rsqrt(dx * dx + dy * dy + dz * dz);
          dx = dx * dl;
          dy = dy * dl;
          dz = dz * dl;
          float ox = 50.0 + dx * 140.0;
          float oy = 52.0 + dy * 140.0;
          float oz = 295.6 + dz * 140.0;
          float tx = 1.0;
          float ty = 1.0;
          float tz = 1.0;
          int alive = 1;
          for (int depth = 0; depth < maxd && alive == 1; depth++) {
            float best = 1e20;
            int hit = -1;
            for (int sp = 0; sp < nsph; sp++) {
              float opx = lsph[sp,1] - ox;
              float opy = lsph[sp,2] - oy;
              float opz = lsph[sp,3] - oz;
              float b = opx * dx + opy * dy + opz * dz;
              float det = b * b - (opx * opx + opy * opy + opz * opz)
                  + lsph[sp,0] * lsph[sp,0];
              if (det >= 0.0) {
                float sd = sqrt(det);
                float t1 = b - sd;
                float t2 = b + sd;
                float t = 1e20;
                if (t1 > 0.0001) { t = t1; }
                else if (t2 > 0.0001) { t = t2; }
                if (t < best) { best = t; hit = sp; }
              }
            }
            if (hit < 0) {
              alive = 0;
            } else {
              float hx = ox + dx * best;
              float hy = oy + dy * best;
              float hz = oz + dz * best;
              float nx = hx - lsph[hit,1];
              float ny = hy - lsph[hit,2];
              float nz = hz - lsph[hit,3];
              float nl = rsqrt(nx * nx + ny * ny + nz * nz);
              nx = nx * nl;
              ny = ny * nl;
              nz = nz * nl;
              if (nx * dx + ny * dy + nz * dz > 0.0) {
                nx = 0.0 - nx;
                ny = 0.0 - ny;
                nz = 0.0 - nz;
              }
              rx += tx * lsph[hit,4];
              ry += ty * lsph[hit,5];
              rz += tz * lsph[hit,6];
              tx *= lsph[hit,7];
              ty *= lsph[hit,8];
              tz *= lsph[hit,9];
              if (depth >= rrd) {
                state = (state ^ (state << 13)) & 4294967295;
                state = state ^ (state >> 17);
                state = (state ^ (state << 5)) & 4294967295;
                float rr = (float) (state & 8388607) / 8388608.0;
                if (rr > 0.75) {
                  alive = 0;
                } else {
                  tx /= 0.75;
                  ty /= 0.75;
                  tz /= 0.75;
                }
              }
              if (alive == 1) {
                state = (state ^ (state << 13)) & 4294967295;
                state = state ^ (state >> 17);
                state = (state ^ (state << 5)) & 4294967295;
                float r1 = (float) (state & 8388607) / 8388608.0 * 6.2831853;
                state = (state ^ (state << 13)) & 4294967295;
                state = state ^ (state >> 17);
                state = (state ^ (state << 5)) & 4294967295;
                float r2 = (float) (state & 8388607) / 8388608.0;
                float r2s = sqrt(r2);
                float ax = 0.0;
                float ay = 1.0;
                if (fabs(nx) < 0.1) { ax = 1.0; ay = 0.0; }
                float ux = ay * nz;
                float uy = 0.0 - ax * nz;
                float uz = ax * ny - ay * nx;
                float ul = rsqrt(ux * ux + uy * uy + uz * uz);
                ux = ux * ul;
                uy = uy * ul;
                uz = uz * ul;
                float vx = ny * uz - nz * uy;
                float vy = nz * ux - nx * uz;
                float vz = nx * uy - ny * ux;
                float c1 = cos(r1) * r2s;
                float s1 = sin(r1) * r2s;
                float w1 = sqrt(1.0 - r2);
                dx = ux * c1 + vx * s1 + nx * w1;
                dy = uy * c1 + vy * s1 + ny * w1;
                dz = uz * c1 + vz * s1 + nz * w1;
                float dl2 = rsqrt(dx * dx + dy * dy + dz * dz);
                dx = dx * dl2;
                dy = dy * dl2;
                dz = dz * dl2;
                ox = hx + dx * 0.001;
                oy = hy + dy * 0.001;
                oz = hz + dz * 0.001;
              }
            }
          }
        }
        img[i,0] = rx / (float) ns;
        img[i,1] = ry / (float) ns;
        img[i,2] = rz / (float) ns;
      }
    }
  }
}"
);

/// The Cornell-box scene (smallpt's, all-diffuse): 9 spheres ×
/// `(radius, center xyz, emission rgb, color rgb)`.
pub fn cornell_scene() -> Vec<f64> {
    let f = |v: f64| f64::from(v as f32);
    #[rustfmt::skip]
    let spheres: [[f64; 10]; 9] = [
        [1e5, 1e5 + 1.0, 40.8, 81.6,    0.0, 0.0, 0.0,   0.75, 0.25, 0.25],
        [1e5, -1e5 + 99.0, 40.8, 81.6,  0.0, 0.0, 0.0,   0.25, 0.25, 0.75],
        [1e5, 50.0, 40.8, 1e5,          0.0, 0.0, 0.0,   0.75, 0.75, 0.75],
        [1e5, 50.0, 40.8, -1e5 + 170.0, 0.0, 0.0, 0.0,   0.0, 0.0, 0.0],
        [1e5, 50.0, 1e5, 81.6,          0.0, 0.0, 0.0,   0.75, 0.75, 0.75],
        [1e5, 50.0, -1e5 + 81.6, 81.6,  0.0, 0.0, 0.0,   0.75, 0.75, 0.75],
        [16.5, 27.0, 16.5, 47.0,        0.0, 0.0, 0.0,   0.999, 0.999, 0.999],
        [16.5, 73.0, 16.5, 78.0,        0.0, 0.0, 0.0,   0.999, 0.999, 0.999],
        [600.0, 50.0, 681.33, 81.6,     12.0, 12.0, 12.0, 0.0, 0.0, 0.0],
    ];
    spheres.iter().flatten().map(|&v| f(v)).collect()
}

/// Problem description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaytracerProblem {
    pub width: u64,
    pub height: u64,
    /// Random samples per pixel.
    pub samples: u64,
    pub seed: i64,
}

impl RaytracerProblem {
    /// The paper's measurement: the Cornell scene at 16384×8192 with 500
    /// samples (Sec. V-B1).
    pub fn paper() -> RaytracerProblem {
        RaytracerProblem {
            width: 16384,
            height: 8192,
            samples: 500,
            seed: 1,
        }
    }

    pub fn pixels(&self) -> u64 {
        self.width * self.height
    }

    /// Estimated flop count (consistent estimate for GFLOPS reporting).
    pub fn flops(&self) -> f64 {
        self.pixels() as f64 * self.samples as f64 * AVG_BOUNCES * 9.0 * FLOPS_PER_SPHERE_TEST
    }

    pub fn job_flops(&self, pixels: u64) -> f64 {
        pixels as f64 * self.samples as f64 * AVG_BOUNCES * 9.0 * FLOPS_PER_SPHERE_TEST
    }
}

/// Output: rendered pixel segments.
#[derive(Debug, Clone, PartialEq)]
pub struct RtSeg {
    pub p0: u64,
    pub count: u64,
    /// RGB data (Real mode only).
    pub rgb: Option<Vec<f64>>,
}

/// The raytracer application.
pub struct RaytracerApp {
    pub problem: RaytracerProblem,
    pub mode: AppMode,
    pub node_grain_pixels: u64,
    pub device_jobs: u64,
    pub cpu_model: CpuLeafModel,
    scene: Arc<Vec<f64>>,
}

impl RaytracerApp {
    pub fn new(
        problem: RaytracerProblem,
        mode: AppMode,
        node_grain_pixels: u64,
        device_jobs: u64,
    ) -> RaytracerApp {
        RaytracerApp {
            problem,
            mode,
            node_grain_pixels,
            device_jobs,
            cpu_model: CpuLeafModel::IRREGULAR,
            scene: Arc::new(cornell_scene()),
        }
    }

    pub fn registry(set: KernelSet) -> KernelRegistry {
        crate::common::build_registry(&[KERNEL_PERFECT], &[KERNEL_GPU], set)
    }

    fn ns_cal(&self) -> u64 {
        self.problem.samples.min(4)
    }

    /// Native CPU path tracer with the same algorithm (used by `leafCPU`
    /// and the Satin runs). Not bit-identical to the kernels (different
    /// float paths), but statistically equivalent.
    pub fn cpu_trace(&self, p0: u64, count: u64) -> Vec<f64> {
        let pr = &self.problem;
        let scene = &self.scene;
        let mut out = vec![0.0f64; count as usize * 3];
        for i in 0..count {
            let pid = p0 + i;
            let x = (pid % pr.width) as f64;
            let y = (pid / pr.width) as f64;
            let mut state: i64 = (pr.seed ^ (pid as i64).wrapping_mul(2654435761)) & 2147483647;
            if state == 0 {
                state = 88172645;
            }
            let mut rnd = move || -> f64 {
                state = (state ^ (state << 13)) & 4294967295;
                state ^= ((state as u64) >> 17) as i64;
                state = (state ^ (state << 5)) & 4294967295;
                (state & 8388607) as f64 / 8388608.0
            };
            let (mut rx, mut ry, mut rz) = (0.0, 0.0, 0.0);
            for _ in 0..pr.samples {
                let u = (x + rnd()) / pr.width as f64 - 0.5;
                let v = (y + rnd()) / pr.height as f64 - 0.5;
                let mut d = [
                    u * 0.5135 * pr.width as f64 / pr.height as f64,
                    -v * 0.5135 - 0.042612,
                    -1.0,
                ];
                let dl = 1.0 / (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                d.iter_mut().for_each(|c| *c *= dl);
                // As in smallpt: start 140 units forward, inside the box.
                let (mut ox, mut oy, mut oz) = (
                    50.0 + d[0] * 140.0,
                    52.0 + d[1] * 140.0,
                    295.6 + d[2] * 140.0,
                );
                let (mut tx, mut ty, mut tz) = (1.0, 1.0, 1.0);
                for depth in 0..MAX_DEPTH {
                    // nearest sphere
                    let mut best = 1e20;
                    let mut hit = usize::MAX;
                    for sp in 0..9 {
                        let s = &scene[sp * 10..sp * 10 + 10];
                        let op = [s[1] - ox, s[2] - oy, s[3] - oz];
                        let b = op[0] * d[0] + op[1] * d[1] + op[2] * d[2];
                        let det =
                            b * b - (op[0] * op[0] + op[1] * op[1] + op[2] * op[2]) + s[0] * s[0];
                        if det >= 0.0 {
                            let sd = det.sqrt();
                            let t = if b - sd > 1e-4 {
                                b - sd
                            } else if b + sd > 1e-4 {
                                b + sd
                            } else {
                                1e20
                            };
                            if t < best {
                                best = t;
                                hit = sp;
                            }
                        }
                    }
                    if hit == usize::MAX {
                        break;
                    }
                    let s = &scene[hit * 10..hit * 10 + 10];
                    let h = [ox + d[0] * best, oy + d[1] * best, oz + d[2] * best];
                    let mut n = [h[0] - s[1], h[1] - s[2], h[2] - s[3]];
                    let nl = 1.0 / (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
                    n.iter_mut().for_each(|c| *c *= nl);
                    if n[0] * d[0] + n[1] * d[1] + n[2] * d[2] > 0.0 {
                        n.iter_mut().for_each(|c| *c = -*c);
                    }
                    rx += tx * s[4];
                    ry += ty * s[5];
                    rz += tz * s[6];
                    tx *= s[7];
                    ty *= s[8];
                    tz *= s[9];
                    if depth >= RR_DEPTH {
                        if rnd() > RR_KEEP {
                            break;
                        }
                        tx /= RR_KEEP;
                        ty /= RR_KEEP;
                        tz /= RR_KEEP;
                    }
                    // cosine hemisphere
                    let r1 = rnd() * std::f64::consts::TAU;
                    let r2 = rnd();
                    let r2s = r2.sqrt();
                    let a = if n[0].abs() < 0.1 {
                        [1.0, 0.0]
                    } else {
                        [0.0, 1.0]
                    };
                    let mut uvec = [a[1] * n[2], -a[0] * n[2], a[0] * n[1] - a[1] * n[0]];
                    let ul =
                        1.0 / (uvec[0] * uvec[0] + uvec[1] * uvec[1] + uvec[2] * uvec[2]).sqrt();
                    uvec.iter_mut().for_each(|c| *c *= ul);
                    let vvec = [
                        n[1] * uvec[2] - n[2] * uvec[1],
                        n[2] * uvec[0] - n[0] * uvec[2],
                        n[0] * uvec[1] - n[1] * uvec[0],
                    ];
                    let (c1, s1, w1) = (r1.cos() * r2s, r1.sin() * r2s, (1.0 - r2).sqrt());
                    for k in 0..3 {
                        d[k] = uvec[k] * c1 + vvec[k] * s1 + n[k] * w1;
                    }
                    let dl2 = 1.0 / (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                    d.iter_mut().for_each(|c| *c *= dl2);
                    ox = h[0] + d[0] * 1e-3;
                    oy = h[1] + d[1] * 1e-3;
                    oz = h[2] + d[2] * 1e-3;
                }
            }
            out[i as usize * 3] = rx / pr.samples as f64;
            out[i as usize * 3 + 1] = ry / pr.samples as f64;
            out[i as usize * 3 + 2] = rz / pr.samples as f64;
        }
        out
    }

    fn cpu_leaf_impl(&self, lo: u64, hi: u64) -> (SimTime, Vec<RtSeg>) {
        let t = self.cpu_model.time(self.problem.job_flops(hi - lo));
        let rgb = match self.mode {
            AppMode::Real => Some(self.cpu_trace(lo, hi - lo)),
            AppMode::Phantom => None,
        };
        (
            t,
            vec![RtSeg {
                p0: lo,
                count: hi - lo,
                rgb,
            }],
        )
    }

    /// Satin (CPU-only) leaf runtime.
    #[allow(clippy::type_complexity)]
    pub fn satin_runtime(
        self: &Arc<Self>,
    ) -> CpuLeafRuntime<impl FnMut(usize, &(u64, u64), SimTime) -> (SimTime, Vec<RtSeg>)> {
        let app = Arc::clone(self);
        CpuLeafRuntime(move |_node, &(lo, hi): &(u64, u64), _now| app.cpu_leaf_impl(lo, hi))
    }
}

impl ClusterApp for RaytracerApp {
    type Input = (u64, u64);
    type Output = Vec<RtSeg>;

    fn step(&self, &(lo, hi): &(u64, u64)) -> DcStep<(u64, u64)> {
        match binary_divide(lo, hi, self.node_grain_pixels) {
            Some(ch) => DcStep::Divide(ch),
            None => DcStep::Leaf,
        }
    }

    fn combine(&self, _i: &(u64, u64), children: Vec<Vec<RtSeg>>) -> Vec<RtSeg> {
        let mut out: Vec<RtSeg> = children.into_iter().flatten().collect();
        out.sort_by_key(|s| s.p0);
        out
    }

    fn input_bytes(&self, _i: &(u64, u64)) -> u64 {
        // A job input is just the pixel range + scene (tiny): the
        // raytracer's communication is light (Table II).
        512
    }

    fn output_bytes(&self, segs: &Vec<RtSeg>) -> u64 {
        segs.iter().map(|s| s.count * 12).sum()
    }
}

impl CashmereApp for RaytracerApp {
    fn device_jobs(&self, &(lo, hi): &(u64, u64)) -> Vec<(u64, u64)> {
        split_range(lo, hi, self.device_jobs)
    }

    fn kernel_call(&self, &(lo, hi): &(u64, u64)) -> KernelCall {
        let pr = &self.problem;
        let npix = hi - lo;
        let (ns, extra_scale) = match self.mode {
            AppMode::Real => (pr.samples, 1.0),
            AppMode::Phantom => (self.ns_cal(), pr.samples as f64 / self.ns_cal() as f64),
        };
        // In phantom mode the pixel offset only perturbs the per-pixel RNG;
        // pinning it keeps every equally-sized job one stats-cache shape
        // instead of re-interpreting the kernel per job.
        let p0 = match self.mode {
            AppMode::Real => lo,
            AppMode::Phantom => 0,
        };
        let img = match self.mode {
            AppMode::Real => ArrayArg::zeros(ElemTy::Float, &[npix, 3]),
            AppMode::Phantom => ArrayArg::phantom(ElemTy::Float, &[npix, 3]),
        };
        let args = vec![
            ArgValue::Int(npix as i64),
            ArgValue::Int(p0 as i64),
            ArgValue::Int(pr.width as i64),
            ArgValue::Int(pr.height as i64),
            ArgValue::Int(ns as i64),
            ArgValue::Int(9),
            ArgValue::Int(pr.seed),
            ArgValue::Int(MAX_DEPTH),
            ArgValue::Int(RR_DEPTH),
            ArgValue::Array(img),
            ArgValue::Array(ArrayArg::float(&[9, 10], self.scene.as_ref().clone())),
        ];
        let mut call = KernelCall::from_args("raytrace", args, &[9]);
        call.h2d_bytes = 9 * 10 * 4 + 64;
        call.d2h_bytes = npix * 12;
        call.extra_scale = extra_scale;
        call
    }

    fn job_output(&self, &(lo, hi): &(u64, u64), args: Vec<ArgValue>) -> Vec<RtSeg> {
        let rgb = match self.mode {
            AppMode::Real => Some(args[9].clone().array().as_f64().to_vec()),
            AppMode::Phantom => None,
        };
        vec![RtSeg {
            p0: lo,
            count: hi - lo,
            rgb,
        }]
    }

    fn leaf_cpu(&self, &(lo, hi): &(u64, u64)) -> (SimTime, Vec<RtSeg>) {
        self.cpu_leaf_impl(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere::{build_cluster, ClusterSpec, RuntimeConfig};
    use cashmere_satin::SimConfig;

    fn small() -> RaytracerProblem {
        RaytracerProblem {
            width: 32,
            height: 24,
            samples: 8,
            seed: 7,
        }
    }

    fn render(set: KernelSet, device: &str) -> Vec<f64> {
        let pr = small();
        let app = RaytracerApp::new(pr, AppMode::Real, 256, 2);
        let mut cluster = build_cluster(
            app,
            RaytracerApp::registry(set),
            &ClusterSpec::homogeneous(1, device),
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let segs = cluster.run_root((0, pr.pixels()));
        let mut out = Vec::new();
        for s in &segs {
            assert_eq!(out.len() as u64, s.p0 * 3);
            out.extend_from_slice(s.rgb.as_ref().unwrap());
        }
        out
    }

    #[test]
    fn kernels_compile() {
        assert_eq!(
            RaytracerApp::registry(KernelSet::Optimized)
                .versions_of("raytrace")
                .len(),
            2
        );
    }

    #[test]
    fn renders_a_plausible_cornell_box() {
        let img = render(KernelSet::Unoptimized, "gtx480");
        let pr = small();
        assert_eq!(img.len() as u64, pr.pixels() * 3);
        assert!(
            img.iter().all(|&v| (0.0..=20.0).contains(&v)),
            "radiance bounded"
        );
        let mean: f64 = img.iter().sum::<f64>() / img.len() as f64;
        assert!(mean > 0.05, "scene is lit (mean {mean})");
        // The left wall is red-ish, the right wall blue-ish: compare red
        // and blue channel sums over the left/right image halves.
        let w = pr.width as usize;
        let (mut left_r, mut left_b, mut right_r, mut right_b) = (0.0, 0.0, 0.0, 0.0);
        for y in 0..pr.height as usize {
            for x in 0..w {
                let p = (y * w + x) * 3;
                if x < w / 4 {
                    left_r += img[p];
                    left_b += img[p + 2];
                } else if x >= w - w / 4 {
                    right_r += img[p];
                    right_b += img[p + 2];
                }
            }
        }
        assert!(
            left_r / left_b > right_r / right_b,
            "left half redder than right: {left_r}/{left_b} vs {right_r}/{right_b}"
        );
    }

    #[test]
    fn deterministic_rendering() {
        let a = render(KernelSet::Unoptimized, "gtx480");
        let b = render(KernelSet::Unoptimized, "gtx480");
        assert_eq!(a, b);
    }

    #[test]
    fn optimized_version_statistically_matches() {
        // Same RNG stream, but local-memory f32 rounding can flip individual
        // path decisions — compare image means, not pixels.
        let a = render(KernelSet::Unoptimized, "gtx480");
        let b = render(KernelSet::Optimized, "gtx480");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (ma, mb) = (mean(&a), mean(&b));
        assert!((ma - mb).abs() / ma < 0.05, "means differ: {ma} vs {mb}");
    }

    #[test]
    fn cpu_reference_statistically_matches_kernel() {
        let pr = small();
        let app = RaytracerApp::new(pr, AppMode::Real, 4096, 1);
        let cpu = app.cpu_trace(0, pr.pixels());
        let dev = render(KernelSet::Unoptimized, "gtx480");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mc, md) = (mean(&cpu), mean(&dev));
        assert!((mc - md).abs() / mc < 0.1, "{mc} vs {md}");
    }

    #[test]
    fn kernel_diverges_heavily() {
        // The whole point of the raytracer: measure the divergence the
        // analyzer sees at paper scale.
        use cashmere_devsim::{ExecMode, SimDevice};
        let h = cashmere_hwdesc::standard_hierarchy();
        let d = SimDevice::by_name(&h, "gtx480").unwrap();
        let reg = RaytracerApp::registry(KernelSet::Unoptimized);
        let ck = reg.select("raytrace", d.level).unwrap();
        let app = RaytracerApp::new(small(), AppMode::Phantom, 256, 1);
        let call = app.kernel_call(&(0, 768));
        let run = d
            .run_kernel(&h, ck, call.args, ExecMode::sampled())
            .unwrap();
        assert!(
            run.stats.divergence_rate() > 0.10,
            "divergence {}",
            run.stats.divergence_rate()
        );
        assert!(run.stats.lane_efficiency() < 0.9);
    }

    #[test]
    fn optimization_gains_little_at_scale() {
        // Paper Fig. 6: raytracer optimized ≈ unoptimized.
        let time_with = |set: KernelSet| {
            let pr = RaytracerProblem {
                width: 1024,
                height: 512,
                samples: 64,
                seed: 3,
            };
            let app = RaytracerApp::new(pr, AppMode::Phantom, 65_536, 8);
            let mut cluster = build_cluster(
                app,
                RaytracerApp::registry(set),
                &ClusterSpec::homogeneous(2, "gtx480"),
                SimConfig {
                    max_concurrent_leaves: 2,
                    ..SimConfig::default()
                },
                RuntimeConfig::default(),
            )
            .unwrap();
            let _ = cluster.run_root((0, pr.pixels()));
            cluster.report().makespan.as_secs_f64()
        };
        let unopt = time_with(KernelSet::Unoptimized);
        let opt = time_with(KernelSet::Optimized);
        let factor = unopt / opt;
        assert!(
            (0.7..1.6).contains(&factor),
            "optimizing the raytracer should barely help: {factor:.2}x"
        );
    }
}
