//! Matrix multiplication — the paper's regular, compute- *and*
//! communication-intensive application (Table II).
//!
//! `C[n,m] += A[n,p] × B[p,m]`, single precision, 32768³ at paper scale.
//! The divide-and-conquer splits `C`'s rows into node-level jobs; each
//! node-level leaf expands into `device_jobs` *column panels* (the paper's
//! "sets of 8 jobs"). A device job therefore ships its `A` row stripe plus
//! one `B` column panel — the only decomposition that fits a 32768² `B`
//! (4 GiB) through 1–6 GiB cards. `B` itself is broadcast once at startup
//! (excluded from the measured iterations, as in the paper's setup);
//! stolen node jobs carry their `A` rows and return their `C` rows, the
//! `Θ(n²)` traffic that makes matmul the hardest application to scale
//! (Sec. V-B2).
//!
//! Kernel versions:
//! * `perfect` — the unoptimized kernel, verbatim the paper's Fig. 3;
//! * `gpu` — 16×16 local-memory tiling with barriers;
//! * `mic` — 16 `C` rows per core with `B` staged through local memory.

use crate::common::{binary_divide, split_range, AppMode, CpuLeafModel, KernelSet};
use cashmere::{CashmereApp, KernelCall, KernelRegistry};
use cashmere_des::SimTime;
use cashmere_mcl::value::{ArgValue, ArrayArg};
use cashmere_mcl::ElemTy;
use cashmere_satin::{ClusterApp, CpuLeafRuntime, DcStep};
use std::sync::Arc;

/// The paper's Fig. 3 kernel, verbatim (modulo whitespace).
pub const KERNEL_PERFECT: &str = "\
perfect void matmul(int n, int m, int p,
    float[n,m] c,
    float[n,p] a, float[p,m] b) {
  foreach (int i in n threads) {
    foreach (int j in m threads) {
      float sum = 0.0;
      for (int k = 0; k < p; k++) {
        sum += a[i,k] * b[k,j];
      }
      c[i,j] += sum;
    }
  }
}";

/// Optimized `gpu` version: 16×64 blocks, tiles staged through local
/// memory, each thread register-blocks 4 output columns (the classic SGEMM
/// shape — amortizes loads and indexing over 8 flops per inner step).
pub const KERNEL_GPU: &str = "\
gpu void matmul(int n, int m, int p,
    float[n,m] c, float[n,p] a, float[p,m] b) {
  foreach (int bi in (n + 15) / 16 blocks) {
    foreach (int bj in (m + 63) / 64 blocks) {
      local float ta[16,16];
      local float tb[16,64];
      foreach (int t in 256 threads) {
        int ti = t / 16;
        int tj = t % 16;
        int tj4 = tj * 4;
        int row = bi * 16 + ti;
        float acc0 = 0.0;
        float acc1 = 0.0;
        float acc2 = 0.0;
        float acc3 = 0.0;
        int ntiles = (p + 15) / 16;
        for (int tile = 0; tile < ntiles; tile++) {
          int ka = tile * 16 + tj;
          if (row < n && ka < p) { ta[ti,tj] = a[row,ka]; } else { ta[ti,tj] = 0.0; }
          for (int q = 0; q < 4; q++) {
            int idx = q * 256 + t;
            int kr = idx / 64;
            int kc = idx % 64;
            int gk = tile * 16 + kr;
            int gc = bj * 64 + kc;
            if (gk < p && gc < m) { tb[kr,kc] = b[gk,gc]; } else { tb[kr,kc] = 0.0; }
          }
          barrier();
          for (int k = 0; k < 16; k++) {
            float av = ta[ti,k];
            acc0 += av * tb[k, tj4];
            acc1 += av * tb[k, tj4 + 1];
            acc2 += av * tb[k, tj4 + 2];
            acc3 += av * tb[k, tj4 + 3];
          }
          barrier();
        }
        int col = bj * 64 + tj4;
        if (row < n && col < m) { c[row,col] += acc0; }
        if (row < n && col + 1 < m) { c[row,col + 1] += acc1; }
        if (row < n && col + 2 < m) { c[row,col + 2] += acc2; }
        if (row < n && col + 3 < m) { c[row,col + 3] += acc3; }
      }
    }
  }
}";

/// Optimized `mic` version: 16 rows of `C` per core, `B` staged through
/// local memory in 64×64 tiles (16-fold reuse), 64 logical lanes over
/// contiguous columns.
pub const KERNEL_MIC: &str = "\
mic void matmul(int n, int m, int p,
    float[n,m] c, float[n,p] a, float[p,m] b) {
  foreach (int rb in (n + 15) / 16 cores) {
    local float tb[64,64];
    foreach (int t in 64 threads) {
      float acc[16];
      int jblocks = (m + 63) / 64;
      for (int jj = 0; jj < jblocks; jj++) {
        int j = jj * 64 + t;
        for (int r = 0; r < 16; r++) { acc[r] = 0.0; }
        int ktiles = (p + 63) / 64;
        for (int kt = 0; kt < ktiles; kt++) {
          for (int kk = 0; kk < 64; kk++) {
            int k = kt * 64 + kk;
            if (k < p && j < m) { tb[kk,t] = b[k,j]; } else { tb[kk,t] = 0.0; }
          }
          barrier();
          for (int kk = 0; kk < 64; kk++) {
            int k = kt * 64 + kk;
            if (k < p) {
              for (int r = 0; r < 16; r++) {
                int row = rb * 16 + r;
                if (row < n) {
                  acc[r] += a[row,k] * tb[kk,t];
                }
              }
            }
          }
          barrier();
        }
        if (j < m) {
          for (int r = 0; r < 16; r++) {
            int row = rb * 16 + r;
            if (row < n) { c[row,j] += acc[r]; }
          }
        }
      }
    }
  }
}";

/// Problem dimensions: `C[n,m] = A[n,p] × B[p,m]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulProblem {
    pub n: u64,
    pub m: u64,
    pub p: u64,
}

impl MatmulProblem {
    /// The paper's evaluation problem: two 32768×32768 matrices (Sec. V-B2).
    pub fn paper() -> MatmulProblem {
        MatmulProblem {
            n: 32768,
            m: 32768,
            p: 32768,
        }
    }

    pub fn square(n: u64) -> MatmulProblem {
        MatmulProblem { n, m: n, p: n }
    }

    /// Algorithmic flop count (`2·n·m·p`).
    pub fn flops(&self) -> f64 {
        2.0 * self.n as f64 * self.m as f64 * self.p as f64
    }

    /// Flops of a block of `rows × cols` elements of `C`.
    pub fn block_flops(&self, rows: u64, cols: u64) -> f64 {
        2.0 * rows as f64 * cols as f64 * self.p as f64
    }
}

/// A rectangular block of `C`: rows `[r0, r1)` × columns `[c0, c1)`.
/// Node-level jobs span all columns; device jobs are column panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatJob {
    pub r0: u64,
    pub r1: u64,
    pub c0: u64,
    pub c1: u64,
}

impl MatJob {
    pub fn rows(&self) -> u64 {
        self.r1 - self.r0
    }

    pub fn cols(&self) -> u64 {
        self.c1 - self.c0
    }
}

/// Real input matrices (row-major `f64` holding `f32` values).
#[derive(Debug)]
pub struct MatData {
    pub a: Vec<f64>,
    pub b: Vec<f64>,
}

impl MatData {
    /// Deterministic pseudo-random matrices (f32-exact values).
    pub fn generate(pr: &MatmulProblem, seed: u64) -> MatData {
        let gen = |len: u64, salt: u64| -> Vec<f64> {
            (0..len)
                .map(|i| {
                    let mut x = (i ^ salt ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    x ^= x >> 31;
                    f64::from((((x % 1000) as f64 / 500.0) - 1.0) as f32)
                })
                .collect()
        };
        MatData {
            a: gen(pr.n * pr.p, 0xA),
            b: gen(pr.p * pr.m, 0xB),
        }
    }

    /// Column panel `[c0, c1)` of `B`, row-major `p × (c1-c0)`.
    pub fn b_panel(&self, pr: &MatmulProblem, c0: u64, c1: u64) -> Vec<f64> {
        let m = pr.m as usize;
        let cols = (c1 - c0) as usize;
        let mut out = Vec::with_capacity(pr.p as usize * cols);
        for k in 0..pr.p as usize {
            out.extend_from_slice(&self.b[k * m + c0 as usize..k * m + c1 as usize]);
        }
        out
    }

    /// Reference CPU multiplication of a block (with f32 rounding like the
    /// device path), row-major `rows × cols`.
    pub fn reference_block(&self, pr: &MatmulProblem, job: &MatJob) -> Vec<f64> {
        let (m, p) = (pr.m as usize, pr.p as usize);
        let cols = job.cols() as usize;
        let mut out = vec![0.0f64; job.rows() as usize * cols];
        for (r, i) in (job.r0..job.r1).enumerate() {
            for (cc, j) in (job.c0 as usize..job.c1 as usize).enumerate() {
                let mut sum = 0.0f64;
                for k in 0..p {
                    sum += self.a[i as usize * p + k] * self.b[k * m + j];
                }
                out[r * cols + cc] = f64::from(sum as f32);
            }
        }
        out
    }

    /// Full reference rows (all columns).
    pub fn reference_rows(&self, pr: &MatmulProblem, lo: u64, hi: u64) -> Vec<f64> {
        self.reference_block(
            pr,
            &MatJob {
                r0: lo,
                r1: hi,
                c0: 0,
                c1: pr.m,
            },
        )
    }
}

/// Output: computed blocks of `C` (`data` present only in Real mode,
/// row-major `rows × cols`).
#[derive(Debug, Clone, PartialEq)]
pub struct Seg {
    pub row0: u64,
    pub rows: u64,
    pub col0: u64,
    pub cols: u64,
    pub data: Option<Vec<f64>>,
}

/// Assemble blocks into the full row-major `n × m` matrix (Real mode).
pub fn assemble(segs: &[Seg], n: u64, m: u64) -> Vec<f64> {
    let mut out = vec![0.0f64; (n * m) as usize];
    for s in segs {
        let data = s.data.as_ref().expect("real-mode segments carry data");
        for r in 0..s.rows as usize {
            let src = &data[r * s.cols as usize..(r + 1) * s.cols as usize];
            let at = (s.row0 as usize + r) * m as usize + s.col0 as usize;
            out[at..at + s.cols as usize].copy_from_slice(src);
        }
    }
    out
}

/// The matmul application.
pub struct MatmulApp {
    pub problem: MatmulProblem,
    pub mode: AppMode,
    /// Node-level jobs stop dividing at this many rows.
    pub node_grain_rows: u64,
    /// Device jobs (column panels) per node-level leaf (the paper uses 8).
    pub device_jobs: u64,
    pub cpu_model: CpuLeafModel,
    data: Option<Arc<MatData>>,
}

impl MatmulApp {
    pub fn phantom(problem: MatmulProblem, node_grain_rows: u64, device_jobs: u64) -> MatmulApp {
        MatmulApp {
            problem,
            mode: AppMode::Phantom,
            node_grain_rows,
            device_jobs,
            cpu_model: CpuLeafModel::REGULAR,
            data: None,
        }
    }

    pub fn real(
        problem: MatmulProblem,
        node_grain_rows: u64,
        device_jobs: u64,
        seed: u64,
    ) -> MatmulApp {
        MatmulApp {
            data: Some(Arc::new(MatData::generate(&problem, seed))),
            problem,
            mode: AppMode::Real,
            node_grain_rows,
            device_jobs,
            cpu_model: CpuLeafModel::REGULAR,
        }
    }

    /// The input matrices (Real mode only).
    pub fn data_ref(&self) -> Option<&Arc<MatData>> {
        self.data.as_ref()
    }

    /// Kernel registry for this application.
    pub fn registry(set: KernelSet) -> KernelRegistry {
        crate::common::build_registry(&[KERNEL_PERFECT], &[KERNEL_GPU, KERNEL_MIC], set)
    }

    /// Calibrated inner dimension for phantom runs.
    fn p_cal(&self) -> u64 {
        self.problem.p.min(256)
    }

    /// A full-width job over rows `[lo, hi)`.
    pub fn row_job(&self, lo: u64, hi: u64) -> MatJob {
        MatJob {
            r0: lo,
            r1: hi,
            c0: 0,
            c1: self.problem.m,
        }
    }

    fn cpu_compute(&self, job: &MatJob) -> (SimTime, Vec<Seg>) {
        let t = self
            .cpu_model
            .time(self.problem.block_flops(job.rows(), job.cols()));
        let data = match (&self.mode, &self.data) {
            (AppMode::Real, Some(d)) => Some(d.reference_block(&self.problem, job)),
            _ => None,
        };
        (
            t,
            vec![Seg {
                row0: job.r0,
                rows: job.rows(),
                col0: job.c0,
                cols: job.cols(),
                data,
            }],
        )
    }

    /// A Satin (CPU-only) leaf runtime for the same division structure.
    #[allow(clippy::type_complexity)]
    pub fn satin_runtime(
        &self,
    ) -> CpuLeafRuntime<impl FnMut(usize, &MatJob, SimTime) -> (SimTime, Vec<Seg>)> {
        let problem = self.problem;
        let mode = self.mode;
        let data = self.data.clone();
        let cpu = self.cpu_model;
        CpuLeafRuntime(move |_node, job: &MatJob, _now| {
            let t = cpu.time(problem.block_flops(job.rows(), job.cols()));
            let seg_data = match (&mode, &data) {
                (AppMode::Real, Some(d)) => Some(d.reference_block(&problem, job)),
                _ => None,
            };
            (
                t,
                vec![Seg {
                    row0: job.r0,
                    rows: job.rows(),
                    col0: job.c0,
                    cols: job.cols(),
                    data: seg_data,
                }],
            )
        })
    }
}

impl ClusterApp for MatmulApp {
    type Input = MatJob;
    type Output = Vec<Seg>;

    fn step(&self, job: &MatJob) -> DcStep<MatJob> {
        match binary_divide(job.r0, job.r1, self.node_grain_rows) {
            Some(ch) => DcStep::Divide(
                ch.into_iter()
                    .map(|(lo, hi)| MatJob {
                        r0: lo,
                        r1: hi,
                        ..*job
                    })
                    .collect(),
            ),
            None => DcStep::Leaf,
        }
    }

    fn combine(&self, _i: &MatJob, children: Vec<Vec<Seg>>) -> Vec<Seg> {
        let mut out: Vec<Seg> = children.into_iter().flatten().collect();
        out.sort_by_key(|s| (s.row0, s.col0));
        out
    }

    fn input_bytes(&self, job: &MatJob) -> u64 {
        // A stolen job ships its A row stripe; B was broadcast at startup.
        job.rows() * self.problem.p * 4 + 64
    }

    fn output_bytes(&self, segs: &Vec<Seg>) -> u64 {
        segs.iter().map(|s| s.rows * s.cols * 4).sum()
    }

    fn combine_cost(&self, job: &MatJob) -> SimTime {
        // Assembling result rows at ~2 GB/s.
        SimTime::from_secs_f64(job.rows() as f64 * job.cols() as f64 * 4.0 / 2e9)
    }
}

impl CashmereApp for MatmulApp {
    fn device_jobs(&self, job: &MatJob) -> Vec<MatJob> {
        split_range(job.c0, job.c1, self.device_jobs)
            .into_iter()
            .map(|(c0, c1)| MatJob { c0, c1, ..*job })
            .collect()
    }

    fn kernel_call(&self, job: &MatJob) -> KernelCall {
        let pr = &self.problem;
        let (rows, cols) = (job.rows(), job.cols());
        let p = pr.p;
        let (args, extra_scale) = match (&self.mode, &self.data) {
            (AppMode::Real, Some(d)) => {
                let a_rows: Vec<f64> = d.a[(job.r0 * p) as usize..(job.r1 * p) as usize].to_vec();
                let b_panel = d.b_panel(pr, job.c0, job.c1);
                (
                    vec![
                        ArgValue::Int(rows as i64),
                        ArgValue::Int(cols as i64),
                        ArgValue::Int(p as i64),
                        ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[rows, cols])),
                        ArgValue::Array(ArrayArg::float(&[rows, p], a_rows)),
                        ArgValue::Array(ArrayArg::float(&[p, cols], b_panel)),
                    ],
                    1.0,
                )
            }
            _ => {
                let p_cal = self.p_cal();
                (
                    vec![
                        ArgValue::Int(rows as i64),
                        ArgValue::Int(cols as i64),
                        ArgValue::Int(p_cal as i64),
                        ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[rows, cols])),
                        ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[rows, p_cal])),
                        ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[p_cal, cols])),
                    ],
                    p as f64 / self.p_cal() as f64,
                )
            }
        };
        let mut call = KernelCall::from_args("matmul", args, &[3]);
        // Transfer sizes reflect the *real* problem: the C block in/out, the
        // A row stripe and the B column panel in.
        call.h2d_bytes = (rows * cols + rows * p + p * cols) * 4;
        call.d2h_bytes = rows * cols * 4;
        call.extra_scale = extra_scale;
        call
    }

    fn job_output(&self, job: &MatJob, args: Vec<ArgValue>) -> Vec<Seg> {
        let data = match self.mode {
            AppMode::Real => Some(args[3].clone().array().as_f64().to_vec()),
            AppMode::Phantom => None,
        };
        vec![Seg {
            row0: job.r0,
            rows: job.rows(),
            col0: job.c0,
            cols: job.cols(),
            data,
        }]
    }

    fn leaf_cpu(&self, job: &MatJob) -> (SimTime, Vec<Seg>) {
        self.cpu_compute(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere::{build_cluster, ClusterSpec, RuntimeConfig};
    use cashmere_satin::{ClusterSim, SimConfig};

    fn check_against(reference: &[f64], got: &[f64]) {
        assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(reference) {
            assert!((g - r).abs() < 1e-3, "{g} vs {r}");
        }
    }

    #[test]
    fn kernels_compile_in_both_sets() {
        let un = MatmulApp::registry(KernelSet::Unoptimized);
        assert_eq!(un.versions_of("matmul").len(), 1);
        let opt = MatmulApp::registry(KernelSet::Optimized);
        assert_eq!(opt.versions_of("matmul").len(), 3);
    }

    #[test]
    fn real_run_matches_reference_unoptimized() {
        let pr = MatmulProblem {
            n: 48,
            m: 20,
            p: 36,
        };
        let app = MatmulApp::real(pr, 16, 4, 7);
        let root = app.row_job(0, pr.n);
        let reference = app.data_ref().unwrap().reference_rows(&pr, 0, pr.n);
        let mut cluster = build_cluster(
            app,
            MatmulApp::registry(KernelSet::Unoptimized),
            &ClusterSpec::homogeneous(2, "gtx480"),
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let segs = cluster.run_root(root);
        check_against(&reference, &assemble(&segs, pr.n, pr.m));
    }

    #[test]
    fn real_run_matches_reference_optimized_tiled() {
        // Sizes deliberately not multiples of 16 to stress the tile guards.
        let pr = MatmulProblem {
            n: 37,
            m: 29,
            p: 23,
        };
        let app = MatmulApp::real(pr, 37, 3, 3);
        let root = app.row_job(0, pr.n);
        let reference = app.data_ref().unwrap().reference_rows(&pr, 0, pr.n);
        let mut cluster = build_cluster(
            app,
            MatmulApp::registry(KernelSet::Optimized),
            &ClusterSpec::homogeneous(1, "gtx480"),
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let segs = cluster.run_root(root);
        check_against(&reference, &assemble(&segs, pr.n, pr.m));
    }

    #[test]
    fn real_run_on_heterogeneous_devices_still_correct() {
        let pr = MatmulProblem {
            n: 64,
            m: 24,
            p: 24,
        };
        let app = MatmulApp::real(pr, 16, 2, 9);
        let root = app.row_job(0, pr.n);
        let reference = app.data_ref().unwrap().reference_rows(&pr, 0, pr.n);
        let spec = ClusterSpec {
            node_devices: vec![
                vec!["gtx480".to_string()],
                vec!["k20".to_string(), "xeon_phi".to_string()],
                vec!["hd7970".to_string()],
            ],
        };
        let mut cluster = build_cluster(
            app,
            MatmulApp::registry(KernelSet::Optimized),
            &spec,
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let segs = cluster.run_root(root);
        check_against(&reference, &assemble(&segs, pr.n, pr.m));
    }

    #[test]
    fn satin_variant_matches_reference() {
        let pr = MatmulProblem {
            n: 32,
            m: 16,
            p: 16,
        };
        let app = MatmulApp::real(pr, 8, 1, 5);
        let root = app.row_job(0, pr.n);
        let reference = app.data_ref().unwrap().reference_rows(&pr, 0, pr.n);
        let rt = app.satin_runtime();
        let mut cluster = ClusterSim::new(
            app,
            rt,
            SimConfig {
                nodes: 2,
                ..SimConfig::default()
            },
        );
        let segs = cluster.run_root(root);
        check_against(&reference, &assemble(&segs, pr.n, pr.m));
    }

    #[test]
    fn optimized_kernels_are_faster_at_paper_scale() {
        let time_with = |set: KernelSet| {
            let pr = MatmulProblem::square(8192);
            let app = MatmulApp::phantom(pr, 1024, 8);
            let root = app.row_job(0, pr.n);
            let mut cluster = build_cluster(
                app,
                MatmulApp::registry(set),
                &ClusterSpec::homogeneous(2, "gtx480"),
                SimConfig {
                    max_concurrent_leaves: 2,
                    ..SimConfig::default()
                },
                RuntimeConfig::default(),
            )
            .unwrap();
            let _ = cluster.run_root(root);
            assert_eq!(cluster.leaf_runtime().cpu_fallbacks, 0, "fits in memory");
            cluster.report().makespan
        };
        let unopt = time_with(KernelSet::Unoptimized);
        let opt = time_with(KernelSet::Optimized);
        let factor = unopt.as_secs_f64() / opt.as_secs_f64();
        assert!(
            factor > 1.5,
            "tiling should be faster: unopt {unopt} opt {opt} ({factor:.2}x)"
        );
    }

    #[test]
    fn paper_scale_b_panels_fit_on_a_gtx480() {
        // The full B (4 GiB) cannot fit a 1 GiB card, but the column-panel
        // decomposition must run without CPU fallbacks.
        let pr = MatmulProblem::paper();
        let app = MatmulApp::phantom(pr, 512, 8);
        let root = app.row_job(0, pr.n);
        let mut cluster = build_cluster(
            app,
            MatmulApp::registry(KernelSet::Optimized),
            &ClusterSpec::homogeneous(4, "gtx480"),
            SimConfig {
                max_concurrent_leaves: 2,
                ..SimConfig::default()
            },
            RuntimeConfig::default(),
        )
        .unwrap();
        let _ = cluster.run_root(root);
        let rt = cluster.leaf_runtime();
        assert_eq!(rt.cpu_fallbacks, 0, "no job should fall back");
        assert_eq!(rt.kernels_run, 512);
    }

    #[test]
    fn phantom_calibration_scales_with_p() {
        let time_for_p = |p: u64| {
            let pr = MatmulProblem {
                n: 2048,
                m: 2048,
                p,
            };
            let app = MatmulApp::phantom(pr, 1024, 4);
            let root = app.row_job(0, pr.n);
            let mut cluster = build_cluster(
                app,
                MatmulApp::registry(KernelSet::Optimized),
                &ClusterSpec::homogeneous(1, "gtx480"),
                SimConfig::default(),
                RuntimeConfig::default(),
            )
            .unwrap();
            let _ = cluster.run_root(root);
            cluster.report().makespan.as_secs_f64()
        };
        let t1 = time_for_p(8192);
        let t2 = time_for_p(32768);
        let ratio = t2 / t1;
        assert!((2.0..6.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn flops_formula() {
        let pr = MatmulProblem::paper();
        assert_eq!(pr.flops(), 2.0 * 32768f64.powi(3));
        assert_eq!(pr.block_flops(32768, 32768), pr.flops());
    }
}
