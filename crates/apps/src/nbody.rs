//! N-body simulation — the paper's iterative application with intensive
//! communication (Table II).
//!
//! Each iteration computes all-pairs gravitational forces (`O(n²)` compute)
//! and then redistributes the updated positions to every node (`O(n)`
//! all-to-all communication — Sec. IV). The paper simulates 2 million
//! bodies for two iterations (Sec. V-B4).
//!
//! A device job integrates a contiguous chunk of bodies against *all*
//! bodies. Kernel versions:
//! * `perfect` — straightforward all-pairs loop (other bodies read through
//!   warp-broadcast global loads);
//! * `gpu` — the classic tiling: bodies staged through local memory
//!   cooperatively, 256 at a time;
//! * `mic` — coarse per-core chunks with gather-friendly strides.

use crate::common::{binary_divide, split_range, AppMode, CpuLeafModel, KernelSet};
use cashmere::{CashmereApp, KernelCall, KernelRegistry};
use cashmere_des::SimTime;
use cashmere_mcl::value::{ArgValue, ArrayArg};
use cashmere_mcl::ElemTy;
use cashmere_satin::{ClusterApp, CpuLeafRuntime, DcStep};
use std::sync::{Arc, RwLock};

/// Softening factor keeping close encounters finite.
pub const EPS2: f64 = 1e-4;
/// Flops charged per body-body interaction (the conventional count).
pub const FLOPS_PER_PAIR: f64 = 20.0;

/// Unoptimized all-pairs kernel.
pub const KERNEL_PERFECT: &str = "\
perfect void nbody_step(int m, int n, int offset, float dt,
    float[m,4] outp, float[m,4] outv, float[n,4] pos, float[m,4] vel) {
  foreach (int i in m threads) {
    float px = pos[offset + i, 0];
    float py = pos[offset + i, 1];
    float pz = pos[offset + i, 2];
    float ax = 0.0;
    float ay = 0.0;
    float az = 0.0;
    for (int j = 0; j < n; j++) {
      float dx = pos[j,0] - px;
      float dy = pos[j,1] - py;
      float dz = pos[j,2] - pz;
      float r2 = dx * dx + dy * dy + dz * dz + 0.0001;
      float inv = rsqrt(r2);
      float s = pos[j,3] * inv * inv * inv;
      ax += dx * s;
      ay += dy * s;
      az += dz * s;
    }
    float vx = vel[i,0] + ax * dt;
    float vy = vel[i,1] + ay * dt;
    float vz = vel[i,2] + az * dt;
    outv[i,0] = vx;
    outv[i,1] = vy;
    outv[i,2] = vz;
    outv[i,3] = 0.0;
    outp[i,0] = px + vx * dt;
    outp[i,1] = py + vy * dt;
    outp[i,2] = pz + vz * dt;
    outp[i,3] = pos[offset + i, 3];
  }
}";

/// Optimized `gpu` version: bodies staged through local memory in tiles.
pub const KERNEL_GPU: &str = "\
gpu void nbody_step(int m, int n, int offset, float dt,
    float[m,4] outp, float[m,4] outv, float[n,4] pos, float[m,4] vel) {
  foreach (int b in (m + 255) / 256 blocks) {
    local float tile[256,4];
    foreach (int t in 256 threads) {
      int i = b * 256 + t;
      float px = 0.0;
      float py = 0.0;
      float pz = 0.0;
      if (i < m) {
        px = pos[offset + i, 0];
        py = pos[offset + i, 1];
        pz = pos[offset + i, 2];
      }
      float ax = 0.0;
      float ay = 0.0;
      float az = 0.0;
      int ntiles = (n + 255) / 256;
      for (int tl = 0; tl < ntiles; tl++) {
        int src = tl * 256 + t;
        if (src < n) {
          tile[t,0] = pos[src,0];
          tile[t,1] = pos[src,1];
          tile[t,2] = pos[src,2];
          tile[t,3] = pos[src,3];
        } else {
          tile[t,0] = 0.0;
          tile[t,1] = 0.0;
          tile[t,2] = 0.0;
          tile[t,3] = 0.0;
        }
        barrier();
        int limit = min(256, n - tl * 256);
        for (int j = 0; j < limit; j++) {
          float dx = tile[j,0] - px;
          float dy = tile[j,1] - py;
          float dz = tile[j,2] - pz;
          float r2 = dx * dx + dy * dy + dz * dz + 0.0001;
          float inv = rsqrt(r2);
          float s = tile[j,3] * inv * inv * inv;
          ax += dx * s;
          ay += dy * s;
          az += dz * s;
        }
        barrier();
      }
      if (i < m) {
        float vx = vel[i,0] + ax * dt;
        float vy = vel[i,1] + ay * dt;
        float vz = vel[i,2] + az * dt;
        outv[i,0] = vx;
        outv[i,1] = vy;
        outv[i,2] = vz;
        outv[i,3] = 0.0;
        outp[i,0] = px + vx * dt;
        outp[i,1] = py + vy * dt;
        outp[i,2] = pz + vz * dt;
        outp[i,3] = pos[offset + i, 3];
      }
    }
  }
}";

/// Optimized `mic` version: coarse per-core chunks with body tiles staged
/// through local memory.
pub const KERNEL_MIC: &str = "\
mic void nbody_step(int m, int n, int offset, float dt,
    float[m,4] outp, float[m,4] outv, float[n,4] pos, float[m,4] vel) {
  foreach (int chunk in (m + 63) / 64 cores) {
    local float tile[64,4];
    foreach (int t in 64 threads) {
      int i = chunk * 64 + t;
      float px = 0.0;
      float py = 0.0;
      float pz = 0.0;
      if (i < m) {
        px = pos[offset + i, 0];
        py = pos[offset + i, 1];
        pz = pos[offset + i, 2];
      }
      float ax = 0.0;
      float ay = 0.0;
      float az = 0.0;
      int ntiles = (n + 63) / 64;
      for (int tl = 0; tl < ntiles; tl++) {
        int src = tl * 64 + t;
        if (src < n) {
          tile[t,0] = pos[src,0];
          tile[t,1] = pos[src,1];
          tile[t,2] = pos[src,2];
          tile[t,3] = pos[src,3];
        } else {
          tile[t,0] = 0.0;
          tile[t,1] = 0.0;
          tile[t,2] = 0.0;
          tile[t,3] = 0.0;
        }
        barrier();
        int limit = min(64, n - tl * 64);
        for (int j = 0; j < limit; j++) {
          float dx = tile[j,0] - px;
          float dy = tile[j,1] - py;
          float dz = tile[j,2] - pz;
          float r2 = dx * dx + dy * dy + dz * dz + 0.0001;
          float inv = rsqrt(r2);
          float s = tile[j,3] * inv * inv * inv;
          ax += dx * s;
          ay += dy * s;
          az += dz * s;
        }
        barrier();
      }
      if (i < m) {
        float vx = vel[i,0] + ax * dt;
        float vy = vel[i,1] + ay * dt;
        float vz = vel[i,2] + az * dt;
        outv[i,0] = vx;
        outv[i,1] = vy;
        outv[i,2] = vz;
        outv[i,3] = 0.0;
        outp[i,0] = px + vx * dt;
        outp[i,1] = py + vy * dt;
        outp[i,2] = pz + vz * dt;
        outp[i,3] = pos[offset + i, 3];
      }
    }
  }
}";

/// Problem description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NbodyProblem {
    pub n: u64,
    pub iterations: u32,
    pub dt: f64,
}

impl NbodyProblem {
    /// The paper's problem: 2 M bodies, 2 iterations (Sec. V-B4).
    pub fn paper() -> NbodyProblem {
        NbodyProblem {
            n: 2_000_000,
            iterations: 2,
            dt: 0.01,
        }
    }

    pub fn flops_per_iteration(&self) -> f64 {
        FLOPS_PER_PAIR * self.n as f64 * self.n as f64
    }

    pub fn total_flops(&self) -> f64 {
        self.flops_per_iteration() * f64::from(self.iterations)
    }

    pub fn job_flops(&self, bodies: u64) -> f64 {
        FLOPS_PER_PAIR * bodies as f64 * self.n as f64
    }
}

/// Mutable simulation state shared with the driver: `pos` is `n×4`
/// (x, y, z, mass), `vel` is `n×4`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NbodyState {
    pub pos: Vec<f64>,
    pub vel: Vec<f64>,
}

impl NbodyState {
    /// Deterministic plummer-ish cloud. All values are f32-exact so the
    /// f64 interpreter and the f32-rounding local-memory path agree bit for
    /// bit (near-coincident bodies amplify representation differences
    /// through `r^-3`).
    pub fn generate(n: u64, seed: u64) -> NbodyState {
        let rnd = |i: u64, salt: u64| -> f64 {
            let mut x = (i ^ salt ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 30;
            f64::from(((x % 2000) as f64 / 1000.0 - 1.0) as f32)
        };
        let mut pos = Vec::with_capacity((n * 4) as usize);
        let mut vel = Vec::with_capacity((n * 4) as usize);
        let f32x = |v: f64| f64::from(v as f32);
        for i in 0..n {
            pos.extend_from_slice(&[
                f32x(rnd(i, 1) * 10.0),
                f32x(rnd(i, 2) * 10.0),
                f32x(rnd(i, 3) * 10.0),
                f32x(0.5 + rnd(i, 4).abs()),
            ]);
            vel.extend_from_slice(&[rnd(i, 5), rnd(i, 6), rnd(i, 7), 0.0]);
        }
        NbodyState { pos, vel }
    }

    /// Reference CPU step for bodies `[lo, hi)` (matching the kernels'
    /// arithmetic, including f32 rounding of the stored results).
    pub fn reference_step(&self, lo: u64, hi: u64, dt: f64) -> (Vec<f64>, Vec<f64>) {
        let n = self.pos.len() / 4;
        let mut outp = Vec::with_capacity((hi - lo) as usize * 4);
        let mut outv = Vec::with_capacity((hi - lo) as usize * 4);
        for i in lo..hi {
            let i = i as usize;
            let (px, py, pz) = (self.pos[i * 4], self.pos[i * 4 + 1], self.pos[i * 4 + 2]);
            let (mut ax, mut ay, mut az) = (0.0f64, 0.0, 0.0);
            for j in 0..n {
                let dx = self.pos[j * 4] - px;
                let dy = self.pos[j * 4 + 1] - py;
                let dz = self.pos[j * 4 + 2] - pz;
                let r2 = dx * dx + dy * dy + dz * dz + EPS2;
                let inv = 1.0 / r2.sqrt();
                let s = self.pos[j * 4 + 3] * inv * inv * inv;
                ax += dx * s;
                ay += dy * s;
                az += dz * s;
            }
            let vx = self.vel[i * 4] + ax * dt;
            let vy = self.vel[i * 4 + 1] + ay * dt;
            let vz = self.vel[i * 4 + 2] + az * dt;
            let f32r = |x: f64| f64::from(x as f32);
            outv.extend_from_slice(&[f32r(vx), f32r(vy), f32r(vz), 0.0]);
            outp.extend_from_slice(&[
                f32r(px + vx * dt),
                f32r(py + vy * dt),
                f32r(pz + vz * dt),
                f32r(self.pos[i * 4 + 3]),
            ]);
        }
        (outp, outv)
    }
}

/// Output: updated segments of the body arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct NbSeg {
    pub b0: u64,
    pub count: u64,
    pub pos: Option<Vec<f64>>,
    pub vel: Option<Vec<f64>>,
}

/// The N-body application.
pub struct NbodyApp {
    pub problem: NbodyProblem,
    pub mode: AppMode,
    pub node_grain_bodies: u64,
    pub device_jobs: u64,
    pub cpu_model: CpuLeafModel,
    pub state: Arc<RwLock<NbodyState>>,
}

impl NbodyApp {
    pub fn phantom(problem: NbodyProblem, node_grain_bodies: u64, device_jobs: u64) -> NbodyApp {
        NbodyApp {
            problem,
            mode: AppMode::Phantom,
            node_grain_bodies,
            device_jobs,
            cpu_model: CpuLeafModel::REGULAR,
            state: Arc::new(RwLock::new(NbodyState::default())),
        }
    }

    pub fn real(
        problem: NbodyProblem,
        node_grain_bodies: u64,
        device_jobs: u64,
        seed: u64,
    ) -> NbodyApp {
        NbodyApp {
            state: Arc::new(RwLock::new(NbodyState::generate(problem.n, seed))),
            problem,
            mode: AppMode::Real,
            node_grain_bodies,
            device_jobs,
            cpu_model: CpuLeafModel::REGULAR,
        }
    }

    pub fn registry(set: KernelSet) -> KernelRegistry {
        crate::common::build_registry(&[KERNEL_PERFECT], &[KERNEL_GPU, KERNEL_MIC], set)
    }

    /// Calibrated "other bodies" count for phantom runs.
    fn n_cal(&self) -> u64 {
        self.problem.n.min(2048)
    }

    fn cpu_leaf_impl(&self, lo: u64, hi: u64) -> (SimTime, Vec<NbSeg>) {
        let t = self.cpu_model.time(self.problem.job_flops(hi - lo));
        let (pos, vel) = match self.mode {
            AppMode::Real => {
                let st = self.state.read().expect("state lock");
                let (p, v) = st.reference_step(lo, hi, self.problem.dt);
                (Some(p), Some(v))
            }
            AppMode::Phantom => (None, None),
        };
        (
            t,
            vec![NbSeg {
                b0: lo,
                count: hi - lo,
                pos,
                vel,
            }],
        )
    }

    /// Satin (CPU-only) leaf runtime.
    #[allow(clippy::type_complexity)]
    pub fn satin_runtime(
        self: &Arc<Self>,
    ) -> CpuLeafRuntime<impl FnMut(usize, &(u64, u64), SimTime) -> (SimTime, Vec<NbSeg>)> {
        let app = Arc::clone(self);
        CpuLeafRuntime(move |_node, &(lo, hi): &(u64, u64), _now| app.cpu_leaf_impl(lo, hi))
    }

    /// Apply an iteration's outputs to the shared state.
    pub fn apply_segments(&self, segs: &[NbSeg]) {
        if self.mode != AppMode::Real {
            return;
        }
        let mut st = self.state.write().expect("state lock");
        for s in segs {
            let (Some(p), Some(v)) = (&s.pos, &s.vel) else {
                continue;
            };
            let at = (s.b0 * 4) as usize;
            st.pos[at..at + p.len()].copy_from_slice(p);
            st.vel[at..at + v.len()].copy_from_slice(v);
        }
    }
}

impl ClusterApp for NbodyApp {
    type Input = (u64, u64);
    type Output = Vec<NbSeg>;

    fn step(&self, &(lo, hi): &(u64, u64)) -> DcStep<(u64, u64)> {
        match binary_divide(lo, hi, self.node_grain_bodies) {
            Some(ch) => DcStep::Divide(ch),
            None => DcStep::Leaf,
        }
    }

    fn combine(&self, _i: &(u64, u64), children: Vec<Vec<NbSeg>>) -> Vec<NbSeg> {
        let mut out: Vec<NbSeg> = children.into_iter().flatten().collect();
        out.sort_by_key(|s| s.b0);
        out
    }

    fn input_bytes(&self, &(lo, hi): &(u64, u64)) -> u64 {
        // A stolen job ships its bodies' velocities; positions are
        // broadcast each iteration.
        (hi - lo) * 16 + 64
    }

    fn output_bytes(&self, segs: &Vec<NbSeg>) -> u64 {
        segs.iter().map(|s| s.count * 32).sum()
    }
}

impl CashmereApp for NbodyApp {
    fn device_jobs(&self, &(lo, hi): &(u64, u64)) -> Vec<(u64, u64)> {
        split_range(lo, hi, self.device_jobs)
    }

    fn kernel_call(&self, &(lo, hi): &(u64, u64)) -> KernelCall {
        let pr = &self.problem;
        let m = hi - lo;
        let (args, extra_scale) = match self.mode {
            AppMode::Real => {
                let st = self.state.read().expect("state lock");
                let vel = st.vel[(lo * 4) as usize..(hi * 4) as usize].to_vec();
                (
                    vec![
                        ArgValue::Int(m as i64),
                        ArgValue::Int(pr.n as i64),
                        ArgValue::Int(lo as i64),
                        ArgValue::Float(pr.dt),
                        ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[m, 4])),
                        ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[m, 4])),
                        ArgValue::Array(ArrayArg::float(&[pr.n, 4], st.pos.clone())),
                        ArgValue::Array(ArrayArg::float(&[m, 4], vel)),
                    ],
                    1.0,
                )
            }
            AppMode::Phantom => {
                let n_cal = self.n_cal();
                (
                    vec![
                        ArgValue::Int(m as i64),
                        ArgValue::Int(n_cal as i64),
                        // offset 0 keeps `offset + i` in the calibrated range
                        ArgValue::Int(0),
                        ArgValue::Float(pr.dt),
                        ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[m, 4])),
                        ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[m, 4])),
                        ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n_cal, 4])),
                        ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[m, 4])),
                    ],
                    pr.n as f64 / self.n_cal() as f64,
                )
            }
        };
        let mut call = KernelCall::from_args("nbody_step", args, &[4, 5]);
        // Positions are re-uploaded every iteration (they change); true
        // transfer sizes use the real n.
        call.h2d_bytes = pr.n * 16 + m * 16;
        call.d2h_bytes = m * 32;
        call.extra_scale = extra_scale;
        call
    }

    fn job_output(&self, &(lo, hi): &(u64, u64), args: Vec<ArgValue>) -> Vec<NbSeg> {
        let (pos, vel) = match self.mode {
            AppMode::Real => (
                Some(args[4].clone().array().as_f64().to_vec()),
                Some(args[5].clone().array().as_f64().to_vec()),
            ),
            AppMode::Phantom => (None, None),
        };
        vec![NbSeg {
            b0: lo,
            count: hi - lo,
            pos,
            vel,
        }]
    }

    fn leaf_cpu(&self, &(lo, hi): &(u64, u64)) -> (SimTime, Vec<NbSeg>) {
        self.cpu_leaf_impl(lo, hi)
    }
}

/// Run the full iterative simulation: compute, apply, broadcast positions.
pub fn run_iterations<L>(
    cluster: &mut cashmere_satin::ClusterSim<NbodyApp, L>,
    problem: &NbodyProblem,
    apply: impl Fn(&[NbSeg]),
) -> SimTime
where
    L: cashmere_satin::LeafRuntime<NbodyApp>,
{
    let start = cluster.now();
    for _ in 0..problem.iterations {
        let segs = cluster.run_root((0, problem.n));
        apply(&segs);
        // All-to-all position redistribution, modelled as a master-relayed
        // broadcast of the full body set.
        cluster.broadcast(problem.n * 16);
    }
    cluster.now() - start
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere::{build_cluster, ClusterSpec, RuntimeConfig};
    use cashmere_satin::{ClusterSim, SimConfig};

    fn assemble(segs: &[NbSeg]) -> (Vec<f64>, Vec<f64>) {
        let mut pos = Vec::new();
        let mut vel = Vec::new();
        for s in segs {
            assert_eq!(pos.len() as u64, s.b0 * 4);
            pos.extend_from_slice(s.pos.as_ref().unwrap());
            vel.extend_from_slice(s.vel.as_ref().unwrap());
        }
        (pos, vel)
    }

    fn close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn kernels_compile() {
        assert_eq!(
            NbodyApp::registry(KernelSet::Optimized)
                .versions_of("nbody_step")
                .len(),
            3
        );
    }

    #[test]
    fn one_step_matches_reference_unoptimized() {
        let pr = NbodyProblem {
            n: 400,
            iterations: 1,
            dt: 0.01,
        };
        let app = NbodyApp::real(pr, 128, 2, 3);
        let (rp, rv) = app.state.read().unwrap().reference_step(0, pr.n, pr.dt);
        let mut cluster = build_cluster(
            app,
            NbodyApp::registry(KernelSet::Unoptimized),
            &ClusterSpec::homogeneous(2, "gtx480"),
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let segs = cluster.run_root((0, pr.n));
        let (gp, gv) = assemble(&segs);
        close(&gp, &rp);
        close(&gv, &rv);
    }

    #[test]
    fn one_step_matches_reference_tiled_gpu() {
        // n not a multiple of the 256 tile to stress the guards.
        let pr = NbodyProblem {
            n: 300,
            iterations: 1,
            dt: 0.02,
        };
        let app = NbodyApp::real(pr, 300, 1, 5);
        let (rp, rv) = app.state.read().unwrap().reference_step(0, pr.n, pr.dt);
        let mut cluster = build_cluster(
            app,
            NbodyApp::registry(KernelSet::Optimized),
            &ClusterSpec::homogeneous(1, "titan"),
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let segs = cluster.run_root((0, pr.n));
        let (gp, gv) = assemble(&segs);
        close(&gp, &rp);
        close(&gv, &rv);
    }

    #[test]
    fn mic_kernel_matches_reference() {
        let pr = NbodyProblem {
            n: 260,
            iterations: 1,
            dt: 0.01,
        };
        let app = NbodyApp::real(pr, 260, 1, 7);
        let (rp, _) = app.state.read().unwrap().reference_step(0, pr.n, pr.dt);
        let mut cluster = build_cluster(
            app,
            NbodyApp::registry(KernelSet::Optimized),
            &ClusterSpec::homogeneous(1, "xeon_phi"),
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let segs = cluster.run_root((0, pr.n));
        let (gp, _) = assemble(&segs);
        close(&gp, &rp);
    }

    #[test]
    fn two_iterations_advance_state_consistently() {
        let pr = NbodyProblem {
            n: 200,
            iterations: 2,
            dt: 0.01,
        };
        // Reference: two sequential steps.
        let mut ref_state = NbodyState::generate(pr.n, 9);
        for _ in 0..2 {
            let (p, v) = ref_state.reference_step(0, pr.n, pr.dt);
            ref_state = NbodyState { pos: p, vel: v };
        }
        // Cluster run with apply-between-iterations.
        let app = NbodyApp::real(pr, 64, 2, 9);
        let state = Arc::clone(&app.state);
        let apply_state = Arc::clone(&app.state);
        let pr_copy = pr;
        let mut cluster = build_cluster(
            app,
            NbodyApp::registry(KernelSet::Optimized),
            &ClusterSpec::homogeneous(2, "gtx480"),
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let elapsed = run_iterations(&mut cluster, &pr_copy, move |segs| {
            let mut st = apply_state.write().unwrap();
            for s in segs {
                let at = (s.b0 * 4) as usize;
                let p = s.pos.as_ref().unwrap();
                let v = s.vel.as_ref().unwrap();
                st.pos[at..at + p.len()].copy_from_slice(p);
                st.vel[at..at + v.len()].copy_from_slice(v);
            }
        });
        assert!(elapsed > SimTime::ZERO);
        let got = state.read().unwrap().clone();
        close(&got.pos, &ref_state.pos);
        assert!(cluster.report().bytes_broadcast > 0, "positions broadcast");
    }

    #[test]
    fn satin_variant_matches_reference() {
        let pr = NbodyProblem {
            n: 150,
            iterations: 1,
            dt: 0.01,
        };
        let app = Arc::new(NbodyApp::real(pr, 50, 1, 2));
        let (rp, _) = app.state.read().unwrap().reference_step(0, pr.n, pr.dt);
        let rt = app.satin_runtime();
        let app2 = NbodyApp {
            problem: pr,
            mode: AppMode::Real,
            node_grain_bodies: 50,
            device_jobs: 1,
            cpu_model: CpuLeafModel::REGULAR,
            state: Arc::clone(&app.state),
        };
        let mut cluster = ClusterSim::new(
            app2,
            rt,
            SimConfig {
                nodes: 2,
                ..SimConfig::default()
            },
        );
        let segs = cluster.run_root((0, pr.n));
        let (gp, _) = assemble(&segs);
        // The Satin reference path is the same reference_step, so exact.
        close(&gp, &rp);
    }

    #[test]
    fn optimized_beats_unoptimized_at_scale() {
        let time_with = |set: KernelSet| {
            let pr = NbodyProblem {
                n: 500_000,
                iterations: 1,
                dt: 0.01,
            };
            let app = NbodyApp::phantom(pr, 62_500, 8);
            let mut cluster = build_cluster(
                app,
                NbodyApp::registry(set),
                &ClusterSpec::homogeneous(2, "gtx480"),
                SimConfig {
                    max_concurrent_leaves: 2,
                    ..SimConfig::default()
                },
                RuntimeConfig::default(),
            )
            .unwrap();
            let _ = cluster.run_root((0, pr.n));
            cluster.report().makespan
        };
        let unopt = time_with(KernelSet::Unoptimized);
        let opt = time_with(KernelSet::Optimized);
        let factor = unopt.as_secs_f64() / opt.as_secs_f64();
        // N-body is compute-dense, so the tiling gain is real but modest
        // (the paper's Fig. 6 also shows the smallest opt gap here after
        // the raytracer).
        assert!(factor > 1.15, "unopt {unopt} vs opt {opt} ({factor:.2}x)");
    }

    #[test]
    fn phantom_scales_quadratically_in_n() {
        let time_for = |n: u64| {
            let pr = NbodyProblem {
                n,
                iterations: 1,
                dt: 0.01,
            };
            let app = NbodyApp::phantom(pr, n / 8, 8);
            let mut cluster = build_cluster(
                app,
                NbodyApp::registry(KernelSet::Optimized),
                &ClusterSpec::homogeneous(1, "k20"),
                SimConfig {
                    max_concurrent_leaves: 2,
                    ..SimConfig::default()
                },
                RuntimeConfig::default(),
            )
            .unwrap();
            let _ = cluster.run_root((0, pr.n));
            cluster.report().makespan.as_secs_f64()
        };
        let t1 = time_for(250_000);
        let t2 = time_for(500_000);
        let ratio = t2 / t1;
        assert!((3.0..5.5).contains(&ratio), "expected ~4x, got {ratio:.2}");
    }
}
