//! Shared plumbing for the four evaluation applications.
//!
//! Every application supports two data modes:
//!
//! * [`AppMode::Real`] — buffers are materialized, kernels execute fully,
//!   results are checked against CPU references (tests, examples, small
//!   problems);
//! * [`AppMode::Phantom`] — buffers are shape-only, kernels are sampled,
//!   and inner dimensions are *calibrated* (shrunk, with statistics scaled
//!   back up) so the paper-scale problems — 32768² matrices, 268 M points,
//!   2 M bodies, 16384×8192 pixels at 500 spp — are measured in
//!   milliseconds of host time.
//!
//! Every application provides kernels in two flavours matching the paper's
//! methodology (Sec. IV): *unoptimized* (one version at level `perfect`)
//! and *optimized* (additional versions at lower levels: tiled `gpu`
//! kernels, coarse-grained `mic` kernels, …).

use cashmere::KernelRegistry;
use cashmere_des::SimTime;
use cashmere_hwdesc::standard_hierarchy;
use serde::{Deserialize, Serialize};

/// Data mode for an application run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppMode {
    /// Real data, full kernel execution, verifiable results.
    Real,
    /// Shape-only data, sampled kernels, paper-scale problems.
    Phantom,
}

/// Which kernel set to register (paper Sec. IV: the three measurement
/// series are Satin, Cashmere with non-optimized kernels, Cashmere with
/// optimized kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelSet {
    /// Only the `perfect`-level kernel ("minimal effort").
    Unoptimized,
    /// All versions, including the tuned lower-level ones.
    Optimized,
}

/// Build a registry over the standard hierarchy from kernel sources:
/// `base` is the `perfect` version, `optimized` the lower-level versions
/// added for [`KernelSet::Optimized`].
pub fn build_registry(base: &[&str], optimized: &[&str], set: KernelSet) -> KernelRegistry {
    let mut r = KernelRegistry::new(standard_hierarchy());
    for src in base {
        r.register(src)
            .unwrap_or_else(|e| panic!("base kernel failed to compile: {e}"));
    }
    if set == KernelSet::Optimized {
        for src in optimized {
            r.register(src)
                .unwrap_or_else(|e| panic!("optimized kernel failed to compile: {e}"));
        }
    }
    r
}

/// Sustained single-core CPU throughput assumed for Satin leaves and the
/// `leafCPU` fallback, in GFLOPS. The DAS-4 node CPU (Xeon E5620, 2.4 GHz,
/// SSE) peaks at 19.2 SP GFLOPS per core; real kernels sustain a fraction
/// that depends on regularity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CpuLeafModel {
    pub gflops_per_core: f64,
}

impl CpuLeafModel {
    /// Regular, vectorizable kernels (matmul, n-body): ~25 % of peak.
    pub const REGULAR: CpuLeafModel = CpuLeafModel {
        gflops_per_core: 4.8,
    };
    /// Moderately regular kernels (k-means): ~15 % of peak.
    pub const MODERATE: CpuLeafModel = CpuLeafModel {
        gflops_per_core: 2.9,
    };
    /// Irregular, branchy kernels (raytracing): a few % of peak.
    pub const IRREGULAR: CpuLeafModel = CpuLeafModel {
        gflops_per_core: 0.6,
    };

    /// Single-core time for `flops` floating-point operations.
    pub fn time(&self, flops: f64) -> SimTime {
        SimTime::from_secs_f64(flops / (self.gflops_per_core * 1e9))
    }
}

/// One point of a scalability study (Figs. 7–14).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    pub nodes: usize,
    /// Virtual wall time of the measured computation.
    pub makespan: SimTime,
    /// Application GFLOPS = algorithmic flops / makespan.
    pub gflops: f64,
    pub kernels_run: u64,
    pub cpu_fallbacks: u64,
    pub steals_ok: u64,
    pub bytes_network: u64,
}

impl RunResult {
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        base.makespan.as_secs_f64() / self.makespan.as_secs_f64()
    }
}

/// Split `[0, total)` into `parts` near-equal contiguous chunks.
pub fn split_range(lo: u64, hi: u64, parts: u64) -> Vec<(u64, u64)> {
    assert!(hi >= lo && parts > 0);
    let total = hi - lo;
    let parts = parts.min(total.max(1));
    let base = total / parts;
    let rem = total % parts;
    let mut out = Vec::with_capacity(parts as usize);
    let mut cur = lo;
    for i in 0..parts {
        let len = base + u64::from(i < rem);
        out.push((cur, cur + len));
        cur += len;
    }
    debug_assert_eq!(cur, hi);
    out
}

/// Binary divide of a `(lo, hi)` range down to `grain`, as in Fig. 1.
pub fn binary_divide(lo: u64, hi: u64, grain: u64) -> Option<Vec<(u64, u64)>> {
    if hi - lo <= grain.max(1) {
        None
    } else {
        let mid = lo + (hi - lo) / 2;
        Some(vec![(lo, mid), (mid, hi)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_range_covers_exactly() {
        let parts = split_range(0, 103, 8);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts.last().unwrap().1, 103);
        let total: u64 = parts.iter().map(|(a, b)| b - a).sum();
        assert_eq!(total, 103);
        // chunk sizes differ by at most 1
        let sizes: Vec<u64> = parts.iter().map(|(a, b)| b - a).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn split_range_more_parts_than_elements() {
        let parts = split_range(5, 8, 10);
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn binary_divide_respects_grain() {
        assert!(binary_divide(0, 10, 10).is_none());
        let ch = binary_divide(0, 10, 4).unwrap();
        assert_eq!(ch, vec![(0, 5), (5, 10)]);
    }

    #[test]
    fn cpu_model_times() {
        let t = CpuLeafModel::REGULAR.time(4.8e9);
        assert_eq!(t, SimTime::from_secs(1));
        assert!(CpuLeafModel::IRREGULAR.time(1e9) > CpuLeafModel::REGULAR.time(1e9));
    }

    #[test]
    fn registry_sets_differ() {
        const BASE: &str = "perfect void k(int n, float[n] a) {
  foreach (int i in n threads) { a[i] = 0.0; }
}";
        const OPT: &str = "gpu void k(int n, float[n] a) {
  foreach (int b in (n + 255) / 256 blocks) {
    foreach (int t in 256 threads) {
      int i = b * 256 + t;
      if (i < n) { a[i] = 0.0; }
    }
  }
}";
        let un = build_registry(&[BASE], &[OPT], KernelSet::Unoptimized);
        let opt = build_registry(&[BASE], &[OPT], KernelSet::Optimized);
        assert_eq!(un.versions_of("k").len(), 1);
        assert_eq!(opt.versions_of("k").len(), 2);
    }
}
