//! Abstract syntax tree of MCPL, the Many-Core Programming Language.
//!
//! MCPL is the C-like kernel language of the paper's Fig. 3: functions with
//! multi-dimensional arrays that carry their sizes, `foreach` statements that
//! express parallelism in terms of a hardware description's parallelism
//! units (`threads`, `blocks`, `cores`), `local` scratch arrays and
//! `barrier()` synchronization.

use serde::{Deserialize, Serialize};

/// Element type of scalars and arrays. MCPL floats are single precision
/// conceptually; the interpreter computes in `f64` for convenience.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElemTy {
    Int,
    Float,
}

impl ElemTy {
    pub fn name(self) -> &'static str {
        match self {
            ElemTy::Int => "int",
            ElemTy::Float => "float",
        }
    }
}

/// Where an array lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Space {
    /// Device global memory (kernel parameters live here).
    Global,
    /// Per-work-group scratch memory (`local float tile[16,16];`).
    Local,
    /// Thread-private (scalar declarations, private arrays).
    Private,
}

/// A kernel parameter: scalar when `dims` is empty, array otherwise. Array
/// dimensions are expressions over earlier scalar parameters, mirroring the
/// paper's `float[n,m] c` notation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    pub name: String,
    pub elem: ElemTy,
    pub dims: Vec<Expr>,
}

impl Param {
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }
}

/// A complete kernel: written for hardware-description `level`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    pub level: String,
    pub name: String,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
}

/// Statement with source line (1-based) for feedback messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stmt {
    pub line: usize,
    pub kind: StmtKind,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StmtKind {
    /// `float sum = 0.0;` / `int i;`
    DeclScalar {
        ty: ElemTy,
        name: String,
        init: Option<Expr>,
    },
    /// `local float tile[16,16];` / `float acc[4];`
    DeclArray {
        space: Space,
        ty: ElemTy,
        name: String,
        dims: Vec<Expr>,
    },
    /// `x = e;`, `a[i,j] += e;`
    Assign {
        target: LValue,
        op: AssignOp,
        value: Expr,
    },
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    /// C-style `for (init; cond; step) { … }`.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
    },
    /// `foreach (int i in n threads) { … }` — parallel domain of size
    /// `count`, mapped onto the parallelism unit named `unit`.
    Foreach {
        var: String,
        count: Expr,
        unit: String,
        body: Vec<Stmt>,
    },
    /// `barrier();` — work-group synchronization.
    Barrier,
}

/// Assignment target: scalar variable or array element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LValue {
    pub name: String,
    pub indices: Vec<Expr>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignOp {
    Set,
    Add,
    Sub,
    Mul,
    Div,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    IntLit(i64),
    FloatLit(f64),
    Var(String),
    /// `a[i,j]`
    Index {
        array: String,
        indices: Vec<Expr>,
    },
    Unary {
        op: UnOp,
        operand: Box<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Builtin call: `sqrt(x)`, `min(a,b)`, …
    Call {
        name: String,
        args: Vec<Expr>,
    },
    /// `(int) e` / `(float) e`
    Cast {
        to: ElemTy,
        operand: Box<Expr>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// Does this operator produce a boolean (represented as int 0/1)?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Is this operator only defined on integers?
    pub fn int_only(self) -> bool {
        matches!(
            self,
            BinOp::Mod
                | BinOp::BitAnd
                | BinOp::BitOr
                | BinOp::BitXor
                | BinOp::Shl
                | BinOp::Shr
                | BinOp::And
                | BinOp::Or
        )
    }
}

impl Expr {
    /// Convenience constructors used by the level translator.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v)
    }

    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
}

impl Stmt {
    pub fn new(line: usize, kind: StmtKind) -> Stmt {
        Stmt { line, kind }
    }
}

/// Walk all statements in a body (depth-first), calling `f` on each.
pub fn walk_stmts<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in body {
        f(s);
        match &s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                walk_stmts(then_branch, f);
                walk_stmts(else_branch, f);
            }
            StmtKind::For {
                init, step, body, ..
            } => {
                if let Some(i) = init {
                    f(i);
                }
                if let Some(st) = step {
                    f(st);
                }
                walk_stmts(body, f);
            }
            StmtKind::Foreach { body, .. } => walk_stmts(body, f),
            _ => {}
        }
    }
}

/// Count the nesting structure of `foreach` units used by a kernel, in
/// source order of first appearance (outer first).
pub fn foreach_units(kernel: &Kernel) -> Vec<String> {
    let mut units = Vec::new();
    walk_stmts(&kernel.body, &mut |s| {
        if let StmtKind::Foreach { unit, .. } = &s.kind {
            if !units.contains(unit) {
                units.push(unit.clone());
            }
        }
    });
    units
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Shl.int_only());
        assert!(!BinOp::Mul.int_only());
    }

    #[test]
    fn walk_visits_nested() {
        let body = vec![Stmt::new(
            1,
            StmtKind::Foreach {
                var: "i".into(),
                count: Expr::var("n"),
                unit: "threads".into(),
                body: vec![Stmt::new(
                    2,
                    StmtKind::If {
                        cond: Expr::int(1),
                        then_branch: vec![Stmt::new(3, StmtKind::Barrier)],
                        else_branch: vec![],
                    },
                )],
            },
        )];
        let mut count = 0;
        walk_stmts(&body, &mut |_| count += 1);
        assert_eq!(count, 3);
    }

    #[test]
    fn foreach_units_ordered_outer_first() {
        let k = Kernel {
            level: "gpu".into(),
            name: "t".into(),
            params: vec![],
            body: vec![Stmt::new(
                1,
                StmtKind::Foreach {
                    var: "b".into(),
                    count: Expr::int(4),
                    unit: "blocks".into(),
                    body: vec![Stmt::new(
                        2,
                        StmtKind::Foreach {
                            var: "t".into(),
                            count: Expr::int(64),
                            unit: "threads".into(),
                            body: vec![],
                        },
                    )],
                },
            )],
        };
        assert_eq!(foreach_units(&k), vec!["blocks", "threads"]);
    }
}
