//! Roofline cost model: interpreter statistics + device parameters →
//! estimated kernel execution time.
//!
//! The model mirrors how the paper's devices actually behave:
//!
//! * **compute time** — the interpreter counts cost-weighted vector-issue
//!   cycles per warp; a device retires `total_lanes / warp_width` warps per
//!   clock, so compute time is `issue_cycles × warp_width / (lanes × clock)`.
//!   Divergence and partial warps are already inside `issue_cycles` (masked
//!   lanes still consume issue slots).
//! * **memory time** — coalescing-aware transaction bytes over sustained
//!   bandwidth (85 % of peak, the usual achievable fraction).
//! * **scheduling overhead** — each work-group costs a class-dependent
//!   number of cycles; the Xeon Phi's high per-group cost is why it "needs
//!   more coarse-grained parallelism than a GPU" (paper Sec. III-A).
//! * **MIC scalar fallback** — kernels whose access pattern or control flow
//!   defeats the vectorizer run on one lane per core instead of sixteen.
//!
//! The total is `max(compute + scheduling, memory) + launch latency`.

use crate::stats::KernelStats;
use cashmere_hwdesc::params::ResolvedParams;
use cashmere_hwdesc::{Hierarchy, LevelId};
use serde::{Deserialize, Serialize};

/// Fraction of peak memory bandwidth sustained in practice.
const ACHIEVABLE_BW: f64 = 0.85;

/// Broad device class; decides warp width and overhead constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceClass {
    /// NVIDIA GPUs (warp 32).
    NvidiaGpu,
    /// AMD GPUs (wavefront 64).
    AmdGpu,
    /// Intel MIC / Xeon Phi (vector width 16, strict vectorizer).
    Mic,
    /// Host CPU (SSE width 4).
    Cpu,
}

impl DeviceClass {
    /// Classify a leaf device by its ancestry in the hierarchy.
    pub fn of(h: &Hierarchy, device: LevelId) -> DeviceClass {
        let path: Vec<&str> = h.root_path(device).iter().map(|l| h.name(*l)).collect();
        if path.contains(&"mic") {
            DeviceClass::Mic
        } else if path.contains(&"amd") {
            DeviceClass::AmdGpu
        } else if path.contains(&"gpu") {
            DeviceClass::NvidiaGpu
        } else {
            DeviceClass::Cpu
        }
    }

    /// SIMT/SIMD width used for divergence and coalescing accounting.
    pub fn warp_width(self) -> usize {
        match self {
            DeviceClass::NvidiaGpu => 32,
            DeviceClass::AmdGpu => 64,
            DeviceClass::Mic => 16,
            DeviceClass::Cpu => 4,
        }
    }

    /// Scheduling cost per work-group, in device cycles.
    pub fn group_overhead_cycles(self) -> f64 {
        match self {
            DeviceClass::NvidiaGpu | DeviceClass::AmdGpu => 300.0,
            // The Phi schedules work-groups onto heavyweight threads; small
            // groups are punished hard.
            DeviceClass::Mic => 12_000.0,
            DeviceClass::Cpu => 400.0,
        }
    }

    /// Fixed kernel-launch latency in microseconds.
    pub fn launch_overhead_us(self) -> f64 {
        match self {
            DeviceClass::NvidiaGpu | DeviceClass::AmdGpu => 6.0,
            DeviceClass::Mic => 40.0,
            DeviceClass::Cpu => 1.0,
        }
    }

    /// Does this class rely on compiler auto-vectorization (and fall back to
    /// scalar code when it fails)?
    pub fn strict_vectorizer(self) -> bool {
        matches!(self, DeviceClass::Mic | DeviceClass::Cpu)
    }
}

/// Time estimate with its components, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    pub compute_s: f64,
    pub memory_s: f64,
    pub scheduling_s: f64,
    pub launch_s: f64,
    pub total_s: f64,
    /// Whether the MIC/CPU vectorizer succeeded.
    pub vectorized: bool,
}

impl CostBreakdown {
    /// Model GFLOPS for a given algorithmic flop count.
    pub fn gflops(&self, flops: f64) -> f64 {
        flops / self.total_s / 1e9
    }

    /// Is the kernel memory-bound under this model?
    pub fn memory_bound(&self) -> bool {
        self.memory_s > self.compute_s + self.scheduling_s
    }
}

/// Estimate execution time of a kernel whose sampled statistics are `stats`
/// on a device with parameters `params` of class `class`.
///
/// `stats` must have been collected with `simd_width == class.warp_width()`.
pub fn estimate_time(
    stats: &KernelStats,
    params: &ResolvedParams,
    class: DeviceClass,
) -> CostBreakdown {
    let warp = class.warp_width() as f64;
    let clock_hz = params.clock_ghz * 1e9;
    let total_lanes = params.total_lanes() as f64;

    let vectorized = !class.strict_vectorizer() || stats.vectorizable();
    let effective_lanes = if vectorized {
        total_lanes
    } else {
        // Scalar fallback: one lane per compute unit.
        f64::from(params.compute_units)
    };

    // Warp-issue cycles → lane-cycles → seconds across the whole device.
    let lane_cycles = stats.issue_cycles * warp;
    let mut compute_s = lane_cycles / (effective_lanes * clock_hz);

    // Under-occupancy: fewer groups than compute units leaves units idle.
    let units = f64::from(params.compute_units);
    if stats.groups > 0.0 && stats.groups < units {
        compute_s *= units / stats.groups.max(1.0);
    }

    let scheduling_s = stats.groups * class.group_overhead_cycles() / (units * clock_hz);
    let memory_s = stats.global_bytes / (params.mem_bandwidth_gbs * 1e9 * ACHIEVABLE_BW);
    let launch_s = class.launch_overhead_us() * 1e-6;
    let total_s = (compute_s + scheduling_s).max(memory_s) + launch_s;

    CostBreakdown {
        compute_s,
        memory_s,
        scheduling_s,
        launch_s,
        total_s,
        vectorized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_hwdesc::{standard_hierarchy, DeviceKind};

    fn gtx480() -> ResolvedParams {
        let h = standard_hierarchy();
        h.device_params(DeviceKind::Gtx480.level(&h)).unwrap()
    }

    fn phi() -> ResolvedParams {
        let h = standard_hierarchy();
        h.device_params(DeviceKind::XeonPhi.level(&h)).unwrap()
    }

    /// A compute-heavy, fully coalesced, convergent stats record.
    fn compute_stats(issue_cycles: f64, groups: f64) -> KernelStats {
        KernelStats {
            total_threads: 1e6,
            raw_lanes: 1024.0,
            groups,
            issue_cycles,
            flops: issue_cycles * 32.0 * 2.0,
            global_bytes: 1e3,
            ideal_global_bytes: 1e3,
            issue_slots: issue_cycles * 32.0,
            active_slots: issue_cycles * 32.0,
            ..KernelStats::default()
        }
    }

    #[test]
    fn classes_resolve_from_hierarchy() {
        let h = standard_hierarchy();
        assert_eq!(
            DeviceClass::of(&h, DeviceKind::Gtx480.level(&h)),
            DeviceClass::NvidiaGpu
        );
        assert_eq!(
            DeviceClass::of(&h, DeviceKind::Hd7970.level(&h)),
            DeviceClass::AmdGpu
        );
        assert_eq!(
            DeviceClass::of(&h, DeviceKind::XeonPhi.level(&h)),
            DeviceClass::Mic
        );
        assert_eq!(
            DeviceClass::of(&h, h.id("host_cpu").unwrap()),
            DeviceClass::Cpu
        );
    }

    #[test]
    fn compute_bound_scales_with_issue_cycles() {
        let p = gtx480();
        let a = estimate_time(&compute_stats(1e7, 1000.0), &p, DeviceClass::NvidiaGpu);
        let b = estimate_time(&compute_stats(2e7, 1000.0), &p, DeviceClass::NvidiaGpu);
        assert!(!a.memory_bound());
        let ratio = b.compute_s / a.compute_s;
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_when_bytes_dominate() {
        let p = gtx480();
        let mut s = compute_stats(1e4, 1000.0);
        s.global_bytes = 1e10; // 10 GB of traffic
        let c = estimate_time(&s, &p, DeviceClass::NvidiaGpu);
        assert!(c.memory_bound());
        // 10 GB over ~150 GB/s ≈ 66 ms
        assert!(c.total_s > 0.05 && c.total_s < 0.1, "{}", c.total_s);
    }

    #[test]
    fn efficiency_cannot_exceed_peak() {
        // Even a perfect kernel (2 flops per issue per lane = pure FMA)
        // cannot beat the device's theoretical peak.
        let p = gtx480();
        let s = compute_stats(1e8, 1e5);
        let c = estimate_time(&s, &p, DeviceClass::NvidiaGpu);
        let gflops = c.gflops(s.flops);
        assert!(
            gflops <= p.peak_sp_gflops() * 1.01,
            "model {gflops:.0} vs peak {:.0}",
            p.peak_sp_gflops()
        );
        assert!(gflops > p.peak_sp_gflops() * 0.5, "model {gflops:.0}");
    }

    #[test]
    fn mic_scalar_fallback_is_much_slower() {
        let p = phi();
        let mut good = compute_stats(1e7, 240.0);
        let mut bad = compute_stats(1e7, 240.0);
        // make `bad` non-vectorizable via heavy divergence
        bad.branch_events = 100.0;
        bad.divergent_branches = 50.0;
        good.branch_events = 100.0;
        good.divergent_branches = 0.0;
        let cg = estimate_time(&good, &p, DeviceClass::Mic);
        let cb = estimate_time(&bad, &p, DeviceClass::Mic);
        assert!(cg.vectorized);
        assert!(!cb.vectorized);
        let slowdown = cb.compute_s / cg.compute_s;
        assert!((slowdown - 16.0).abs() < 0.5, "slowdown {slowdown}");
    }

    #[test]
    fn fine_grained_groups_hurt_mic_more_than_gpu() {
        let p_gpu = gtx480();
        let p_phi = phi();
        // Many smallish groups on a compute-heavy kernel.
        let s = compute_stats(1e9, 1e6);
        let gpu = estimate_time(&s, &p_gpu, DeviceClass::NvidiaGpu);
        let mic = estimate_time(&s, &p_phi, DeviceClass::Mic);
        let gpu_sched_frac = gpu.scheduling_s / gpu.total_s;
        let mic_sched_frac = mic.scheduling_s / mic.total_s;
        assert!(
            mic_sched_frac > gpu_sched_frac * 3.0,
            "mic {mic_sched_frac:.3} vs gpu {gpu_sched_frac:.3}"
        );
    }

    #[test]
    fn under_occupancy_penalized() {
        let p = gtx480(); // 15 compute units
        let few = estimate_time(&compute_stats(1e7, 3.0), &p, DeviceClass::NvidiaGpu);
        let many = estimate_time(&compute_stats(1e7, 150.0), &p, DeviceClass::NvidiaGpu);
        assert!(few.compute_s > many.compute_s * 4.0);
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let p = gtx480();
        let c = estimate_time(&compute_stats(10.0, 1.0), &p, DeviceClass::NvidiaGpu);
        assert!(c.total_s >= 6e-6);
    }
}
