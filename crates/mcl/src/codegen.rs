//! OpenCL code generation (paper Sec. III-A: "generating OpenCL code").
//!
//! For each leaf of the hierarchy MCL emits OpenCL C from whatever level the
//! kernel was written at. In this reproduction the *executed* artifact is
//! the interpreter (there is no OpenCL runtime in the simulation), but the
//! generator is still implemented faithfully so that the toolchain round
//! trip — MCPL in, OpenCL out — can be inspected and tested:
//!
//! * multi-dimensional array parameters become `__global` pointers plus
//!   explicit row-major linearization at every access;
//! * outer-unit `foreach` becomes a `get_group_id` grid-stride loop, the
//!   innermost-unit `foreach` a `get_local_id` loop;
//! * `local` arrays become `__local` declarations, `barrier()` becomes
//!   `barrier(CLK_LOCAL_MEM_FENCE)`.

use crate::ast::*;
use crate::check::CheckedKernel;
use cashmere_hwdesc::Hierarchy;
use std::collections::HashMap;
use std::fmt::Write as _;

struct Gen<'a> {
    out: String,
    indent: usize,
    /// Array name → dimension expressions, for index linearization.
    dims: HashMap<String, Vec<Expr>>,
    units: &'a [String],
}

impl Gen<'_> {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn expr(&self, e: &Expr) -> String {
        match e {
            Expr::IntLit(v) => v.to_string(),
            Expr::FloatLit(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}f")
                } else {
                    format!("{v}f")
                }
            }
            Expr::Var(n) => n.clone(),
            Expr::Index { array, indices } => {
                format!("{array}[{}]", self.linearize(array, indices))
            }
            Expr::Unary { op, operand } => {
                let o = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                };
                format!("{o}({})", self.expr(operand))
            }
            Expr::Binary { op, lhs, rhs } => {
                let o = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                    BinOp::BitAnd => "&",
                    BinOp::BitOr => "|",
                    BinOp::BitXor => "^",
                    BinOp::Shl => "<<",
                    BinOp::Shr => ">>",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                };
                format!("({} {o} {})", self.expr(lhs), self.expr(rhs))
            }
            Expr::Call { name, args } => {
                let cl_name = name.as_str();
                let args: Vec<String> = args.iter().map(|a| self.expr(a)).collect();
                format!("{cl_name}({})", args.join(", "))
            }
            Expr::Cast { to, operand } => format!("({})({})", to.name(), self.expr(operand)),
        }
    }

    /// Row-major linearization of a multi-dim index.
    fn linearize(&self, array: &str, indices: &[Expr]) -> String {
        let dims = match self.dims.get(array) {
            Some(d) => d,
            None => {
                return indices
                    .iter()
                    .map(|i| self.expr(i))
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        let mut acc = self.expr(&indices[0]);
        for (k, idx) in indices.iter().enumerate().skip(1) {
            acc = format!("({acc}) * ({}) + ({})", self.expr(&dims[k]), self.expr(idx));
        }
        acc
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::DeclScalar { ty, name, init } => match init {
                Some(e) => {
                    let e = self.expr(e);
                    self.line(&format!("{} {name} = {e};", ty.name()));
                }
                None => self.line(&format!("{} {name};", ty.name())),
            },
            StmtKind::DeclArray {
                space,
                ty,
                name,
                dims,
            } => {
                let qual = match space {
                    Space::Local => "__local ",
                    _ => "",
                };
                let total = dims
                    .iter()
                    .map(|d| format!("({})", self.expr(d)))
                    .collect::<Vec<_>>()
                    .join(" * ");
                self.dims.insert(name.clone(), dims.clone());
                self.line(&format!("{qual}{} {name}[{total}];", ty.name()));
            }
            StmtKind::Assign { target, op, value } => {
                let t = if target.indices.is_empty() {
                    target.name.clone()
                } else {
                    format!(
                        "{}[{}]",
                        target.name,
                        self.linearize(&target.name, &target.indices)
                    )
                };
                let o = match op {
                    AssignOp::Set => "=",
                    AssignOp::Add => "+=",
                    AssignOp::Sub => "-=",
                    AssignOp::Mul => "*=",
                    AssignOp::Div => "/=",
                };
                let v = self.expr(value);
                self.line(&format!("{t} {o} {v};"));
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.expr(cond);
                self.line(&format!("if ({c}) {{"));
                self.indent += 1;
                for st in then_branch {
                    self.stmt(st);
                }
                self.indent -= 1;
                if else_branch.is_empty() {
                    self.line("}");
                } else {
                    self.line("} else {");
                    self.indent += 1;
                    for st in else_branch {
                        self.stmt(st);
                    }
                    self.indent -= 1;
                    self.line("}");
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let i = init.as_ref().map_or(String::new(), |s| self.inline_stmt(s));
                let c = cond.as_ref().map_or(String::new(), |e| self.expr(e));
                let st = step.as_ref().map_or(String::new(), |s| self.inline_stmt(s));
                self.line(&format!("for ({i}; {c}; {st}) {{"));
                self.indent += 1;
                for b in body {
                    self.stmt(b);
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Foreach {
                var,
                count,
                unit,
                body,
            } => {
                let innermost = self.units.last().map(String::as_str) == Some(unit.as_str());
                let mut has_inner = false;
                walk_stmts(body, &mut |t| {
                    if matches!(t.kind, StmtKind::Foreach { .. }) {
                        has_inner = true;
                    }
                });
                let c = self.expr(count);
                let (id_fn, size_fn) = if innermost && !has_inner {
                    ("get_local_id(0)", "get_local_size(0)")
                } else {
                    ("get_group_id(0)", "get_num_groups(0)")
                };
                self.line(&format!("/* foreach ({var} in {c} {unit}) */"));
                self.line(&format!(
                    "for (int {var} = {id_fn}; {var} < ({c}); {var} += {size_fn}) {{"
                ));
                self.indent += 1;
                for b in body {
                    self.stmt(b);
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Barrier => self.line("barrier(CLK_LOCAL_MEM_FENCE);"),
        }
    }

    /// Render a statement without indentation/newline (for `for` headers).
    fn inline_stmt(&mut self, s: &Stmt) -> String {
        let saved = std::mem::take(&mut self.out);
        let ind = std::mem::replace(&mut self.indent, 0);
        self.stmt(s);
        let mut rendered = std::mem::replace(&mut self.out, saved);
        self.indent = ind;
        // strip trailing ";\n"
        rendered.truncate(rendered.trim_end().trim_end_matches(';').len());
        rendered
    }
}

/// Generate OpenCL C source for a checked kernel.
pub fn generate_opencl(ck: &CheckedKernel, h: &Hierarchy) -> String {
    let units: Vec<String> = h
        .effective_params(ck.level)
        .par_units
        .iter()
        .map(|u| u.name.clone())
        .collect();
    let mut g = Gen {
        out: String::new(),
        indent: 0,
        dims: HashMap::new(),
        units: &units,
    };

    let _ = writeln!(
        g.out,
        "// Generated by cashmere-mcl from level `{}`.",
        ck.kernel.level
    );
    let mut params = Vec::new();
    for p in &ck.kernel.params {
        if p.is_array() {
            g.dims.insert(p.name.clone(), p.dims.clone());
            params.push(format!("__global {}* {}", p.elem.name(), p.name));
        } else {
            params.push(format!("{} {}", p.elem.name(), p.name));
        }
    }
    let _ = writeln!(
        g.out,
        "__kernel void {}({}) {{",
        ck.kernel.name,
        params.join(", ")
    );
    g.indent = 1;
    for s in &ck.kernel.body {
        g.stmt(s);
    }
    g.indent = 0;
    g.line("}");
    g.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use cashmere_hwdesc::standard_hierarchy;

    #[test]
    fn fig3_generates_plausible_opencl() {
        let h = standard_hierarchy();
        let ck = compile(
            "perfect void matmul(int n, int m, int p, float[n,m] c, float[n,p] a, float[p,m] b) {
  foreach (int i in n threads) {
    foreach (int j in m threads) {
      float sum = 0.0;
      for (int k = 0; k < p; k++) { sum += a[i,k] * b[k,j]; }
      c[i,j] += sum;
    }
  }
}",
            &h,
        )
        .unwrap();
        let cl = generate_opencl(&ck, &h);
        assert!(cl.contains("__kernel void matmul"));
        assert!(cl.contains("__global float* c"));
        // 2-D access linearized row-major: a[i,k] → a[(i) * (p) + (k)]
        assert!(cl.contains("a[(i) * (p) + (k)]"), "{cl}");
        assert!(cl.contains("get_local_id(0)"), "{cl}");
        assert!(cl.contains("get_group_id(0)"), "{cl}");
        assert!(cl.contains("for (int k = 0; (k < p); k += 1)"), "{cl}");
    }

    #[test]
    fn local_and_barrier_mapped() {
        let h = standard_hierarchy();
        let ck = compile(
            "gpu void t(int n, float[n] a) {
  foreach (int b in n / 64 blocks) {
    local float tile[64];
    foreach (int t in 64 threads) {
      tile[t] = a[b * 64 + t];
      barrier();
      a[b * 64 + t] = tile[63 - t];
    }
  }
}",
            &h,
        )
        .unwrap();
        let cl = generate_opencl(&ck, &h);
        assert!(cl.contains("__local float tile[(64)];"), "{cl}");
        assert!(cl.contains("barrier(CLK_LOCAL_MEM_FENCE);"), "{cl}");
    }

    #[test]
    fn casts_and_builtins_render() {
        let h = standard_hierarchy();
        let ck = compile(
            "perfect void t(int n, float[n] a) {
  foreach (int i in n threads) {
    a[i] = sqrt(fabs((float) i)) + min(a[i], 2.0);
  }
}",
            &h,
        )
        .unwrap();
        let cl = generate_opencl(&ck, &h);
        assert!(cl.contains("sqrt("));
        assert!(cl.contains("(float)(i)"), "{cl}");
        assert!(cl.contains("min("));
    }
}
