//! Execution statistics collected by the SIMT interpreter.
//!
//! The interpreter executes kernels warp-synchronously and, while doing so,
//! counts what the hardware would have done: vector-instruction issues
//! (weighted by instruction cost), active-lane flops, coalescing-aware
//! global-memory transactions, local-memory traffic, branch divergence and
//! barriers. The cost model ([`crate::cost`]) turns these counters plus a
//! device description into an execution-time estimate; the feedback analyzer
//! ([`crate::analyze`]) turns the per-site access records into
//! stepwise-refinement feedback.
//!
//! Counters are `f64` because sampled runs scale them by large factors.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Key of a memory-access site: source line plus array name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteKey {
    pub line: usize,
    pub array: String,
    pub is_store: bool,
}

/// Aggregated behaviour of one global-memory access site.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteStats {
    /// Warp-level executions of this site.
    pub executions: f64,
    /// Bytes the active lanes actually needed (4 per lane).
    pub ideal_bytes: f64,
    /// Bytes moved in 32-byte transactions after coalescing.
    pub transaction_bytes: f64,
    /// Executions where every active lane read the same address.
    pub broadcasts: f64,
}

impl SiteStats {
    /// Transaction overhead factor: 1.0 = perfectly coalesced.
    pub fn overhead(&self) -> f64 {
        if self.ideal_bytes == 0.0 {
            1.0
        } else {
            self.transaction_bytes / self.ideal_bytes
        }
    }

    /// Fraction of executions that were warp-wide broadcasts.
    pub fn broadcast_fraction(&self) -> f64 {
        if self.executions == 0.0 {
            0.0
        } else {
            self.broadcasts / self.executions
        }
    }
}

/// Full set of counters for one kernel execution (possibly sampled).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KernelStats {
    /// Size of the full parallel domain (scaled when sampling).
    pub total_threads: f64,
    /// Lanes the interpreter actually executed (unscaled).
    pub raw_lanes: f64,
    /// Work-groups in the full launch (scaled when sampling).
    pub groups: f64,
    /// Cost-weighted vector-instruction issues (scaled).
    pub issue_cycles: f64,
    /// Active-lane floating-point operations (scaled).
    pub flops: f64,
    /// Coalescing-aware global transaction bytes (scaled).
    pub global_bytes: f64,
    /// Bytes active lanes actually requested (scaled).
    pub ideal_global_bytes: f64,
    /// Local (scratch) memory bytes accessed (scaled).
    pub local_bytes: f64,
    /// Warp-level branch decisions (scaled).
    pub branch_events: f64,
    /// Warp-level divergent branch decisions (scaled).
    pub divergent_branches: f64,
    /// Lane slots offered by all issued warps (scaled): warps × simd.
    pub issue_slots: f64,
    /// Lane slots actually active across issues (scaled).
    pub active_slots: f64,
    /// Barrier executions (scaled).
    pub barriers: f64,
    /// Per-site access records (scaled with everything else).
    pub sites: BTreeMap<SiteKey, SiteStats>,
}

impl KernelStats {
    /// Fraction of issued lane slots doing useful work; 1.0 = no divergence,
    /// no partial warps.
    pub fn lane_efficiency(&self) -> f64 {
        if self.issue_slots == 0.0 {
            1.0
        } else {
            self.active_slots / self.issue_slots
        }
    }

    /// Fraction of branch decisions that diverged within a warp.
    pub fn divergence_rate(&self) -> f64 {
        if self.branch_events == 0.0 {
            0.0
        } else {
            self.divergent_branches / self.branch_events
        }
    }

    /// Global-memory coalescing efficiency: 1.0 = every transaction byte was
    /// requested by a lane.
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.global_bytes == 0.0 {
            1.0
        } else {
            (self.ideal_global_bytes / self.global_bytes).min(1.0)
        }
    }

    /// Arithmetic intensity in flops per global transaction byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.global_bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.global_bytes
        }
    }

    /// Does any local (scratch) memory get used?
    pub fn uses_local_memory(&self) -> bool {
        self.local_bytes > 0.0
    }

    /// A kernel qualifies for compiler auto-vectorization (relevant to the
    /// Xeon Phi back-end) when control flow is convergent and global
    /// accesses are unit-stride, small-stride (the MIC vector unit has
    /// gather/scatter) or broadcast.
    pub fn vectorizable(&self) -> bool {
        self.divergence_rate() < 0.05
            && self
                .sites
                .values()
                .all(|s| s.overhead() <= 4.5 || s.broadcast_fraction() > 0.9)
    }

    /// Scale every extensive counter by `factor`. Used to extrapolate a
    /// calibration run (small inner dimensions) to the full problem; ratios
    /// (divergence, coalescing, intensity) are preserved.
    pub fn scale(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "bad scale {factor}");
        self.total_threads *= factor;
        self.groups *= factor;
        self.issue_cycles *= factor;
        self.flops *= factor;
        self.global_bytes *= factor;
        self.ideal_global_bytes *= factor;
        self.local_bytes *= factor;
        self.branch_events *= factor;
        self.divergent_branches *= factor;
        self.issue_slots *= factor;
        self.active_slots *= factor;
        self.barriers *= factor;
        for s in self.sites.values_mut() {
            s.executions *= factor;
            s.ideal_bytes *= factor;
            s.transaction_bytes *= factor;
            s.broadcasts *= factor;
        }
    }

    /// Merge another stats record into this one (used when a kernel is
    /// interpreted in several vectorized chunks).
    pub fn merge(&mut self, other: &KernelStats) {
        self.total_threads += other.total_threads;
        self.raw_lanes += other.raw_lanes;
        self.groups += other.groups;
        self.issue_cycles += other.issue_cycles;
        self.flops += other.flops;
        self.global_bytes += other.global_bytes;
        self.ideal_global_bytes += other.ideal_global_bytes;
        self.local_bytes += other.local_bytes;
        self.branch_events += other.branch_events;
        self.divergent_branches += other.divergent_branches;
        self.issue_slots += other.issue_slots;
        self.active_slots += other.active_slots;
        self.barriers += other.barriers;
        for (k, v) in &other.sites {
            let e = self.sites.entry(k.clone()).or_default();
            e.executions += v.executions;
            e.ideal_bytes += v.ideal_bytes;
            e.transaction_bytes += v.transaction_bytes;
            e.broadcasts += v.broadcasts;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KernelStats {
        let mut s = KernelStats {
            total_threads: 1024.0,
            raw_lanes: 1024.0,
            groups: 4.0,
            issue_cycles: 100.0,
            flops: 2048.0,
            global_bytes: 8192.0,
            ideal_global_bytes: 4096.0,
            local_bytes: 0.0,
            branch_events: 10.0,
            divergent_branches: 1.0,
            issue_slots: 320.0,
            active_slots: 256.0,
            barriers: 0.0,
            sites: BTreeMap::new(),
        };
        s.sites.insert(
            SiteKey {
                line: 5,
                array: "a".into(),
                is_store: false,
            },
            SiteStats {
                executions: 32.0,
                ideal_bytes: 4096.0,
                transaction_bytes: 8192.0,
                broadcasts: 0.0,
            },
        );
        s
    }

    #[test]
    fn derived_ratios() {
        let s = sample();
        assert!((s.lane_efficiency() - 0.8).abs() < 1e-12);
        assert!((s.divergence_rate() - 0.1).abs() < 1e-12);
        assert!((s.coalescing_efficiency() - 0.5).abs() < 1e-12);
        assert!((s.arithmetic_intensity() - 0.25).abs() < 1e-12);
        assert!(!s.uses_local_memory());
    }

    #[test]
    fn scale_preserves_ratios() {
        let mut s = sample();
        let before = (
            s.lane_efficiency(),
            s.divergence_rate(),
            s.coalescing_efficiency(),
        );
        s.scale(1000.0);
        assert_eq!(s.total_threads, 1_024_000.0);
        assert_eq!(s.flops, 2_048_000.0);
        let after = (
            s.lane_efficiency(),
            s.divergence_rate(),
            s.coalescing_efficiency(),
        );
        assert_eq!(before, after);
        let site = s.sites.values().next().unwrap();
        assert_eq!(site.executions, 32_000.0);
        assert!((site.overhead() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.flops, 4096.0);
        assert_eq!(a.sites.len(), 1);
        assert_eq!(a.sites.values().next().unwrap().executions, 64.0);
    }

    #[test]
    fn vectorizable_classification() {
        let mut s = sample();
        s.divergent_branches = 0.0;
        // 8x overhead load site with no broadcasts ⇒ not vectorizable
        // (beyond gather-friendly strides).
        s.sites.values_mut().next().unwrap().transaction_bytes = 8.0 * 4096.0;
        assert!(!s.vectorizable());
        s.sites.values_mut().next().unwrap().transaction_bytes = 4096.0;
        assert!(s.vectorizable());
        // heavy divergence kills it again
        s.divergent_branches = 5.0;
        assert!(!s.vectorizable());
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = KernelStats::default();
        assert_eq!(s.lane_efficiency(), 1.0);
        assert_eq!(s.divergence_rate(), 0.0);
        assert_eq!(s.coalescing_efficiency(), 1.0);
        assert!(s.arithmetic_intensity().is_infinite());
    }

    #[test]
    #[should_panic(expected = "bad scale")]
    fn scale_rejects_nonpositive() {
        sample().scale(0.0);
    }
}
