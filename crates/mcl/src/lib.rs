//! # cashmere-mcl — Many-Core Levels
//!
//! MCL is the kernel-programming half of Cashmere (paper Sec. II-B, III-A).
//! Programmers write computational kernels in **MCPL**, a C-like language
//! with multi-dimensional arrays that carry their sizes and `foreach`
//! statements expressing parallelism in terms of a hardware description's
//! parallelism units. Kernels target a level of the hardware-description
//! hierarchy from [`cashmere_hwdesc`]; the compiler:
//!
//! * **checks** the kernel against the level ([`check`]);
//! * **analyzes** it and produces *stepwise-refinement* performance
//!   feedback ([`analyze`]) — uncoalesced accesses, missing local-memory
//!   reuse, branch divergence, occupancy hazards;
//! * **translates** it to lower levels without optimizing ([`translate`]);
//! * **selects launch geometry** per device ([`launch`]);
//! * **executes** it on the SIMT interpreter ([`interp`]) — full runs for
//!   correctness, sampled runs for paper-scale measurement; and
//! * **estimates execution time** on a concrete device from the collected
//!   statistics with a roofline cost model ([`cost`]).

pub mod analyze;
pub mod ast;
pub mod check;
pub mod codegen;
pub mod compile;
pub mod cost;
pub mod fmt;
pub mod interp;
pub mod launch;
pub mod parse;
pub mod stats;
pub mod translate;
pub mod value;
pub mod vm;

pub use analyze::{analyze, Feedback, FeedbackKind};
pub use ast::{ElemTy, Kernel};
pub use check::{check, CheckError, CheckedKernel};
pub use cost::{estimate_time, CostBreakdown, DeviceClass};
pub use fmt::{expr_to_string, kernel_to_string};
pub use interp::{execute, ExecError, ExecOptions, ExecResult, Sampling};
pub use launch::{LaunchConfig, LaunchKey, LaunchMemo};
pub use parse::{parse, ParseError};
pub use stats::KernelStats;
pub use translate::translate_to;
pub use value::{ArgValue, ArrayArg, Buffer};
pub use vm::{default_engine, execute_with_engine, set_default_engine, InterpEngine};

/// Parse + check in one step against a hierarchy.
pub fn compile(
    src: &str,
    hierarchy: &cashmere_hwdesc::Hierarchy,
) -> Result<CheckedKernel, CheckError> {
    let kernel = parse(src).map_err(|e| CheckError {
        line: e.line,
        message: e.message,
    })?;
    check(&kernel, hierarchy)
}
