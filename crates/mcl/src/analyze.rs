//! Performance-feedback analyzer — the engine of "stepwise refinement for
//! performance" (paper Sec. II-B).
//!
//! MCL's methodology: write a kernel at a high level, receive compiler
//! feedback, fix what the feedback names, translate down a level, repeat
//! until no feedback remains. The amount of feedback grows as the level
//! gets more concrete, because lower levels *know more about the hardware*:
//! `perfect` has 1-cycle memory (so no coalescing feedback is even
//! expressible), the `gpu` level knows about local memory and transactions,
//! and leaf levels know SIMD widths and occupancy limits.
//!
//! The analyzer consumes the same interpreter statistics as the cost model,
//! so the feedback and the modelled performance always agree: fixing a
//! reported hazard is what makes the optimized kernels of the paper's
//! Fig. 6 faster.

use crate::check::CheckedKernel;
use crate::cost::DeviceClass;
use crate::stats::KernelStats;
use cashmere_hwdesc::Hierarchy;
use serde::{Deserialize, Serialize};

/// What kind of hazard a feedback item reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeedbackKind {
    /// A global access site moves far more transaction bytes than requested.
    UncoalescedAccess,
    /// Memory-bound kernel with no local-memory staging.
    NoLocalReuse,
    /// Data-dependent control flow diverges within warps.
    Divergence,
    /// Lanes idle because warps are partially filled or unevenly loaded.
    LowLaneUtilization,
    /// Fewer work-groups than compute units.
    LowOccupancy,
    /// Access/control pattern defeats the MIC/CPU auto-vectorizer.
    VectorizationFailure,
    /// Work-groups are too small for this device's scheduling cost.
    TooFineGrained,
}

/// Severity of a feedback item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    Note,
    Warning,
}

/// One feedback item, addressed to the programmer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Feedback {
    pub kind: FeedbackKind,
    pub severity: Severity,
    /// Source line, where attributable.
    pub line: Option<usize>,
    /// Array involved, where attributable.
    pub array: Option<String>,
    pub message: String,
}

impl std::fmt::Display for Feedback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(l) => write!(f, "line {l}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

/// Analyze a kernel's measured behaviour for a target device class.
///
/// The kernel's own level decides which hazards are *visible*: levels
/// without a `local` memory space get no coalescing or reuse feedback
/// (idealized memory), levels without a SIMD width get no divergence or
/// vectorization feedback. This is exactly the paper's "on this level the
/// compiler can give more detailed feedback because it has more hardware
/// knowledge".
pub fn analyze(
    ck: &CheckedKernel,
    h: &Hierarchy,
    stats: &KernelStats,
    class: DeviceClass,
) -> Vec<Feedback> {
    let level_params = h.effective_params(ck.level);
    let level_knows_memory = level_params
        .mem_space("global")
        .is_some_and(|g| g.latency_cycles.is_some());
    let level_knows_simd =
        level_params.simd_width.is_some() || level_params.mem_space("local").is_some();
    let mut out = Vec::new();

    if level_knows_memory {
        for (key, site) in &stats.sites {
            let overhead = site.overhead();
            if overhead > 2.0 && site.broadcast_fraction() < 0.5 {
                out.push(Feedback {
                    kind: FeedbackKind::UncoalescedAccess,
                    severity: Severity::Warning,
                    line: Some(key.line),
                    array: Some(key.array.clone()),
                    message: format!(
                        "global {} of `{}` moves {:.1}x more bytes than requested \
                         (strided access); restructure for unit stride or stage \
                         through local memory",
                        if key.is_store { "store" } else { "load" },
                        key.array,
                        overhead
                    ),
                });
            }
        }

        if !stats.uses_local_memory() && stats.arithmetic_intensity() < 2.0 {
            out.push(Feedback {
                kind: FeedbackKind::NoLocalReuse,
                severity: Severity::Warning,
                line: None,
                array: None,
                message: format!(
                    "kernel is memory-bound ({:.2} flops/byte) and uses no local \
                     memory; tile reused data into `local` arrays",
                    stats.arithmetic_intensity()
                ),
            });
        }
    }

    if level_knows_simd {
        let div = stats.divergence_rate();
        if div > 0.10 {
            out.push(Feedback {
                kind: FeedbackKind::Divergence,
                severity: Severity::Warning,
                line: None,
                array: None,
                message: format!(
                    "{:.0}% of warp-level branches diverge; data-dependent control \
                     flow limits SIMD efficiency (an algorithmic property MCL \
                     cannot optimize away)",
                    div * 100.0
                ),
            });
        }
        let lane_eff = stats.lane_efficiency();
        if lane_eff < 0.7 && div <= 0.10 {
            out.push(Feedback {
                kind: FeedbackKind::LowLaneUtilization,
                severity: Severity::Note,
                line: None,
                array: None,
                message: format!(
                    "only {:.0}% of issued lane slots do useful work (partial warps \
                     or uneven per-lane trip counts)",
                    lane_eff * 100.0
                ),
            });
        }
    }

    if class.strict_vectorizer() && !stats.vectorizable() {
        out.push(Feedback {
            kind: FeedbackKind::VectorizationFailure,
            severity: Severity::Warning,
            line: None,
            array: None,
            message: "strided accesses or divergent control flow defeat the \
                      auto-vectorizer on this device; the kernel will run on \
                      scalar lanes"
                .to_string(),
        });
    }

    if stats.groups > 0.0 {
        let cycles_per_group = stats.issue_cycles / stats.groups;
        if cycles_per_group < class.group_overhead_cycles() {
            out.push(Feedback {
                kind: FeedbackKind::TooFineGrained,
                severity: Severity::Warning,
                line: None,
                array: None,
                message: format!(
                    "work-groups average {cycles_per_group:.0} cycles of work but \
                     cost {:.0} cycles to schedule on this device; use \
                     coarser-grained parallelism",
                    class.group_overhead_cycles()
                ),
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::interp::execute;
    use crate::launch::LaunchConfig;
    use crate::value::{ArgValue, ArrayArg};
    use crate::ElemTy;
    use cashmere_hwdesc::{standard_hierarchy, DeviceKind, Hierarchy};

    fn run_and_analyze(
        src: &str,
        args: Vec<ArgValue>,
        device: DeviceKind,
        h: &Hierarchy,
    ) -> Vec<Feedback> {
        let ck = compile(src, h).unwrap();
        let cfg = LaunchConfig::for_device(&ck, h, device.level(h));
        let units: Vec<String> = h
            .effective_params(ck.level)
            .par_units
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let r = execute(&ck, args, &units, &cfg.exec_full()).unwrap();
        analyze(&ck, h, &r.stats, cfg.class)
    }

    fn f32buf(n: u64) -> ArgValue {
        ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[n]))
    }

    #[test]
    fn perfect_level_gives_no_memory_feedback() {
        // Strided accesses — but at level `perfect` memory is idealized, so
        // the compiler has nothing to say about coalescing.
        let h = standard_hierarchy();
        let src = "perfect void t(int n, float[n] a) {
  foreach (int i in n / 16 threads) { a[i * 16] = 1.0; }
}";
        let fb = run_and_analyze(
            src,
            vec![ArgValue::Int(1024), f32buf(1024)],
            DeviceKind::Gtx480,
            &h,
        );
        assert!(
            !fb.iter().any(|f| f.kind == FeedbackKind::UncoalescedAccess),
            "{fb:?}"
        );
    }

    #[test]
    fn gpu_level_reports_uncoalesced_access_with_line() {
        let h = standard_hierarchy();
        let src = "gpu void t(int n, float[n] a) {
  foreach (int b in n / 256 / 16 blocks) {
    foreach (int t in 256 threads) {
      a[(b * 256 + t) * 16] = 1.0;
    }
  }
}";
        let fb = run_and_analyze(
            src,
            vec![ArgValue::Int(65536), f32buf(65536)],
            DeviceKind::Gtx480,
            &h,
        );
        let item = fb
            .iter()
            .find(|f| f.kind == FeedbackKind::UncoalescedAccess)
            .expect("expected coalescing feedback");
        assert_eq!(item.array.as_deref(), Some("a"));
        assert_eq!(item.line, Some(4));
        assert!(item.message.contains("strided"));
    }

    #[test]
    fn divergence_reported_on_simd_aware_levels() {
        let h = standard_hierarchy();
        let src = "gpu void t(int n, float[n] a) {
  foreach (int b in n / 256 blocks) {
    foreach (int t in 256 threads) {
      int i = b * 256 + t;
      if (i % 2 == 0) { a[i] = 1.0; } else { a[i] = 2.0; }
    }
  }
}";
        let fb = run_and_analyze(
            src,
            vec![ArgValue::Int(512), f32buf(512)],
            DeviceKind::Gtx480,
            &h,
        );
        assert!(
            fb.iter().any(|f| f.kind == FeedbackKind::Divergence),
            "{fb:?}"
        );
    }

    #[test]
    fn mic_vectorization_failure_reported() {
        let h = standard_hierarchy();
        let src = "perfect void t(int n, float[n] a) {
  foreach (int i in n / 8 threads) {
    if (i % 3 == 0) { a[i * 8] = 1.0; } else { a[i * 8] = 2.0; }
  }
}";
        let fb = run_and_analyze(
            src,
            vec![ArgValue::Int(4096), f32buf(4096)],
            DeviceKind::XeonPhi,
            &h,
        );
        assert!(
            fb.iter()
                .any(|f| f.kind == FeedbackKind::VectorizationFailure),
            "{fb:?}"
        );
    }

    #[test]
    fn clean_tiled_kernel_reports_nothing_serious() {
        // Unit-stride, convergent, compute-heavy kernel at gpu level: the
        // stepwise-refinement loop terminates (no warnings left).
        let h = standard_hierarchy();
        let src = "gpu void t(int n, float[n] a) {
  foreach (int b in n / 256 blocks) {
    foreach (int t in 256 threads) {
      int i = b * 256 + t;
      float x = a[i];
      for (int k = 0; k < 64; k++) { x += x * 1.0001; }
      a[i] = x;
    }
  }
}";
        let fb = run_and_analyze(
            src,
            vec![ArgValue::Int(16384), f32buf(16384)],
            DeviceKind::Gtx480,
            &h,
        );
        let warnings: Vec<_> = fb
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .collect();
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn display_includes_line() {
        let f = Feedback {
            kind: FeedbackKind::UncoalescedAccess,
            severity: Severity::Warning,
            line: Some(12),
            array: Some("a".into()),
            message: "msg".into(),
        };
        assert_eq!(f.to_string(), "line 12: msg");
    }
}
