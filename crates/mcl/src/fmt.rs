//! MCPL pretty-printer: render an AST back to (canonical) MCPL source.
//!
//! Round-tripping `parse ∘ print` is the identity on ASTs — a property the
//! test suite checks both on the shipped application kernels and on
//! generated programs. The printer is also what the level translator's
//! output looks like when shown to a programmer continuing the
//! stepwise-refinement process at the lower level.

use crate::ast::*;
use std::fmt::Write as _;

/// Operator precedence used to minimize parentheses.
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::BitOr => 3,
        BinOp::BitXor => 4,
        BinOp::BitAnd => 5,
        BinOp::Eq | BinOp::Ne => 6,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 7,
        BinOp::Shl | BinOp::Shr => 8,
        BinOp::Add | BinOp::Sub => 9,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 10,
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
    }
}

/// Render an expression; parenthesize children of lower precedence.
pub fn expr_to_string(e: &Expr) -> String {
    fn go(e: &Expr, parent_prec: u8) -> String {
        match e {
            Expr::IntLit(v) => v.to_string(),
            Expr::FloatLit(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Expr::Var(n) => n.clone(),
            Expr::Index { array, indices } => {
                let idx: Vec<String> = indices.iter().map(|i| go(i, 0)).collect();
                format!("{array}[{}]", idx.join(","))
            }
            Expr::Unary { op, operand } => {
                let o = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                };
                // Unary binds tighter than any binary operator.
                format!("{o}{}", go(operand, 11))
            }
            Expr::Binary { op, lhs, rhs } => {
                let p = prec(*op);
                // Left-associative: the right child needs parens at equal
                // precedence.
                let s = format!("{} {} {}", go(lhs, p), op_str(*op), go(rhs, p + 1));
                if p < parent_prec {
                    format!("({s})")
                } else {
                    s
                }
            }
            Expr::Call { name, args } => {
                let a: Vec<String> = args.iter().map(|x| go(x, 0)).collect();
                format!("{name}({})", a.join(", "))
            }
            Expr::Cast { to, operand } => format!("({}) {}", to.name(), go(operand, 11)),
        }
    }
    go(e, 0)
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::DeclScalar { ty, name, init } => match init {
                Some(e) => self.line(&format!("{} {name} = {};", ty.name(), expr_to_string(e))),
                None => self.line(&format!("{} {name};", ty.name())),
            },
            StmtKind::DeclArray {
                space,
                ty,
                name,
                dims,
            } => {
                let qual = if *space == Space::Local { "local " } else { "" };
                let d: Vec<String> = dims.iter().map(expr_to_string).collect();
                self.line(&format!("{qual}{} {name}[{}];", ty.name(), d.join(",")));
            }
            StmtKind::Assign { target, op, value } => {
                let t = if target.indices.is_empty() {
                    target.name.clone()
                } else {
                    let idx: Vec<String> = target.indices.iter().map(expr_to_string).collect();
                    format!("{}[{}]", target.name, idx.join(","))
                };
                let o = match op {
                    AssignOp::Set => "=",
                    AssignOp::Add => "+=",
                    AssignOp::Sub => "-=",
                    AssignOp::Mul => "*=",
                    AssignOp::Div => "/=",
                };
                self.line(&format!("{t} {o} {};", expr_to_string(value)));
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.line(&format!("if ({}) {{", expr_to_string(cond)));
                self.indent += 1;
                for t in then_branch {
                    self.stmt(t);
                }
                self.indent -= 1;
                if else_branch.is_empty() {
                    self.line("}");
                } else {
                    self.line("} else {");
                    self.indent += 1;
                    for t in else_branch {
                        self.stmt(t);
                    }
                    self.indent -= 1;
                    self.line("}");
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let i = init.as_ref().map_or(String::new(), |s| self.inline(s));
                let c = cond.as_ref().map_or(String::new(), expr_to_string);
                let st = step.as_ref().map_or(String::new(), |s| self.inline(s));
                self.line(&format!("for ({i}; {c}; {st}) {{"));
                self.indent += 1;
                for b in body {
                    self.stmt(b);
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Foreach {
                var,
                count,
                unit,
                body,
            } => {
                self.line(&format!(
                    "foreach (int {var} in {} {unit}) {{",
                    expr_to_string(count)
                ));
                self.indent += 1;
                for b in body {
                    self.stmt(b);
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Barrier => self.line("barrier();"),
        }
    }

    /// A statement without indentation or trailing `;\n` (for `for` heads).
    fn inline(&mut self, s: &Stmt) -> String {
        let saved_out = std::mem::take(&mut self.out);
        let saved_ind = std::mem::replace(&mut self.indent, 0);
        self.stmt(s);
        let mut r = std::mem::replace(&mut self.out, saved_out);
        self.indent = saved_ind;
        r.truncate(r.trim_end().trim_end_matches(';').len());
        r
    }
}

/// Render a kernel to canonical MCPL source.
pub fn kernel_to_string(k: &Kernel) -> String {
    let mut p = Printer {
        out: String::new(),
        indent: 0,
    };
    let params: Vec<String> = k
        .params
        .iter()
        .map(|pa| {
            if pa.is_array() {
                let d: Vec<String> = pa.dims.iter().map(expr_to_string).collect();
                format!("{}[{}] {}", pa.elem.name(), d.join(","), pa.name)
            } else {
                format!("{} {}", pa.elem.name(), pa.name)
            }
        })
        .collect();
    let _ = writeln!(
        p.out,
        "{} void {}({}) {{",
        k.level,
        k.name,
        params.join(", ")
    );
    p.indent = 1;
    for s in &k.body {
        p.stmt(s);
    }
    p.indent = 0;
    p.line("}");
    p.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    /// Strip source lines so ASTs compare structurally.
    fn strip(k: &Kernel) -> Kernel {
        fn strip_body(body: &[Stmt]) -> Vec<Stmt> {
            body.iter()
                .map(|s| {
                    let kind = match &s.kind {
                        StmtKind::If {
                            cond,
                            then_branch,
                            else_branch,
                        } => StmtKind::If {
                            cond: cond.clone(),
                            then_branch: strip_body(then_branch),
                            else_branch: strip_body(else_branch),
                        },
                        StmtKind::For {
                            init,
                            cond,
                            step,
                            body,
                        } => StmtKind::For {
                            init: init.as_ref().map(|i| Box::new(strip_one(i))),
                            cond: cond.clone(),
                            step: step.as_ref().map(|i| Box::new(strip_one(i))),
                            body: strip_body(body),
                        },
                        StmtKind::Foreach {
                            var,
                            count,
                            unit,
                            body,
                        } => StmtKind::Foreach {
                            var: var.clone(),
                            count: count.clone(),
                            unit: unit.clone(),
                            body: strip_body(body),
                        },
                        other => other.clone(),
                    };
                    Stmt { line: 0, kind }
                })
                .collect()
        }
        fn strip_one(s: &Stmt) -> Stmt {
            strip_body(std::slice::from_ref(s)).pop().expect("one")
        }
        Kernel {
            level: k.level.clone(),
            name: k.name.clone(),
            params: k.params.clone(),
            body: strip_body(&k.body),
        }
    }

    fn roundtrip(src: &str) {
        let k1 = parse(src).expect("original parses");
        let printed = kernel_to_string(&k1);
        let k2 =
            parse(&printed).unwrap_or_else(|e| panic!("printed source reparses: {e}\n{printed}"));
        assert_eq!(
            strip(&k1),
            strip(&k2),
            "AST changed through print/parse:\n{printed}"
        );
        // And printing is a fixed point after one round.
        assert_eq!(printed, kernel_to_string(&k2));
    }

    #[test]
    fn roundtrips_all_shipped_kernels() {
        // The Fig. 3 kernel and representative optimized shapes.
        roundtrip(
            "perfect void matmul(int n, int m, int p, float[n,m] c, float[n,p] a, float[p,m] b) {
  foreach (int i in n threads) {
    foreach (int j in m threads) {
      float sum = 0.0;
      for (int k = 0; k < p; k++) { sum += a[i,k] * b[k,j]; }
      c[i,j] += sum;
    }
  }
}",
        );
        roundtrip(
            "gpu void t(int n, float[n] a) {
  foreach (int b in (n + 255) / 256 blocks) {
    local float tile[256];
    foreach (int t in 256 threads) {
      tile[t] = a[b * 256 + t];
      barrier();
      if (t % 2 == 0) { a[b * 256 + t] = tile[255 - t]; }
      else if (t < 128) { a[b * 256 + t] = -tile[t]; }
      else { a[b * 256 + t] = sqrt(fabs(tile[t])) + (float) t; }
    }
  }
}",
        );
    }

    #[test]
    fn precedence_preserved_without_redundant_parens() {
        let k = parse(
            "perfect void t(int n, float[n] a) {
  foreach (int i in n threads) {
    a[i] = (a[i] + 1.0) * 2.0 - a[i] / 4.0;
  }
}",
        )
        .unwrap();
        let printed = kernel_to_string(&k);
        assert!(
            printed.contains("(a[i] + 1.0) * 2.0 - a[i] / 4.0"),
            "{printed}"
        );
        roundtrip(&printed);
    }

    #[test]
    fn left_associativity_kept() {
        // a - b - c must not become a - (b - c).
        roundtrip(
            "perfect void t(int n, float[n] a) {
  foreach (int i in n threads) {
    a[i] = a[i] - 1.0 - 2.0 - 3.0;
  }
}",
        );
        let k = parse(
            "perfect void t(int n, int[n] s) {
  foreach (int i in n threads) {
    s[i] = i - (1 - 2);
  }
}",
        )
        .unwrap();
        let printed = kernel_to_string(&k);
        assert!(printed.contains("i - (1 - 2)"), "{printed}");
        roundtrip(&printed);
    }

    #[test]
    fn bit_ops_and_casts_roundtrip() {
        roundtrip(
            "perfect void t(int n, int[n] s) {
  foreach (int i in n threads) {
    int x = s[i];
    x = (x ^ (x << 13)) & 4294967295;
    x = x ^ (x >> 17);
    float f = (float) (x & 8388607) / 8388608.0;
    s[i] = (int) (f * 2.0);
  }
}",
        );
    }

    #[test]
    fn translated_kernels_print_and_reparse() {
        use crate::translate::translate_to;
        use cashmere_hwdesc::standard_hierarchy;
        let h = standard_hierarchy();
        let ck = crate::compile(
            "perfect void saxpy(int n, float alpha, float[n] y, float[n] x) {
  foreach (int i in n threads) { y[i] += alpha * x[i]; }
}",
            &h,
        )
        .unwrap();
        for target in ["gpu", "mic", "host_cpu"] {
            let t = translate_to(&ck, &h, target).unwrap();
            let printed = kernel_to_string(&t.kernel);
            let re = parse(&printed).expect("translated output reparses");
            assert_eq!(re.level, target);
        }
    }
}
