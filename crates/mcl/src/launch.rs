//! Launch-geometry selection (paper Sec. III-A).
//!
//! "MCL determines the work-group and work-item configuration based on the
//! kernel parameters and its hardware-descriptions." Different devices have
//! different granularity needs: GPUs want groups of a few hundred threads;
//! the Xeon Phi wants a handful of fat lanes per core.
//!
//! The rule implemented here: if the kernel pins its innermost-unit
//! `foreach` to a literal count (the tiled, optimized kernels do — e.g.
//! `foreach (int t in 256 threads)`), that count is the work-group size.
//! Otherwise a class-dependent default is chosen, clamped to the level's
//! declared maximum.

use crate::ast::{walk_stmts, Expr, StmtKind};
use crate::check::CheckedKernel;
use crate::cost::DeviceClass;
use crate::interp::{ExecOptions, Sampling};
use crate::stats::KernelStats;
use crate::value::ArgValue;
use cashmere_hwdesc::{Hierarchy, LevelId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Geometry for one kernel launch on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Lanes per work-group (vectorized chunk in the interpreter).
    pub group_size: usize,
    /// Warp/wavefront width for issue accounting.
    pub warp_width: usize,
    /// Class of the executing device.
    pub class: DeviceClass,
}

impl LaunchConfig {
    /// Build the geometry for `kernel` on `device`.
    pub fn for_device(ck: &CheckedKernel, h: &Hierarchy, device: LevelId) -> LaunchConfig {
        let class = DeviceClass::of(h, device);
        let warp_width = class.warp_width();

        // Innermost parallelism unit of the *kernel's* level.
        let kernel_units = h.effective_params(ck.level).par_units;
        let innermost = kernel_units
            .last()
            .map(|u| u.name.clone())
            .unwrap_or_else(|| "threads".to_string());
        let unit_max = kernel_units.last().and_then(|u| u.max);

        // A literal innermost foreach count pins the group size.
        let mut literal: Option<u64> = None;
        walk_stmts(&ck.kernel.body, &mut |s| {
            if let StmtKind::Foreach {
                unit, count, body, ..
            } = &s.kind
            {
                if *unit == innermost {
                    let mut has_inner = false;
                    walk_stmts(body, &mut |t| {
                        if matches!(t.kind, StmtKind::Foreach { .. }) {
                            has_inner = true;
                        }
                    });
                    if !has_inner {
                        if let Expr::IntLit(v) = count {
                            if *v > 0 && literal.is_none() {
                                literal = Some(*v as u64);
                            }
                        }
                    }
                }
            }
        });

        let default = match class {
            DeviceClass::NvidiaGpu | DeviceClass::AmdGpu => 256,
            DeviceClass::Mic => 64,
            DeviceClass::Cpu => 8,
        };
        let mut group_size = literal.map_or(default, |v| v as usize);
        if let Some(max) = unit_max {
            group_size = group_size.min(max as usize);
        }
        group_size = group_size.clamp(1, 1024);

        LaunchConfig {
            group_size,
            warp_width,
            class,
        }
    }

    /// Interpreter options for a *full* (functional) execution.
    pub fn exec_full(&self) -> ExecOptions {
        ExecOptions {
            simd_width: self.warp_width,
            group_size: self.group_size,
            sample: None,
        }
    }

    /// Interpreter options for a *sampled* (measurement) execution.
    pub fn exec_sampled(&self, sampling: Sampling) -> ExecOptions {
        ExecOptions {
            simd_width: self.warp_width,
            group_size: self.group_size,
            sample: Some(sampling),
        }
    }
}

/// Memoization key for a sampled measurement launch: kernel identity,
/// launch geometry, and the argument *shape signature* (scalar values and
/// array dims — never array contents, which sampled statistics do not
/// depend on for the supported kernel corpus).
///
/// `Ord` (not `Hash`) so the memo table iterates deterministically — the
/// cache must never introduce run-order dependence into `--jobs` replays.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LaunchKey {
    pub kernel: String,
    pub level: LevelId,
    pub group_size: usize,
    pub warp_width: usize,
    /// Scalar args and array dims, flattened (see [`LaunchKey::arg_shape`]).
    pub shape: Vec<i64>,
}

impl LaunchKey {
    /// Shape signature of an argument list: scalar values (floats by bit
    /// pattern) and array ranks + dims.
    pub fn arg_shape(args: &[ArgValue]) -> Vec<i64> {
        let mut shape = Vec::new();
        for a in args {
            match a {
                ArgValue::Int(v) => shape.push(*v),
                ArgValue::Float(v) => shape.push(v.to_bits() as i64),
                ArgValue::Array(arr) => {
                    shape.push(-(arr.rank() as i64));
                    shape.extend(arr.dims.iter().map(|d| *d as i64));
                }
            }
        }
        shape
    }
}

/// Memo table for sampled-launch statistics with hit/miss accounting.
///
/// Repeated identical measurement launches are the common case in sweeps
/// and the fig6 corpus; the memo turns every repeat into a `BTreeMap`
/// lookup. The stored statistics are *unscaled* — calibration scaling is
/// applied per call by the runtime.
#[derive(Debug, Default)]
pub struct LaunchMemo {
    map: BTreeMap<LaunchKey, KernelStats>,
    hits: u64,
    misses: u64,
}

impl LaunchMemo {
    pub fn new() -> LaunchMemo {
        LaunchMemo::default()
    }

    /// Look up a memoized result, counting the hit or miss.
    pub fn lookup(&mut self, key: &LaunchKey) -> Option<KernelStats> {
        match self.map.get(key) {
            Some(s) => {
                self.hits += 1;
                Some(s.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up without touching the counters.
    pub fn peek(&self, key: &LaunchKey) -> Option<&KernelStats> {
        self.map.get(key)
    }

    pub fn insert(&mut self, key: LaunchKey, stats: KernelStats) {
        self.map.insert(key, stats);
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Deterministic (key-ordered) iteration over memoized entries.
    pub fn iter(&self) -> impl Iterator<Item = (&LaunchKey, &KernelStats)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use cashmere_hwdesc::{standard_hierarchy, DeviceKind};

    const PERFECT: &str = "perfect void t(int n, float[n] a) {
  foreach (int i in n threads) { a[i] = 0.0; }
}";

    const TILED: &str = "gpu void t(int n, float[n] a) {
  foreach (int b in n / 128 blocks) {
    foreach (int t in 128 threads) { a[b * 128 + t] = 0.0; }
  }
}";

    #[test]
    fn default_geometry_per_class() {
        let h = standard_hierarchy();
        let ck = compile(PERFECT, &h).unwrap();
        let gtx = LaunchConfig::for_device(&ck, &h, DeviceKind::Gtx480.level(&h));
        assert_eq!(gtx.group_size, 256);
        assert_eq!(gtx.warp_width, 32);
        let amd = LaunchConfig::for_device(&ck, &h, DeviceKind::Hd7970.level(&h));
        assert_eq!(amd.warp_width, 64);
        let phi = LaunchConfig::for_device(&ck, &h, DeviceKind::XeonPhi.level(&h));
        assert_eq!(phi.group_size, 64);
        assert_eq!(phi.warp_width, 16);
        assert_eq!(phi.class, DeviceClass::Mic);
    }

    #[test]
    fn literal_innermost_foreach_pins_group_size() {
        let h = standard_hierarchy();
        let ck = compile(TILED, &h).unwrap();
        let gtx = LaunchConfig::for_device(&ck, &h, DeviceKind::Gtx480.level(&h));
        assert_eq!(gtx.group_size, 128);
    }

    #[test]
    fn group_size_clamped_to_unit_max() {
        // mic `threads` has max 4; a perfect kernel on mic defaults to 16
        // but a mic-level kernel with threads unit clamps to 4.
        let h = standard_hierarchy();
        let src = "mic void t(int n, float[n] a) {
  foreach (int c in n / 4 cores) {
    foreach (int t in 4 threads) { a[c * 4 + t] = 0.0; }
  }
}";
        let ck = compile(src, &h).unwrap();
        let cfg = LaunchConfig::for_device(&ck, &h, DeviceKind::XeonPhi.level(&h));
        assert_eq!(cfg.group_size, 4);
    }

    #[test]
    fn launch_memo_counts_hits_and_iterates_in_key_order() {
        use crate::ast::ElemTy;
        use crate::value::ArrayArg;
        let mut memo = LaunchMemo::new();
        let key = |kernel: &str, n: i64| LaunchKey {
            kernel: kernel.to_string(),
            level: LevelId(0),
            group_size: 256,
            warp_width: 32,
            shape: vec![n],
        };
        assert!(memo.lookup(&key("b", 8)).is_none());
        memo.insert(key("b", 8), KernelStats::default());
        memo.insert(key("a", 8), KernelStats::default());
        assert!(memo.lookup(&key("b", 8)).is_some());
        assert!(
            memo.lookup(&key("b", 9)).is_none(),
            "shape is part of the key"
        );
        assert_eq!((memo.hits(), memo.misses()), (1, 2));
        assert_eq!(memo.len(), 2);
        let order: Vec<&str> = memo.iter().map(|(k, _)| k.kernel.as_str()).collect();
        assert_eq!(order, vec!["a", "b"], "deterministic key-ordered iteration");

        // Shape signature: contents don't matter, sizes and scalars do.
        let s1 = LaunchKey::arg_shape(&[
            ArgValue::Int(8),
            ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[8])),
        ]);
        let s2 = LaunchKey::arg_shape(&[
            ArgValue::Int(8),
            ArgValue::Array(ArrayArg::float(&[8], vec![1.0; 8])),
        ]);
        let s3 = LaunchKey::arg_shape(&[
            ArgValue::Int(16),
            ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[16])),
        ]);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn exec_options_carry_geometry() {
        let h = standard_hierarchy();
        let ck = compile(TILED, &h).unwrap();
        let cfg = LaunchConfig::for_device(&ck, &h, DeviceKind::Gtx480.level(&h));
        let full = cfg.exec_full();
        assert_eq!(full.group_size, 128);
        assert_eq!(full.simd_width, 32);
        assert!(full.sample.is_none());
        let sampled = cfg.exec_sampled(Sampling::default());
        assert!(sampled.sample.is_some());
    }
}
