//! Runtime values for kernel arguments and buffers.
//!
//! Device buffers are conceptually 32-bit (`float`/`int` in MCPL); the
//! interpreter computes in `f64`/`i64` for convenience and rounds through
//! `f32` on stores so results match what 32-bit hardware would produce.
//!
//! A buffer is either *real* (backed by memory, used for functional runs and
//! correctness tests) or *phantom* (shape only). Phantom buffers let the
//! paper-scale experiments run — 32768×32768 matrices never materialize —
//! while keeping the interpreter's control flow and access-pattern
//! statistics intact: phantom loads return a deterministic hash of the
//! address and phantom stores are dropped.

use crate::ast::ElemTy;
use serde::{Deserialize, Serialize};

/// Backing store of an array argument.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Buffer {
    F(Vec<f64>),
    I(Vec<i64>),
    /// Shape-only float buffer of the given length.
    PhantomF(u64),
    /// Shape-only int buffer of the given length.
    PhantomI(u64),
}

/// Deterministic pseudo-value for phantom loads: cheap integer hash of the
/// flat address mapped into [0, 1).
#[inline]
fn phantom_unit(addr: u64) -> f64 {
    let mut x = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    (x & 0xFFFF_FFFF) as f64 / 4_294_967_296.0
}

impl Buffer {
    pub fn len(&self) -> u64 {
        match self {
            Buffer::F(v) => v.len() as u64,
            Buffer::I(v) => v.len() as u64,
            Buffer::PhantomF(n) | Buffer::PhantomI(n) => *n,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_phantom(&self) -> bool {
        matches!(self, Buffer::PhantomF(_) | Buffer::PhantomI(_))
    }

    pub fn elem(&self) -> ElemTy {
        match self {
            Buffer::F(_) | Buffer::PhantomF(_) => ElemTy::Float,
            Buffer::I(_) | Buffer::PhantomI(_) => ElemTy::Int,
        }
    }

    /// Load as float (int buffers convert).
    #[inline]
    pub fn load_f(&self, addr: u64) -> f64 {
        match self {
            Buffer::F(v) => v[addr as usize],
            Buffer::I(v) => v[addr as usize] as f64,
            Buffer::PhantomF(_) => phantom_unit(addr),
            Buffer::PhantomI(_) => (phantom_unit(addr) * 256.0).floor(),
        }
    }

    /// Load as int (float buffers truncate).
    #[inline]
    pub fn load_i(&self, addr: u64) -> i64 {
        match self {
            Buffer::F(v) => v[addr as usize] as i64,
            Buffer::I(v) => v[addr as usize],
            Buffer::PhantomF(_) => (phantom_unit(addr) * 256.0) as i64,
            Buffer::PhantomI(_) => (phantom_unit(addr) * 256.0) as i64,
        }
    }

    /// Store a float (rounded through `f32`, matching 32-bit devices).
    #[inline]
    pub fn store_f(&mut self, addr: u64, v: f64) {
        match self {
            Buffer::F(data) => data[addr as usize] = v as f32 as f64,
            Buffer::I(data) => data[addr as usize] = v as i64,
            Buffer::PhantomF(_) | Buffer::PhantomI(_) => {}
        }
    }

    #[inline]
    pub fn store_i(&mut self, addr: u64, v: i64) {
        match self {
            Buffer::F(data) => data[addr as usize] = v as f64,
            Buffer::I(data) => data[addr as usize] = v,
            Buffer::PhantomF(_) | Buffer::PhantomI(_) => {}
        }
    }
}

/// An array argument: element type, dimension sizes, backing buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayArg {
    pub dims: Vec<u64>,
    pub data: Buffer,
}

impl ArrayArg {
    /// Real float array from data; `dims` must multiply to `data.len()`.
    pub fn float(dims: &[u64], data: Vec<f64>) -> ArrayArg {
        let expect: u64 = dims.iter().product();
        assert_eq!(
            expect,
            data.len() as u64,
            "dims {dims:?} vs len {}",
            data.len()
        );
        ArrayArg {
            dims: dims.to_vec(),
            data: Buffer::F(data),
        }
    }

    /// Real float array from f32 data (convenience for app buffers).
    pub fn float32(dims: &[u64], data: &[f32]) -> ArrayArg {
        ArrayArg::float(dims, data.iter().map(|&x| f64::from(x)).collect())
    }

    pub fn int(dims: &[u64], data: Vec<i64>) -> ArrayArg {
        let expect: u64 = dims.iter().product();
        assert_eq!(expect, data.len() as u64);
        ArrayArg {
            dims: dims.to_vec(),
            data: Buffer::I(data),
        }
    }

    /// Phantom (shape-only) array.
    pub fn phantom(elem: ElemTy, dims: &[u64]) -> ArrayArg {
        let n: u64 = dims.iter().product();
        ArrayArg {
            dims: dims.to_vec(),
            data: match elem {
                ElemTy::Float => Buffer::PhantomF(n),
                ElemTy::Int => Buffer::PhantomI(n),
            },
        }
    }

    /// Zero-filled real array.
    pub fn zeros(elem: ElemTy, dims: &[u64]) -> ArrayArg {
        let n: usize = dims.iter().product::<u64>() as usize;
        ArrayArg {
            dims: dims.to_vec(),
            data: match elem {
                ElemTy::Float => Buffer::F(vec![0.0; n]),
                ElemTy::Int => Buffer::I(vec![0; n]),
            },
        }
    }

    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    pub fn len(&self) -> u64 {
        self.dims.iter().product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in device bytes (4 bytes per element).
    pub fn device_bytes(&self) -> u64 {
        self.len() * 4
    }

    /// Flatten a multi-dim index (row-major). Panics on out-of-bounds in
    /// real mode; phantom mode wraps (no memory to corrupt, keeps huge
    /// synthetic runs alive).
    #[inline]
    pub fn flat_index(&self, idx: &[i64]) -> u64 {
        debug_assert_eq!(idx.len(), self.dims.len());
        let mut flat: u64 = 0;
        for (d, &i) in self.dims.iter().zip(idx) {
            if i < 0 || (i as u64) >= *d {
                if self.data.is_phantom() {
                    let wrapped = (i.rem_euclid(*d as i64)) as u64;
                    flat = flat * d + wrapped;
                    continue;
                }
                panic!("index {i} out of bounds for dim {d} (dims {:?})", self.dims);
            }
            flat = flat * d + i as u64;
        }
        flat
    }

    /// Extract real float data (panics on phantom/int).
    pub fn as_f64(&self) -> &[f64] {
        match &self.data {
            Buffer::F(v) => v,
            other => panic!("expected real float buffer, got {other:?}"),
        }
    }

    pub fn as_i64(&self) -> &[i64] {
        match &self.data {
            Buffer::I(v) => v,
            other => panic!("expected real int buffer, got {other:?}"),
        }
    }
}

/// A kernel argument.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArgValue {
    Int(i64),
    Float(f64),
    Array(ArrayArg),
}

impl ArgValue {
    pub fn array(self) -> ArrayArg {
        match self {
            ArgValue::Array(a) => a,
            other => panic!("expected array argument, got {other:?}"),
        }
    }

    /// Device bytes this argument occupies for host↔device transfer.
    pub fn device_bytes(&self) -> u64 {
        match self {
            ArgValue::Int(_) | ArgValue::Float(_) => 4,
            ArgValue::Array(a) => a.device_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_buffer_roundtrip() {
        let mut a = ArrayArg::zeros(ElemTy::Float, &[2, 3]);
        let i = a.flat_index(&[1, 2]);
        assert_eq!(i, 5);
        a.data.store_f(i, 2.5);
        assert_eq!(a.data.load_f(i), 2.5);
        assert_eq!(a.device_bytes(), 24);
    }

    #[test]
    fn f32_rounding_on_store() {
        let mut a = ArrayArg::zeros(ElemTy::Float, &[1]);
        a.data.store_f(0, 1.000_000_000_1);
        assert_eq!(a.data.load_f(0), f64::from(1.000_000_000_1_f32));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn real_oob_panics() {
        let a = ArrayArg::zeros(ElemTy::Float, &[4]);
        a.flat_index(&[4]);
    }

    #[test]
    fn phantom_loads_are_deterministic_and_writes_dropped() {
        let mut a = ArrayArg::phantom(ElemTy::Float, &[1000]);
        let v1 = a.data.load_f(123);
        let v2 = a.data.load_f(123);
        assert_eq!(v1, v2);
        assert!((0.0..1.0).contains(&v1));
        assert_ne!(a.data.load_f(124), v1);
        a.data.store_f(123, 99.0);
        assert_eq!(a.data.load_f(123), v1, "phantom stores dropped");
    }

    #[test]
    fn phantom_oob_wraps() {
        let a = ArrayArg::phantom(ElemTy::Float, &[10]);
        // Does not panic; wraps deterministically.
        assert_eq!(a.flat_index(&[12]), 2);
        assert_eq!(a.flat_index(&[-1]), 9);
    }

    #[test]
    fn int_buffer_conversions() {
        let a = ArrayArg::int(&[2], vec![7, -3]);
        assert_eq!(a.data.load_f(0), 7.0);
        assert_eq!(a.data.load_i(1), -3);
    }

    #[test]
    #[should_panic(expected = "dims")]
    fn dims_length_mismatch_panics() {
        let _ = ArrayArg::float(&[2, 2], vec![0.0; 5]);
    }

    #[test]
    fn float32_helper() {
        let a = ArrayArg::float32(&[2], &[1.5f32, 2.5]);
        assert_eq!(a.as_f64(), &[1.5, 2.5]);
    }
}
