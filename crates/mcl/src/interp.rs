//! Warp-synchronous (SIMT) interpreter for MCPL kernels.
//!
//! The interpreter executes a kernel the way a many-core device would:
//! the *innermost* thread-level `foreach` is vectorized — all lanes of a
//! work-group advance through the statement list in lockstep under an
//! activity mask — while outer `foreach` statements (`blocks`, `cores`,
//! outer `threads` domains) iterate sequentially. Lockstep execution makes
//! `barrier()` and cooperative `local`-memory patterns functionally correct
//! by construction, and it lets us *measure* what the hardware would do:
//!
//! * each executed vector instruction counts issue cycles per active warp;
//! * `if`/`for` with lane-varying conditions record branch divergence;
//! * global loads/stores are grouped into 32-byte transactions per warp,
//!   which is exactly the coalescing behaviour the paper's optimized
//!   kernels exploit.
//!
//! Two modes:
//!
//! * **full** — every group and every lane executes; array arguments are
//!   mutated; used for correctness tests and real application runs;
//! * **sampled** — only the first few outer iterations / vector chunks run
//!   and all counters are scaled up, so paper-scale launches (billions of
//!   threads) are measured in milliseconds. Combined with phantom buffers
//!   nothing big is ever allocated.

use crate::ast::*;
use crate::check::CheckedKernel;
use crate::stats::{KernelStats, SiteKey};
use crate::value::ArgValue;
use std::collections::HashMap;
use std::fmt;

/// Interpreter error (runtime, after successful checking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MCPL runtime error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ExecError {}

/// Sampling limits for estimated runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampling {
    /// Max iterations interpreted per sequential-parallel `foreach`.
    pub max_outer_iters: usize,
    /// Max vector chunks interpreted per vectorized `foreach`.
    pub max_chunks: usize,
}

impl Default for Sampling {
    fn default() -> Self {
        Sampling {
            max_outer_iters: 2,
            max_chunks: 2,
        }
    }
}

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Warp/wavefront width used for issue and coalescing accounting.
    pub simd_width: usize,
    /// Lanes per vectorized chunk (work-group size).
    pub group_size: usize,
    /// `None` = full functional execution.
    pub sample: Option<Sampling>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            simd_width: 32,
            group_size: 256,
            sample: None,
        }
    }
}

/// Result: the (possibly mutated) arguments plus collected statistics.
#[derive(Debug)]
pub struct ExecResult {
    pub args: Vec<ArgValue>,
    pub stats: KernelStats,
}

// Instruction costs in device cycles.
const CYCLE_BASIC: f64 = 1.0;
const CYCLE_SPECIAL: f64 = 8.0;
const CYCLE_LOCAL: f64 = 2.0;
/// Global accesses cost extra issue cycles: a partial charge for the
/// latency that occupancy cannot always hide. This is what makes staging
/// reused data in `local` memory profitable beyond pure bandwidth savings.
const CYCLE_GLOBAL: f64 = 4.0;
const CYCLE_BARRIER: f64 = 4.0;
/// Memory transaction granularity in bytes.
const TRANSACTION_BYTES: u64 = 32;
/// Device element size in bytes (float/int are 32-bit on device).
const ELEM_BYTES: u64 = 4;

/// A lane-varying value: length is 1 (uniform) or the current lane count.
#[derive(Debug, Clone, PartialEq)]
enum V {
    I(Vec<i64>),
    F(Vec<f64>),
}

impl V {
    fn len(&self) -> usize {
        match self {
            V::I(v) => v.len(),
            V::F(v) => v.len(),
        }
    }

    fn uniform_i(x: i64) -> V {
        V::I(vec![x])
    }

    fn broadcast(&self, lanes: usize) -> V {
        if self.len() == lanes {
            return self.clone();
        }
        debug_assert_eq!(self.len(), 1, "broadcast from non-uniform");
        match self {
            V::I(v) => V::I(vec![v[0]; lanes]),
            V::F(v) => V::F(vec![v[0]; lanes]),
        }
    }

    fn as_i(&self) -> V {
        match self {
            V::I(_) => self.clone(),
            V::F(v) => V::I(v.iter().map(|&x| x as i64).collect()),
        }
    }

    fn as_f(&self) -> V {
        match self {
            V::F(_) => self.clone(),
            V::I(v) => V::F(v.iter().map(|&x| x as f64).collect()),
        }
    }

    fn is_float(&self) -> bool {
        matches!(self, V::F(_))
    }
}

/// Storage for a `local` (work-group shared) or private array.
#[derive(Debug, Clone)]
struct ArrayStore {
    dims: Vec<u64>,
    /// `true` → one copy shared by all lanes; `false` → per-lane storage
    /// laid out `[elem * lanes + lane]`.
    shared: bool,
    lanes: usize,
    fdata: Vec<f64>,
    idata: Vec<i64>,
    elem: ElemTy,
}

impl ArrayStore {
    fn new(elem: ElemTy, dims: Vec<u64>, shared: bool, lanes: usize) -> ArrayStore {
        let n: u64 = dims.iter().product();
        let slots = if shared {
            n as usize
        } else {
            n as usize * lanes
        };
        ArrayStore {
            dims,
            shared,
            lanes,
            fdata: if elem == ElemTy::Float {
                vec![0.0; slots]
            } else {
                Vec::new()
            },
            idata: if elem == ElemTy::Int {
                vec![0; slots]
            } else {
                Vec::new()
            },
            elem,
        }
    }

    fn flat(&self, idx: &[i64], line: usize) -> Result<u64, ExecError> {
        let mut flat: u64 = 0;
        for (d, &i) in self.dims.iter().zip(idx) {
            if i < 0 || (i as u64) >= *d {
                return Err(ExecError {
                    line,
                    message: format!("scratch index {i} out of bounds for dim {d}"),
                });
            }
            flat = flat * d + i as u64;
        }
        Ok(flat)
    }

    fn slot(&self, flat: u64, lane: usize) -> usize {
        if self.shared {
            flat as usize
        } else {
            flat as usize * self.lanes + lane
        }
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Scalar(V),
    Array(ArrayStore),
}

struct Frame {
    vars: HashMap<String, Slot>,
}

pub struct Interp {
    args: Vec<ArgValue>,
    /// Parameter name → index into `args`.
    param_index: HashMap<String, usize>,
    env: Vec<Frame>,
    lanes: usize,
    mask: Vec<bool>,
    /// Cached: number of active lanes / warps with ≥1 active lane.
    active_count: usize,
    warps_active: usize,
    /// Frame index where the current vector context began.
    vector_base: Option<usize>,
    simd: usize,
    group_size: usize,
    sample: Option<Sampling>,
    scale: f64,
    stats: KernelStats,
    unit_order: Vec<String>,
    /// Scratch for transaction counting.
    seg_scratch: Vec<u64>,
    /// Tiny L1 model: per load site, the hashes of recently issued address
    /// patterns. A repeat of a recent pattern (e.g. loop-invariant loads
    /// re-issued every iteration) hits the cache and moves no DRAM bytes.
    site_cache: HashMap<(usize, String), std::collections::VecDeque<u64>>,
}

impl Interp {
    fn err(&self, line: usize, msg: impl Into<String>) -> ExecError {
        ExecError {
            line,
            message: msg.into(),
        }
    }

    fn refresh_mask_cache(&mut self) {
        self.active_count = self.mask.iter().filter(|b| **b).count();
        self.warps_active = self
            .mask
            .chunks(self.simd)
            .filter(|w| w.iter().any(|b| *b))
            .count();
    }

    /// Record one vector instruction of the given cycle cost.
    #[inline]
    fn issue(&mut self, cost: f64) {
        let w = self.warps_active as f64;
        self.stats.issue_cycles += cost * w * self.scale;
        self.stats.issue_slots += w * self.simd as f64 * self.scale;
        self.stats.active_slots += self.active_count as f64 * self.scale;
    }

    #[inline]
    fn count_flops(&mut self, per_lane: f64) {
        self.stats.flops += per_lane * self.active_count as f64 * self.scale;
    }

    fn push_frame(&mut self) {
        self.env.push(Frame {
            vars: HashMap::new(),
        });
    }

    fn pop_frame(&mut self) {
        self.env.pop();
    }

    fn declare(&mut self, name: &str, slot: Slot) {
        self.env
            .last_mut()
            .expect("env never empty")
            .vars
            .insert(name.to_string(), slot);
    }

    fn lookup(&self, name: &str) -> Option<(usize, &Slot)> {
        for (i, f) in self.env.iter().enumerate().rev() {
            if let Some(s) = f.vars.get(name) {
                return Some((i, s));
            }
        }
        None
    }

    fn lookup_frame_idx(&self, name: &str) -> Option<usize> {
        self.lookup(name).map(|(i, _)| i)
    }

    // ---------------------------------------------------------------- eval

    fn eval(&mut self, e: &Expr, line: usize) -> Result<V, ExecError> {
        match e {
            Expr::IntLit(v) => Ok(V::uniform_i(*v)),
            Expr::FloatLit(v) => Ok(V::F(vec![*v])),
            Expr::Var(name) => match self.lookup(name) {
                Some((_, Slot::Scalar(v))) => Ok(v.clone()),
                Some((_, Slot::Array(_))) => {
                    Err(self.err(line, format!("`{name}` is an array, not a scalar")))
                }
                None => Err(self.err(line, format!("unbound variable `{name}`"))),
            },
            Expr::Index { array, indices } => self.eval_load(array, indices, line),
            Expr::Unary { op, operand } => {
                let v = self.eval(operand, line)?;
                self.issue(CYCLE_BASIC);
                Ok(match (op, v) {
                    (UnOp::Neg, V::F(v)) => {
                        self.count_flops(1.0);
                        V::F(v.into_iter().map(|x| -x).collect())
                    }
                    (UnOp::Neg, V::I(v)) => V::I(v.into_iter().map(|x| x.wrapping_neg()).collect()),
                    (UnOp::Not, V::I(v)) => {
                        V::I(v.into_iter().map(|x| i64::from(x == 0)).collect())
                    }
                    (UnOp::BitNot, V::I(v)) => V::I(v.into_iter().map(|x| !x).collect()),
                    (op, v) => return Err(self.err(line, format!("bad unary {op:?} on {v:?}"))),
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs, line)?;
                let b = self.eval(rhs, line)?;
                self.apply_bin(*op, a, b, line)
            }
            Expr::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, line)?);
                }
                self.eval_call(name, vals, line)
            }
            Expr::Cast { to, operand } => {
                let v = self.eval(operand, line)?;
                self.issue(CYCLE_BASIC);
                Ok(match to {
                    ElemTy::Int => v.as_i(),
                    ElemTy::Float => v.as_f(),
                })
            }
        }
    }

    fn apply_bin(&mut self, op: BinOp, a: V, b: V, line: usize) -> Result<V, ExecError> {
        let lanes = a.len().max(b.len());
        let a = a.broadcast(lanes);
        let b = b.broadcast(lanes);
        let float = (a.is_float() || b.is_float()) && !op.int_only() && !op.is_comparison();
        let cost = match op {
            BinOp::Div | BinOp::Mod => CYCLE_SPECIAL,
            _ => CYCLE_BASIC,
        };
        self.issue(cost);
        if float || (op.is_comparison() && (a.is_float() || b.is_float())) {
            let x = a.as_f();
            let y = b.as_f();
            let (V::F(x), V::F(y)) = (x, y) else {
                unreachable!()
            };
            if op.is_comparison() {
                let f = |p: f64, q: f64| -> i64 {
                    i64::from(match op {
                        BinOp::Eq => p == q,
                        BinOp::Ne => p != q,
                        BinOp::Lt => p < q,
                        BinOp::Le => p <= q,
                        BinOp::Gt => p > q,
                        BinOp::Ge => p >= q,
                        _ => unreachable!(),
                    })
                };
                return Ok(V::I(x.iter().zip(&y).map(|(&p, &q)| f(p, q)).collect()));
            }
            self.count_flops(1.0);
            let f = |p: f64, q: f64| -> f64 {
                match op {
                    BinOp::Add => p + q,
                    BinOp::Sub => p - q,
                    BinOp::Mul => p * q,
                    BinOp::Div => p / q,
                    _ => unreachable!("float op {op:?}"),
                }
            };
            Ok(V::F(x.iter().zip(&y).map(|(&p, &q)| f(p, q)).collect()))
        } else {
            let x = a.as_i();
            let y = b.as_i();
            let (V::I(x), V::I(y)) = (x, y) else {
                unreachable!()
            };
            let f = |p: i64, q: i64| -> i64 {
                match op {
                    BinOp::Add => p.wrapping_add(q),
                    BinOp::Sub => p.wrapping_sub(q),
                    BinOp::Mul => p.wrapping_mul(q),
                    BinOp::Div => {
                        if q == 0 {
                            0
                        } else {
                            p.wrapping_div(q)
                        }
                    }
                    BinOp::Mod => {
                        if q == 0 {
                            0
                        } else {
                            p.rem_euclid(q)
                        }
                    }
                    BinOp::And => i64::from(p != 0 && q != 0),
                    BinOp::Or => i64::from(p != 0 || q != 0),
                    BinOp::BitAnd => p & q,
                    BinOp::BitOr => p | q,
                    BinOp::BitXor => p ^ q,
                    BinOp::Shl => p.wrapping_shl(q as u32 & 63),
                    BinOp::Shr => ((p as u64).wrapping_shr(q as u32 & 63)) as i64,
                    BinOp::Eq => i64::from(p == q),
                    BinOp::Ne => i64::from(p != q),
                    BinOp::Lt => i64::from(p < q),
                    BinOp::Le => i64::from(p <= q),
                    BinOp::Gt => i64::from(p > q),
                    BinOp::Ge => i64::from(p >= q),
                }
            };
            let _ = line;
            Ok(V::I(x.iter().zip(&y).map(|(&p, &q)| f(p, q)).collect()))
        }
    }

    fn eval_call(&mut self, name: &str, mut vals: Vec<V>, line: usize) -> Result<V, ExecError> {
        let special = matches!(
            name,
            "sqrt" | "rsqrt" | "pow" | "exp" | "log" | "sin" | "cos" | "tan"
        );
        self.issue(if special { CYCLE_SPECIAL } else { CYCLE_BASIC });
        self.count_flops(1.0);
        let lanes = vals.iter().map(V::len).max().unwrap_or(1);
        // min/max/abs/clamp stay int when all args are int.
        let all_int = vals.iter().all(|v| !v.is_float());
        if all_int && matches!(name, "min" | "max" | "abs" | "clamp") {
            let vs: Vec<Vec<i64>> = vals
                .iter()
                .map(|v| match v.broadcast(lanes).as_i() {
                    V::I(x) => x,
                    V::F(_) => unreachable!(),
                })
                .collect();
            let out: Vec<i64> = (0..lanes)
                .map(|l| match name {
                    "min" => vs[0][l].min(vs[1][l]),
                    "max" => vs[0][l].max(vs[1][l]),
                    "abs" => vs[0][l].abs(),
                    "clamp" => vs[0][l].clamp(vs[1][l].min(vs[2][l]), vs[2][l].max(vs[1][l])),
                    _ => unreachable!(),
                })
                .collect();
            return Ok(V::I(out));
        }
        let vs: Vec<Vec<f64>> = vals
            .drain(..)
            .map(|v| match v.broadcast(lanes).as_f() {
                V::F(x) => x,
                V::I(_) => unreachable!(),
            })
            .collect();
        let out: Vec<f64> = (0..lanes)
            .map(|l| match name {
                "sqrt" => vs[0][l].max(0.0).sqrt(),
                "rsqrt" => 1.0 / vs[0][l].max(f64::MIN_POSITIVE).sqrt(),
                "fabs" | "abs" => vs[0][l].abs(),
                "floor" => vs[0][l].floor(),
                "exp" => vs[0][l].exp(),
                "log" => vs[0][l].max(f64::MIN_POSITIVE).ln(),
                "sin" => vs[0][l].sin(),
                "cos" => vs[0][l].cos(),
                "tan" => vs[0][l].tan(),
                "pow" => vs[0][l].powf(vs[1][l]),
                "min" => vs[0][l].min(vs[1][l]),
                "max" => vs[0][l].max(vs[1][l]),
                "clamp" => {
                    let (lo, hi) = (vs[1][l].min(vs[2][l]), vs[2][l].max(vs[1][l]));
                    vs[0][l].clamp(lo, hi)
                }
                other => unreachable!("checker validated builtin `{other}`"),
            })
            .collect();
        let _ = line;
        Ok(V::F(out))
    }

    // ------------------------------------------------------------- memory

    /// Evaluate index expressions into per-lane flat addresses for a global
    /// array parameter, then account transactions and return loaded values.
    fn eval_load(&mut self, array: &str, indices: &[Expr], line: usize) -> Result<V, ExecError> {
        // Scratch (local/private) array?
        if let Some(frame) = self.lookup_frame_idx(array) {
            let _ = frame;
            return self.scratch_access(array, indices, line, None);
        }
        let &pidx = self
            .param_index
            .get(array)
            .ok_or_else(|| self.err(line, format!("unbound array `{array}`")))?;
        let addrs = self.global_addresses(pidx, indices, line)?;
        self.account_global(line, array, false, &addrs);
        let ArgValue::Array(arr) = &self.args[pidx] else {
            return Err(self.err(line, format!("`{array}` is not an array argument")));
        };
        let elem = arr.data.elem();
        let out = match elem {
            ElemTy::Float => V::F(addrs.iter().map(|&a| arr.data.load_f(a)).collect()),
            ElemTy::Int => V::I(addrs.iter().map(|&a| arr.data.load_i(a)).collect()),
        };
        Ok(out)
    }

    /// Compute per-lane flat addresses (for all lanes; masked lanes get the
    /// address of lane 0 to stay in bounds without affecting transactions).
    fn global_addresses(
        &mut self,
        pidx: usize,
        indices: &[Expr],
        line: usize,
    ) -> Result<Vec<u64>, ExecError> {
        let mut idx_vecs = Vec::with_capacity(indices.len());
        for ix in indices {
            let v = self.eval(ix, line)?.as_i();
            idx_vecs.push(match v {
                V::I(x) => x,
                V::F(_) => unreachable!(),
            });
        }
        // In a vector context even a uniform index is issued by every active
        // lane (a warp-wide broadcast), so widen to the full lane count.
        let lanes = if self.lanes > 1 {
            self.lanes
        } else {
            idx_vecs.iter().map(Vec::len).max().unwrap_or(1)
        };
        let ArgValue::Array(arr) = &self.args[pidx] else {
            return Err(self.err(line, "not an array"));
        };
        let mut addrs = vec![0u64; lanes.max(1)];
        let mut scratch_idx = vec![0i64; indices.len()];
        let mut first_valid: Option<u64> = None;
        for (lane, addr) in addrs.iter_mut().enumerate() {
            let active = if lanes == self.lanes {
                *self.mask.get(lane).unwrap_or(&true)
            } else {
                true
            };
            if !active {
                // Placeholder; fixed up below.
                continue;
            }
            for (k, iv) in idx_vecs.iter().enumerate() {
                scratch_idx[k] = if iv.len() == 1 { iv[0] } else { iv[lane] };
            }
            let flat = if arr.data.is_phantom() {
                arr.flat_index(&scratch_idx)
            } else {
                // Bounds check with a proper error instead of a panic.
                let mut flat: u64 = 0;
                for (d, &i) in arr.dims.iter().zip(&scratch_idx) {
                    if i < 0 || (i as u64) >= *d {
                        return Err(self.err(
                            line,
                            format!(
                                "index {i} out of bounds for dim {d} (array rank {})",
                                arr.rank()
                            ),
                        ));
                    }
                    flat = flat * d + i as u64;
                }
                flat
            };
            *addr = flat;
            if first_valid.is_none() {
                first_valid = Some(flat);
            }
        }
        let fill = first_valid.unwrap_or(0);
        for (lane, addr) in addrs.iter_mut().enumerate() {
            let active = if lanes == self.lanes {
                *self.mask.get(lane).unwrap_or(&true)
            } else {
                true
            };
            if !active {
                *addr = fill;
            }
        }
        Ok(addrs)
    }

    /// Account a global access: per warp, count distinct 32-byte segments.
    fn account_global(&mut self, line: usize, array: &str, is_store: bool, addrs: &[u64]) {
        self.issue(CYCLE_GLOBAL);
        let lanes = addrs.len();
        let mut transactions = 0u64;
        let mut active_lanes = 0u64;
        let mut all_same = true;
        let mut first_addr: Option<u64> = None;
        let full_vector = lanes == self.lanes;
        for (w, warp_addrs) in addrs.chunks(self.simd).enumerate() {
            self.seg_scratch.clear();
            for (l, &a) in warp_addrs.iter().enumerate() {
                let lane = w * self.simd + l;
                let active = if full_vector {
                    *self.mask.get(lane).unwrap_or(&true)
                } else {
                    true
                };
                if !active {
                    continue;
                }
                active_lanes += 1;
                match first_addr {
                    None => first_addr = Some(a),
                    Some(f) if f != a => all_same = false,
                    _ => {}
                }
                self.seg_scratch.push(a * ELEM_BYTES / TRANSACTION_BYTES);
            }
            self.seg_scratch.sort_unstable();
            self.seg_scratch.dedup();
            transactions += self.seg_scratch.len() as u64;
        }
        if active_lanes == 0 {
            return;
        }
        let ideal = active_lanes * ELEM_BYTES;
        // L1 model for loads: a warp re-issuing a recently seen address
        // pattern (loop-invariant loads, repeated broadcasts) hits the
        // cache and moves no DRAM bytes. Stores write through.
        let mut cached = false;
        if !is_store {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for a in addrs {
                h ^= *a;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let entry = self
                .site_cache
                .entry((line, array.to_string()))
                .or_default();
            if entry.contains(&h) {
                cached = true;
            } else {
                if entry.len() >= 8 {
                    entry.pop_front();
                }
                entry.push_back(h);
            }
        }
        let moved = if cached {
            0
        } else if all_same && active_lanes > 1 {
            // First touch of a warp-wide broadcast: a single element.
            ELEM_BYTES
        } else {
            transactions * TRANSACTION_BYTES
        };
        self.stats.global_bytes += moved as f64 * self.scale;
        self.stats.ideal_global_bytes += ideal as f64 * self.scale;
        let site = self
            .stats
            .sites
            .entry(SiteKey {
                line,
                array: array.to_string(),
                is_store,
            })
            .or_default();
        site.executions += self.scale;
        site.ideal_bytes += ideal as f64 * self.scale;
        site.transaction_bytes += moved as f64 * self.scale;
        if all_same && active_lanes > 1 {
            site.broadcasts += self.scale;
        }
    }

    /// Load from or store to a scratch (local/private) array.
    /// `store = Some(value)` performs a store; `None` a load.
    fn scratch_access(
        &mut self,
        name: &str,
        indices: &[Expr],
        line: usize,
        store: Option<V>,
    ) -> Result<V, ExecError> {
        let mut idx_vecs = Vec::with_capacity(indices.len());
        for ix in indices {
            let v = self.eval(ix, line)?.as_i();
            idx_vecs.push(match v {
                V::I(x) => x,
                V::F(_) => unreachable!(),
            });
        }
        // Shared (work-group local) memory costs more than thread-private
        // storage, which real compilers keep in registers.
        let mut idx_shared_probe = false;
        if let Some((_, Slot::Array(a))) = self.lookup(name) {
            idx_shared_probe = a.shared;
        }
        self.issue(if idx_shared_probe {
            CYCLE_LOCAL
        } else {
            CYCLE_BASIC
        });
        let lanes = self.lanes;
        let scale = self.scale;
        let active = self.active_count;
        let mask = self.mask.clone();
        let (_, slot) = self
            .lookup(name)
            .ok_or_else(|| self.err(line, format!("unbound array `{name}`")))?;
        let Slot::Array(_) = slot else {
            return Err(self.err(line, format!("`{name}` is not an array")));
        };
        // Re-borrow mutably by locating the frame.
        let fidx = self.lookup_frame_idx(name).expect("just found");
        let err_line = line;
        // Temporarily move the store out to avoid aliasing self.
        let mut arr = match self.env[fidx].vars.remove(name).expect("slot present") {
            Slot::Array(a) => a,
            Slot::Scalar(_) => unreachable!(),
        };
        // Private (per-lane) arrays are accessed by every lane even when the
        // index expression is uniform; shared arrays with uniform indices are
        // a broadcast and can stay uniform.
        let shared = arr.shared;
        let vec_lanes = if !shared && self.lanes > 1 {
            self.lanes
        } else {
            idx_vecs
                .iter()
                .map(Vec::len)
                .max()
                .unwrap_or(1)
                .max(store.as_ref().map_or(1, V::len))
        };
        if shared {
            self.stats.local_bytes += (active as u64 * ELEM_BYTES) as f64 * scale;
        }
        let mut scratch_idx = vec![0i64; indices.len()];
        let store = store.map(|v| v.broadcast(vec_lanes));
        let result = (|| -> Result<V, ExecError> {
            let mut out_f = Vec::new();
            let mut out_i = Vec::new();
            for lane in 0..vec_lanes {
                let lane_active = if vec_lanes == lanes {
                    *mask.get(lane).unwrap_or(&true)
                } else {
                    true
                };
                for (k, iv) in idx_vecs.iter().enumerate() {
                    scratch_idx[k] = if iv.len() == 1 { iv[0] } else { iv[lane] };
                }
                if !lane_active {
                    // Inactive lanes produce a dummy value / skip the store.
                    match arr.elem {
                        ElemTy::Float => out_f.push(0.0),
                        ElemTy::Int => out_i.push(0),
                    }
                    continue;
                }
                let flat = arr.flat(&scratch_idx, err_line)?;
                let s = arr.slot(flat, lane % arr.lanes.max(1));
                match &store {
                    Some(v) => {
                        match (v, arr.elem) {
                            (V::F(x), ElemTy::Float) => arr.fdata[s] = x[lane] as f32 as f64,
                            (V::I(x), ElemTy::Int) => arr.idata[s] = x[lane],
                            (V::I(x), ElemTy::Float) => arr.fdata[s] = x[lane] as f64,
                            (V::F(x), ElemTy::Int) => arr.idata[s] = x[lane] as i64,
                        }
                        match arr.elem {
                            ElemTy::Float => out_f.push(0.0),
                            ElemTy::Int => out_i.push(0),
                        }
                    }
                    None => match arr.elem {
                        ElemTy::Float => out_f.push(arr.fdata[s]),
                        ElemTy::Int => out_i.push(arr.idata[s]),
                    },
                }
            }
            Ok(match arr.elem {
                ElemTy::Float => V::F(out_f),
                ElemTy::Int => V::I(out_i),
            })
        })();
        self.env[fidx]
            .vars
            .insert(name.to_string(), Slot::Array(arr));
        result
    }

    // ---------------------------------------------------------- statements

    fn exec_block(&mut self, body: &[Stmt]) -> Result<(), ExecError> {
        self.push_frame();
        let r = self.exec_stmts(body);
        self.pop_frame();
        r
    }

    fn exec_stmts(&mut self, body: &[Stmt]) -> Result<(), ExecError> {
        for s in body {
            self.exec_stmt(s)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<(), ExecError> {
        let line = s.line;
        match &s.kind {
            StmtKind::DeclScalar { ty, name, init } => {
                let v = match init {
                    Some(e) => {
                        let v = self.eval(e, line)?;
                        match ty {
                            ElemTy::Int => v.as_i(),
                            ElemTy::Float => v.as_f(),
                        }
                    }
                    None => match ty {
                        ElemTy::Int => V::uniform_i(0),
                        ElemTy::Float => V::F(vec![0.0]),
                    },
                };
                self.declare(name, Slot::Scalar(v));
                Ok(())
            }
            StmtKind::DeclArray {
                space,
                ty,
                name,
                dims,
            } => {
                let mut sizes = Vec::with_capacity(dims.len());
                for d in dims {
                    let v = self.uniform_int(d, line, "array dimension")?;
                    if v <= 0 {
                        return Err(self.err(line, format!("array `{name}` has dim {v} <= 0")));
                    }
                    sizes.push(v as u64);
                }
                let shared = *space == Space::Local;
                let lanes = if shared { 1 } else { self.lanes.max(1) };
                self.declare(
                    name,
                    Slot::Array(ArrayStore::new(*ty, sizes, shared, lanes)),
                );
                Ok(())
            }
            StmtKind::Assign { target, op, value } => self.exec_assign(target, *op, value, line),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => self.exec_if(cond, then_branch, else_branch, line),
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => self.exec_for(init.as_deref(), cond.as_ref(), step.as_deref(), body, line),
            StmtKind::Foreach {
                var,
                count,
                unit,
                body,
            } => self.exec_foreach(var, count, unit, body, line),
            StmtKind::Barrier => {
                self.issue(CYCLE_BARRIER);
                self.stats.barriers += self.scale;
                Ok(())
            }
        }
    }

    fn exec_assign(
        &mut self,
        target: &LValue,
        op: AssignOp,
        value: &Expr,
        line: usize,
    ) -> Result<(), ExecError> {
        // FMA fusion: `x += a * b` on a scalar target issues once for 2 flops.
        let fused = if op == AssignOp::Add && target.indices.is_empty() {
            if let Expr::Binary {
                op: BinOp::Mul,
                lhs,
                rhs,
            } = value
            {
                let a = self.eval(lhs, line)?;
                let b = self.eval(rhs, line)?;
                if a.is_float() || b.is_float() {
                    let lanes = a.len().max(b.len());
                    let (V::F(x), V::F(y)) = (a.broadcast(lanes).as_f(), b.broadcast(lanes).as_f())
                    else {
                        unreachable!()
                    };
                    self.issue(CYCLE_BASIC);
                    self.count_flops(2.0);
                    Some(V::F(x.iter().zip(&y).map(|(&p, &q)| p * q).collect()))
                } else {
                    let v = self.apply_bin(BinOp::Mul, a, b, line)?;
                    Some(v)
                }
            } else {
                None
            }
        } else {
            None
        };

        let was_fused = fused.is_some();

        if target.indices.is_empty() {
            // Scalar target.
            let (fidx, slot) = self
                .lookup(&target.name)
                .ok_or_else(|| self.err(line, format!("unbound variable `{}`", target.name)))?;
            let Slot::Scalar(old) = slot else {
                return Err(self.err(line, format!("`{}` is an array", target.name)));
            };
            let old = old.clone();
            if let Some(base) = self.vector_base {
                if fidx < base && self.lanes > 1 {
                    return Err(self.err(
                        line,
                        format!(
                            "write to `{}` from parallel context (declared outside the vectorized foreach) — a data race on real hardware",
                            target.name
                        ),
                    ));
                }
            }
            let rhs = match fused {
                Some(v) => v,
                None => self.eval(value, line)?,
            };
            let new = self.combine(op, old, rhs, was_fused, line)?;
            // Masked update.
            let new = self.masked_scalar_update(&target.name, fidx, new)?;
            if let Some(Slot::Scalar(v)) = self.env[fidx].vars.get_mut(&target.name) {
                *v = new;
            }
            Ok(())
        } else if self.lookup(&target.name).is_some() {
            // Scratch array element.
            let rhs = match fused {
                Some(v) => v,
                None => self.eval(value, line)?,
            };
            let final_v = if op == AssignOp::Set && !was_fused {
                rhs
            } else {
                let old = self.scratch_access(&target.name, &target.indices, line, None)?;
                self.combine(op, old, rhs, was_fused, line)?
            };
            self.scratch_access(&target.name, &target.indices, line, Some(final_v))?;
            Ok(())
        } else {
            // Global array element.
            let &pidx = self
                .param_index
                .get(&target.name)
                .ok_or_else(|| self.err(line, format!("unbound array `{}`", target.name)))?;
            let rhs = match fused {
                Some(v) => v,
                None => self.eval(value, line)?,
            };
            let addrs = self.global_addresses(pidx, &target.indices, line)?;
            let final_v = if op == AssignOp::Set && !was_fused {
                rhs
            } else {
                // read-modify-write
                self.account_global(line, &target.name, false, &addrs);
                let ArgValue::Array(arr) = &self.args[pidx] else {
                    unreachable!()
                };
                let elem = arr.data.elem();
                let old = match elem {
                    ElemTy::Float => V::F(addrs.iter().map(|&a| arr.data.load_f(a)).collect()),
                    ElemTy::Int => V::I(addrs.iter().map(|&a| arr.data.load_i(a)).collect()),
                };
                self.combine(op, old, rhs, was_fused, line)?
            };
            self.account_global(line, &target.name, true, &addrs);
            let lanes = addrs.len();
            let full_vector = lanes == self.lanes;
            let mask = self.mask.clone();
            let ArgValue::Array(arr) = &mut self.args[pidx] else {
                unreachable!()
            };
            let v = final_v.broadcast(lanes);
            for (lane, &a) in addrs.iter().enumerate() {
                let active = if full_vector {
                    *mask.get(lane).unwrap_or(&true)
                } else {
                    true
                };
                if !active {
                    continue;
                }
                match &v {
                    V::F(x) => arr.data.store_f(a, x[lane]),
                    V::I(x) => arr.data.store_i(a, x[lane]),
                }
            }
            Ok(())
        }
    }

    /// Combine old and rhs according to the assignment operator. `fused`
    /// means the add was already accounted as part of an FMA.
    fn combine(
        &mut self,
        op: AssignOp,
        old: V,
        rhs: V,
        fused: bool,
        line: usize,
    ) -> Result<V, ExecError> {
        let v = match op {
            AssignOp::Set => rhs,
            AssignOp::Add => {
                if fused {
                    // fma: old + (a*b), no extra issue
                    let lanes = old.len().max(rhs.len());
                    if old.is_float() || rhs.is_float() {
                        let (V::F(x), V::F(y)) =
                            (old.broadcast(lanes).as_f(), rhs.broadcast(lanes).as_f())
                        else {
                            unreachable!()
                        };
                        V::F(x.iter().zip(&y).map(|(&p, &q)| p + q).collect())
                    } else {
                        self.apply_bin(BinOp::Add, old, rhs, line)?
                    }
                } else {
                    self.apply_bin(BinOp::Add, old, rhs, line)?
                }
            }
            AssignOp::Sub => self.apply_bin(BinOp::Sub, old, rhs, line)?,
            AssignOp::Mul => self.apply_bin(BinOp::Mul, old, rhs, line)?,
            AssignOp::Div => self.apply_bin(BinOp::Div, old, rhs, line)?,
        };
        Ok(v)
    }

    /// Apply the activity mask to a scalar update: inactive lanes keep their
    /// old value.
    fn masked_scalar_update(&mut self, name: &str, fidx: usize, new: V) -> Result<V, ExecError> {
        if self.lanes == 1 || self.active_count == self.lanes {
            return Ok(new);
        }
        let Some(Slot::Scalar(old)) = self.env[fidx].vars.get(name) else {
            return Ok(new);
        };
        let lanes = self.lanes;
        let old = old.broadcast(lanes);
        let new = new.broadcast(lanes);
        Ok(match (old, new) {
            (V::F(o), nv) => {
                let V::F(n) = nv.as_f() else { unreachable!() };
                V::F(
                    (0..lanes)
                        .map(|l| if self.mask[l] { n[l] } else { o[l] })
                        .collect(),
                )
            }
            (V::I(o), nv) => {
                let V::I(n) = nv.as_i() else { unreachable!() };
                V::I(
                    (0..lanes)
                        .map(|l| if self.mask[l] { n[l] } else { o[l] })
                        .collect(),
                )
            }
        })
    }

    fn to_mask(&self, v: &V) -> Vec<bool> {
        let lanes = self.lanes;
        let v = v.broadcast(lanes);
        match v {
            V::I(x) => x.iter().map(|&b| b != 0).collect(),
            V::F(x) => x.iter().map(|&b| b != 0.0).collect(),
        }
    }

    /// Record warp-level branch statistics for a condition mask.
    fn record_branch(&mut self, cond_mask: &[bool]) {
        for (w, warp) in self.mask.chunks(self.simd).enumerate() {
            let lo = w * self.simd;
            let mut taken = 0usize;
            let mut not_taken = 0usize;
            for (l, &active) in warp.iter().enumerate() {
                if !active {
                    continue;
                }
                if cond_mask[lo + l] {
                    taken += 1;
                } else {
                    not_taken += 1;
                }
            }
            if taken + not_taken == 0 {
                continue;
            }
            self.stats.branch_events += self.scale;
            if taken > 0 && not_taken > 0 {
                self.stats.divergent_branches += self.scale;
            }
        }
    }

    /// A branch whose bodies only assign scalars compiles to predicated
    /// select instructions on real hardware — no warp divergence. Anything
    /// with loops, arrays, barriers or nesting takes a real branch.
    fn is_predicatable(body: &[Stmt]) -> bool {
        body.len() <= 4
            && body.iter().all(|s| {
                matches!(
                    &s.kind,
                    StmtKind::Assign { target, .. } if target.indices.is_empty()
                )
            })
    }

    fn exec_if(
        &mut self,
        cond: &Expr,
        then_branch: &[Stmt],
        else_branch: &[Stmt],
        line: usize,
    ) -> Result<(), ExecError> {
        let c = self.eval(cond, line)?;
        let cmask = self.to_mask(&c);
        let predicated = Self::is_predicatable(then_branch) && Self::is_predicatable(else_branch);
        if !predicated {
            self.record_branch(&cmask);
        }
        let saved = self.mask.clone();
        // then
        let tmask: Vec<bool> = saved.iter().zip(&cmask).map(|(&m, &c)| m && c).collect();
        if tmask.iter().any(|&b| b) && !then_branch.is_empty() {
            self.mask = tmask;
            self.refresh_mask_cache();
            self.exec_block(then_branch)?;
        }
        // else
        let emask: Vec<bool> = saved.iter().zip(&cmask).map(|(&m, &c)| m && !c).collect();
        if emask.iter().any(|&b| b) && !else_branch.is_empty() {
            self.mask = emask;
            self.refresh_mask_cache();
            self.exec_block(else_branch)?;
        }
        self.mask = saved;
        self.refresh_mask_cache();
        Ok(())
    }

    fn exec_for(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Stmt>,
        body: &[Stmt],
        line: usize,
    ) -> Result<(), ExecError> {
        self.push_frame();
        let saved = self.mask.clone();
        let result = (|| -> Result<(), ExecError> {
            if let Some(i) = init {
                self.exec_stmt(i)?;
            }
            let mut guard: u64 = 0;
            loop {
                guard += 1;
                if guard > 1_000_000_000 {
                    return Err(self.err(line, "loop exceeded 1e9 iterations (runaway?)"));
                }
                if let Some(c) = cond {
                    let v = self.eval(c, line)?;
                    let cmask = self.to_mask(&v);
                    if self.lanes > 1 {
                        self.record_branch(&cmask);
                    }
                    let new_mask: Vec<bool> = self
                        .mask
                        .iter()
                        .zip(&cmask)
                        .map(|(&m, &c)| m && c)
                        .collect();
                    if !new_mask.iter().any(|&b| b) {
                        break;
                    }
                    self.mask = new_mask;
                    self.refresh_mask_cache();
                }
                self.exec_block(body)?;
                if let Some(st) = step {
                    self.exec_stmt(st)?;
                }
                if cond.is_none() {
                    return Err(self.err(line, "for loop without condition never terminates"));
                }
            }
            Ok(())
        })();
        self.mask = saved;
        self.refresh_mask_cache();
        self.pop_frame();
        result
    }

    /// Evaluate an expression that must be lane-uniform, returning the int.
    fn uniform_int(&mut self, e: &Expr, line: usize, what: &str) -> Result<i64, ExecError> {
        let v = self.eval(e, line)?.as_i();
        let V::I(x) = v else { unreachable!() };
        let first = x[0];
        if x.iter().any(|&y| y != first) {
            return Err(self.err(line, format!("{what} must be lane-uniform")));
        }
        Ok(first)
    }

    fn exec_foreach(
        &mut self,
        var: &str,
        count: &Expr,
        unit: &str,
        body: &[Stmt],
        line: usize,
    ) -> Result<(), ExecError> {
        if self.lanes != 1 {
            return Err(self.err(line, "foreach inside a vectorized foreach"));
        }
        let n = self.uniform_int(count, line, "foreach count")?;
        if n < 0 {
            return Err(self.err(line, format!("foreach count {n} < 0")));
        }
        let n = n as u64;
        if n == 0 {
            return Ok(());
        }
        // Vectorize iff this is the innermost parallelism unit and the body
        // contains no further foreach.
        let innermost_unit = self.unit_order.last().cloned().unwrap_or_default();
        let mut has_inner_foreach = false;
        walk_stmts(body, &mut |s| {
            if matches!(s.kind, StmtKind::Foreach { .. }) {
                has_inner_foreach = true;
            }
        });
        let vectorize = unit == innermost_unit && !has_inner_foreach;

        if vectorize {
            let gs = self.group_size as u64;
            let chunks = n.div_ceil(gs);
            let run_chunks = match self.sample {
                Some(s) => chunks.min(s.max_chunks as u64),
                None => chunks,
            };
            let outer_scale = self.scale;
            if run_chunks < chunks {
                self.scale = outer_scale * chunks as f64 / run_chunks as f64;
            }
            for chunk in 0..run_chunks {
                let base = chunk * gs;
                let lanes = (n - base).min(gs) as usize;
                // Enter vector context.
                let saved_mask = std::mem::replace(&mut self.mask, vec![true; lanes]);
                let saved_lanes = std::mem::replace(&mut self.lanes, lanes);
                let saved_base = self.vector_base;
                self.vector_base = Some(self.env.len());
                self.refresh_mask_cache();
                self.stats.raw_lanes += lanes as f64;
                self.stats.total_threads += lanes as f64 * self.scale;
                self.stats.groups += self.scale;
                self.push_frame();
                self.declare(
                    var,
                    Slot::Scalar(V::I((0..lanes).map(|l| base as i64 + l as i64).collect())),
                );
                let r = self.exec_stmts(body);
                self.pop_frame();
                // Leave vector context.
                self.mask = saved_mask;
                self.lanes = saved_lanes;
                self.vector_base = saved_base;
                self.refresh_mask_cache();
                r?;
            }
            self.scale = outer_scale;
        } else {
            // Sequential-parallel: iterate (sampled) with a uniform index.
            let run = match self.sample {
                Some(s) => n.min(s.max_outer_iters as u64),
                None => n,
            };
            let outer_scale = self.scale;
            if run < n {
                self.scale = outer_scale * n as f64 / run as f64;
            }
            for it in 0..run {
                self.push_frame();
                self.declare(var, Slot::Scalar(V::uniform_i(it as i64)));
                let r = self.exec_stmts(body);
                self.pop_frame();
                r?;
            }
            self.scale = outer_scale;
        }
        Ok(())
    }
}

/// Execute a checked kernel.
pub fn execute(
    ck: &CheckedKernel,
    args: Vec<ArgValue>,
    par_units: &[String],
    opts: &ExecOptions,
) -> Result<ExecResult, ExecError> {
    if args.len() != ck.kernel.params.len() {
        return Err(ExecError {
            line: 1,
            message: format!(
                "kernel `{}` takes {} arguments, got {}",
                ck.kernel.name,
                ck.kernel.params.len(),
                args.len()
            ),
        });
    }
    let mut param_index = HashMap::new();
    let mut base = Frame {
        vars: HashMap::new(),
    };
    for (i, (p, a)) in ck.kernel.params.iter().zip(&args).enumerate() {
        match (p.is_array(), a) {
            (false, ArgValue::Int(v)) => {
                base.vars
                    .insert(p.name.clone(), Slot::Scalar(V::uniform_i(*v)));
            }
            (false, ArgValue::Float(v)) => {
                base.vars
                    .insert(p.name.clone(), Slot::Scalar(V::F(vec![*v])));
            }
            (true, ArgValue::Array(arr)) => {
                if arr.rank() != p.dims.len() {
                    return Err(ExecError {
                        line: 1,
                        message: format!(
                            "argument `{}`: rank {} expected, got {}",
                            p.name,
                            p.dims.len(),
                            arr.rank()
                        ),
                    });
                }
                param_index.insert(p.name.clone(), i);
            }
            _ => {
                return Err(ExecError {
                    line: 1,
                    message: format!("argument `{}` kind mismatch", p.name),
                })
            }
        }
    }

    let mut interp = Interp {
        args,
        param_index,
        env: vec![base],
        lanes: 1,
        mask: vec![true],
        active_count: 1,
        warps_active: 1,
        vector_base: None,
        simd: opts.simd_width.max(1),
        group_size: opts.group_size.max(1),
        sample: opts.sample,
        scale: 1.0,
        stats: KernelStats::default(),
        unit_order: par_units.to_vec(),
        seg_scratch: Vec::new(),
        site_cache: HashMap::new(),
    };
    interp.refresh_mask_cache();

    // Validate declared dims against actual buffers.
    for (p, i) in interp.param_index.clone() {
        let param = ck
            .kernel
            .params
            .iter()
            .find(|q| q.name == p)
            .expect("param exists");
        let mut expect = Vec::new();
        for d in &param.dims {
            expect.push(interp.uniform_int(d, 1, "array dimension")? as u64);
        }
        // Dimension expressions cost nothing at runtime; remove their issues.
        let ArgValue::Array(arr) = &interp.args[i] else {
            unreachable!()
        };
        if arr.dims != expect {
            return Err(ExecError {
                line: 1,
                message: format!(
                    "argument `{p}`: declared dims {expect:?} but buffer has {:?}",
                    arr.dims
                ),
            });
        }
    }
    // Dim validation above polluted the stats; reset before the real run.
    interp.stats = KernelStats::default();

    interp.exec_stmts(&ck.kernel.body)?;
    Ok(ExecResult {
        args: interp.args,
        stats: interp.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::parse::parse;
    use crate::value::ArrayArg;
    use cashmere_hwdesc::standard_hierarchy;

    fn run(src: &str, args: Vec<ArgValue>, opts: &ExecOptions) -> Result<ExecResult, ExecError> {
        let h = standard_hierarchy();
        let k = parse(src).expect("parse");
        let ck = check(&k, &h).expect("check");
        let units: Vec<String> = h
            .effective_params(ck.level)
            .par_units
            .iter()
            .map(|p| p.name.clone())
            .collect();
        execute(&ck, args, &units, opts)
    }

    const SAXPY: &str = "perfect void saxpy(int n, float alpha, float[n] y, float[n] x) {
  foreach (int i in n threads) {
    y[i] += alpha * x[i];
  }
}";

    #[test]
    fn saxpy_computes() {
        let n = 100u64;
        let x = ArrayArg::float(&[n], (0..n).map(|i| i as f64).collect());
        let y = ArrayArg::float(&[n], vec![1.0; n as usize]);
        let r = run(
            SAXPY,
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Float(2.0),
                ArgValue::Array(y),
                ArgValue::Array(x),
            ],
            &ExecOptions::default(),
        )
        .unwrap();
        let y = r.args[2].clone().array();
        for i in 0..n {
            assert_eq!(y.as_f64()[i as usize], 1.0 + 2.0 * i as f64, "i={i}");
        }
        assert_eq!(r.stats.total_threads, 100.0);
        assert!(r.stats.flops >= 200.0, "2 flops per element (fma)");
        // stride-1 loads/stores are coalesced
        assert!(r.stats.coalescing_efficiency() > 0.9);
    }

    #[test]
    fn fig3_matmul_matches_reference() {
        let (n, m, p) = (7u64, 5u64, 9u64);
        let a: Vec<f64> = (0..n * p).map(|i| (i % 13) as f64 * 0.5).collect();
        let b: Vec<f64> = (0..p * m).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut c_ref = vec![0.0f64; (n * m) as usize];
        for i in 0..n {
            for j in 0..m {
                let mut sum = 0.0;
                for k in 0..p {
                    sum += a[(i * p + k) as usize] * b[(k * m + j) as usize];
                }
                c_ref[(i * m + j) as usize] = f64::from((sum) as f32);
            }
        }
        let src =
            "perfect void matmul(int n, int m, int p, float[n,m] c, float[n,p] a, float[p,m] b) {
  foreach (int i in n threads) {
    foreach (int j in m threads) {
      float sum = 0.0;
      for (int k = 0; k < p; k++) { sum += a[i,k] * b[k,j]; }
      c[i,j] += sum;
    }
  }
}";
        let r = run(
            src,
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Int(m as i64),
                ArgValue::Int(p as i64),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[n, m])),
                ArgValue::Array(ArrayArg::float(&[n, p], a)),
                ArgValue::Array(ArrayArg::float(&[p, m], b)),
            ],
            &ExecOptions::default(),
        )
        .unwrap();
        let c = r.args[3].clone().array();
        for (got, want) in c.as_f64().iter().zip(&c_ref) {
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
        assert_eq!(r.stats.total_threads, (n * m) as f64);
        // 2 flops per k-iteration per output element via FMA, plus the
        // final `c[i,j] += sum` add.
        let expect_flops = (2 * n * m * p + n * m) as f64;
        assert!(
            (r.stats.flops - expect_flops).abs() / expect_flops < 0.05,
            "flops {} vs {expect_flops}",
            r.stats.flops
        );
    }

    #[test]
    fn divergence_is_detected() {
        // Odd lanes take a different path than even lanes: every warp diverges.
        let src = "perfect void t(int n, float[n] a) {
  foreach (int i in n threads) {
    if (i % 2 == 0) { a[i] = 1.0; } else { a[i] = 2.0; }
  }
}";
        let r = run(
            src,
            vec![
                ArgValue::Int(64),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[64])),
            ],
            &ExecOptions::default(),
        )
        .unwrap();
        assert!(
            r.stats.divergence_rate() > 0.9,
            "{}",
            r.stats.divergence_rate()
        );
        let a = r.args[1].clone().array();
        assert_eq!(a.as_f64()[0], 1.0);
        assert_eq!(a.as_f64()[1], 2.0);
    }

    #[test]
    fn convergent_control_flow_has_no_divergence() {
        let src = "perfect void t(int n, float[n] a) {
  foreach (int i in n threads) {
    if (n > 10) { a[i] = 1.0; } else { a[i] = 2.0; }
  }
}";
        let r = run(
            src,
            vec![
                ArgValue::Int(64),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[64])),
            ],
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(r.stats.divergence_rate(), 0.0);
    }

    #[test]
    fn strided_access_wastes_bandwidth() {
        // Lanes access a[i*16]: only one useful element per 32-byte segment.
        let src = "perfect void t(int n, float[n] a) {
  foreach (int i in n / 16 threads) {
    a[i * 16] = 1.0;
  }
}";
        let r = run(
            src,
            vec![
                ArgValue::Int(1024),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[1024])),
            ],
            &ExecOptions::default(),
        )
        .unwrap();
        assert!(
            r.stats.coalescing_efficiency() < 0.2,
            "{}",
            r.stats.coalescing_efficiency()
        );
        let key = r.stats.sites.keys().find(|k| k.is_store).unwrap();
        assert!(r.stats.sites[key].overhead() > 4.0);
    }

    #[test]
    fn local_memory_tiling_with_barrier() {
        // Reverse each 64-element tile through local memory — requires
        // working barrier + shared local array semantics.
        let src = "gpu void rev(int n, float[n] a) {
  foreach (int b in n / 64 blocks) {
    local float tile[64];
    foreach (int t in 64 threads) {
      tile[t] = a[b * 64 + t];
      barrier();
      a[b * 64 + t] = tile[63 - t];
    }
  }
}";
        let n = 128u64;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let r = run(
            src,
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Array(ArrayArg::float(&[n], data)),
            ],
            &ExecOptions {
                group_size: 64,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        let a = r.args[1].clone().array();
        // first tile reversed
        assert_eq!(a.as_f64()[0], 63.0);
        assert_eq!(a.as_f64()[63], 0.0);
        // second tile reversed
        assert_eq!(a.as_f64()[64], 127.0);
        assert!(r.stats.uses_local_memory());
        assert_eq!(r.stats.barriers, 2.0, "one barrier per block");
        assert_eq!(r.stats.groups, 2.0);
    }

    #[test]
    fn per_lane_private_arrays() {
        let src = "perfect void t(int n, float[n] out) {
  foreach (int i in n threads) {
    float acc[2];
    acc[0] = (float) i;
    acc[1] = acc[0] * 2.0;
    out[i] = acc[1];
  }
}";
        let r = run(
            src,
            vec![
                ArgValue::Int(8),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[8])),
            ],
            &ExecOptions::default(),
        )
        .unwrap();
        let out = r.args[1].clone().array();
        for i in 0..8 {
            assert_eq!(out.as_f64()[i], 2.0 * i as f64);
        }
    }

    #[test]
    fn varying_trip_count_loops() {
        // Each lane loops i times: masked loop execution must be correct.
        let src = "perfect void t(int n, float[n] out) {
  foreach (int i in n threads) {
    float s = 0.0;
    for (int k = 0; k < i; k++) { s += 1.0; }
    out[i] = s;
  }
}";
        let r = run(
            src,
            vec![
                ArgValue::Int(40),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[40])),
            ],
            &ExecOptions::default(),
        )
        .unwrap();
        let out = r.args[1].clone().array();
        for i in 0..40 {
            assert_eq!(out.as_f64()[i], i as f64, "lane {i}");
        }
        // lanes finish at different times ⇒ lane efficiency < 1
        assert!(r.stats.lane_efficiency() < 1.0);
    }

    #[test]
    fn write_to_outer_uniform_from_parallel_context_fails() {
        let src = "gpu void t(int n, float[n] a) {
  foreach (int b in 1 blocks) {
    float shared_scalar = 0.0;
    foreach (int t in 64 threads) {
      shared_scalar = (float) t;
      a[t] = shared_scalar;
    }
  }
}";
        let err = run(
            src,
            vec![
                ArgValue::Int(64),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[64])),
            ],
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert!(err.message.contains("data race"), "{err}");
    }

    #[test]
    fn sampled_mode_scales_counters() {
        let n = 4096u64;
        let full = run(
            SAXPY,
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Float(2.0),
                ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n])),
                ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n])),
            ],
            &ExecOptions {
                sample: None,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        let sampled = run(
            SAXPY,
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Float(2.0),
                ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n])),
                ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n])),
            ],
            &ExecOptions {
                sample: Some(Sampling::default()),
                ..ExecOptions::default()
            },
        )
        .unwrap();
        // Sampled run interprets only 2 of 16 chunks but reports full totals.
        assert!(sampled.stats.raw_lanes < full.stats.raw_lanes);
        assert_eq!(sampled.stats.total_threads, full.stats.total_threads);
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(rel(sampled.stats.flops, full.stats.flops) < 0.01);
        assert!(rel(sampled.stats.issue_cycles, full.stats.issue_cycles) < 0.01);
        assert!(rel(sampled.stats.global_bytes, full.stats.global_bytes) < 0.01);
        assert_eq!(sampled.stats.groups, full.stats.groups);
    }

    #[test]
    fn bad_argument_counts_and_dims() {
        let err = run(SAXPY, vec![ArgValue::Int(4)], &ExecOptions::default()).unwrap_err();
        assert!(err.message.contains("takes 4 arguments"));
        let err2 = run(
            SAXPY,
            vec![
                ArgValue::Int(8),
                ArgValue::Float(1.0),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[4])), // wrong size
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[8])),
            ],
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert!(err2.message.contains("declared dims"), "{err2}");
    }

    #[test]
    fn out_of_bounds_is_an_error_not_a_panic() {
        let src = "perfect void t(int n, float[n] a) {
  foreach (int i in n threads) {
    a[i + 1] = 0.0;
  }
}";
        let err = run(
            src,
            vec![
                ArgValue::Int(4),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[4])),
            ],
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert!(err.message.contains("out of bounds"), "{err}");
    }

    #[test]
    fn broadcast_loads_detected() {
        let src = "perfect void t(int n, float[n] a, float[n] b) {
  foreach (int i in n threads) {
    b[i] = a[0];
  }
}";
        let r = run(
            src,
            vec![
                ArgValue::Int(64),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[64])),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[64])),
            ],
            &ExecOptions::default(),
        )
        .unwrap();
        let load_site = r
            .stats
            .sites
            .iter()
            .find(|(k, _)| !k.is_store)
            .map(|(_, v)| v)
            .unwrap();
        assert!(load_site.broadcast_fraction() > 0.9);
    }

    #[test]
    fn integer_bit_ops_work() {
        let src = "perfect void t(int n, int[n] s) {
  foreach (int i in n threads) {
    int x = s[i];
    x = x ^ (x << 13);
    x = x ^ (x >> 7);
    x = x ^ (x << 17);
    s[i] = x & 2147483647;
  }
}";
        let r = run(
            src,
            vec![
                ArgValue::Int(4),
                ArgValue::Array(ArrayArg::int(&[4], vec![1, 2, 3, 4])),
            ],
            &ExecOptions::default(),
        )
        .unwrap();
        let s = r.args[1].clone().array();
        // xorshift of distinct seeds gives distinct values
        let v = s.as_i64();
        assert!(v.iter().all(|&x| x >= 0));
        assert_ne!(v[0], v[1]);
    }

    #[test]
    fn phantom_run_produces_same_stats_as_real() {
        let n = 512u64;
        let mk_real = || {
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Float(2.0),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[n])),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[n])),
            ]
        };
        let mk_phantom = || {
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Float(2.0),
                ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n])),
                ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n])),
            ]
        };
        let a = run(SAXPY, mk_real(), &ExecOptions::default()).unwrap();
        let b = run(SAXPY, mk_phantom(), &ExecOptions::default()).unwrap();
        assert_eq!(a.stats.issue_cycles, b.stats.issue_cycles);
        assert_eq!(a.stats.global_bytes, b.stats.global_bytes);
        assert_eq!(a.stats.flops, b.stats.flops);
    }
}
