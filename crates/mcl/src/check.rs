//! Semantic analysis for MCPL kernels.
//!
//! The checker validates a parsed kernel against a hardware-description
//! level: names resolve, types agree (with implicit int→float widening, as
//! in C), array ranks match, `foreach` statements use parallelism units the
//! level actually defines and nest outer-before-inner, `barrier()` appears
//! only inside thread-level parallelism, and `local` arrays are declared in
//! group scope. The result, [`CheckedKernel`], is what the interpreter,
//! analyzer and translator consume.

use crate::ast::*;
use cashmere_hwdesc::{Hierarchy, LevelId};
use std::collections::HashMap;
use std::fmt;

/// Semantic error, with the source line where known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MCPL check error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for CheckError {}

/// Type of an expression or variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    Int,
    Float,
    /// Array of `ElemTy` with the given rank; arrays are not first-class
    /// values — they only appear indexed or as call-free parameters.
    Array(ElemTy, usize),
}

impl Ty {
    fn scalar(e: ElemTy) -> Ty {
        match e {
            ElemTy::Int => Ty::Int,
            ElemTy::Float => Ty::Float,
        }
    }
}

/// A checked kernel, ready for interpretation/translation.
#[derive(Debug, Clone)]
pub struct CheckedKernel {
    pub kernel: Kernel,
    /// Level the kernel is written for, resolved in the hierarchy.
    pub level: LevelId,
    /// Names of scalar int parameters (usable in array dims).
    pub scalar_params: Vec<String>,
    /// Array parameters with their element type and rank.
    pub array_params: Vec<(String, ElemTy, usize)>,
}

/// Builtin function signatures: `(name, arity, float_result)`.
/// `min`/`max`/`abs` are polymorphic (int if all args int).
const BUILTINS: &[(&str, usize)] = &[
    ("sqrt", 1),
    ("rsqrt", 1),
    ("fabs", 1),
    ("floor", 1),
    ("exp", 1),
    ("log", 1),
    ("sin", 1),
    ("cos", 1),
    ("tan", 1),
    ("pow", 2),
    ("min", 2),
    ("max", 2),
    ("abs", 1),
    ("clamp", 3),
];

struct Scope {
    vars: Vec<HashMap<String, Ty>>,
}

impl Scope {
    fn new() -> Self {
        Scope {
            vars: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.vars.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.vars.pop();
    }

    fn declare(&mut self, name: &str, ty: Ty, line: usize) -> Result<(), CheckError> {
        let top = self.vars.last_mut().expect("scope stack never empty");
        if top.contains_key(name) {
            return Err(CheckError {
                line,
                message: format!("`{name}` already declared in this scope"),
            });
        }
        top.insert(name.to_string(), ty);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Ty> {
        self.vars.iter().rev().find_map(|m| m.get(name).copied())
    }
}

struct Checker<'h> {
    hierarchy: &'h Hierarchy,
    /// Parallelism units the kernel's level exposes, outer → inner.
    par_units: Vec<String>,
    scope: Scope,
    /// Stack of foreach unit indices currently open.
    foreach_stack: Vec<usize>,
}

impl<'h> Checker<'h> {
    fn err(&self, line: usize, msg: impl Into<String>) -> CheckError {
        CheckError {
            line,
            message: msg.into(),
        }
    }

    fn check_body(&mut self, body: &[Stmt]) -> Result<(), CheckError> {
        self.scope.push();
        for s in body {
            self.check_stmt(s)?;
        }
        self.scope.pop();
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<(), CheckError> {
        let line = s.line;
        match &s.kind {
            StmtKind::DeclScalar { ty, name, init } => {
                if let Some(e) = init {
                    let ety = self.expr_ty(e, line)?;
                    self.check_assignable(Ty::scalar(*ty), ety, line, name)?;
                }
                self.scope.declare(name, Ty::scalar(*ty), line)
            }
            StmtKind::DeclArray {
                space,
                ty,
                name,
                dims,
            } => {
                if *space == Space::Local && self.foreach_stack.is_empty() {
                    return Err(self.err(line, "`local` arrays must be declared inside a foreach"));
                }
                for d in dims {
                    let dty = self.expr_ty(d, line)?;
                    if dty != Ty::Int {
                        return Err(self.err(line, format!("array `{name}` dimension must be int")));
                    }
                }
                self.scope.declare(name, Ty::Array(*ty, dims.len()), line)
            }
            StmtKind::Assign {
                target,
                op: _,
                value,
            } => {
                let tty = self.lvalue_ty(target, line)?;
                let vty = self.expr_ty(value, line)?;
                self.check_assignable(tty, vty, line, &target.name)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cty = self.expr_ty(cond, line)?;
                if matches!(cty, Ty::Array(..)) {
                    return Err(self.err(line, "if condition cannot be an array"));
                }
                self.check_body(then_branch)?;
                self.check_body(else_branch)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scope.push();
                if let Some(i) = init {
                    self.check_stmt(i)?;
                }
                if let Some(c) = cond {
                    let cty = self.expr_ty(c, line)?;
                    if matches!(cty, Ty::Array(..)) {
                        return Err(self.err(line, "for condition cannot be an array"));
                    }
                }
                if let Some(st) = step {
                    self.check_stmt(st)?;
                }
                self.check_body(body)?;
                self.scope.pop();
                Ok(())
            }
            StmtKind::Foreach {
                var,
                count,
                unit,
                body,
            } => {
                let cty = self.expr_ty(count, line)?;
                if cty != Ty::Int {
                    return Err(self.err(line, "foreach count must be int"));
                }
                let idx = self
                    .par_units
                    .iter()
                    .position(|u| u == unit)
                    .ok_or_else(|| {
                        self.err(
                            line,
                            format!(
                                "parallelism unit `{unit}` not defined at this level (available: {})",
                                self.par_units.join(", ")
                            ),
                        )
                    })?;
                if let Some(&outer) = self.foreach_stack.last() {
                    if idx < outer {
                        return Err(self.err(
                            line,
                            format!(
                                "foreach over `{unit}` cannot nest inside `{}` (outer units first)",
                                self.par_units[outer]
                            ),
                        ));
                    }
                }
                self.foreach_stack.push(idx);
                self.scope.push();
                self.scope.declare(var, Ty::Int, line)?;
                for st in body {
                    self.check_stmt(st)?;
                }
                self.scope.pop();
                self.foreach_stack.pop();
                Ok(())
            }
            StmtKind::Barrier => {
                let innermost_is_threadlike = self
                    .foreach_stack
                    .last()
                    .map(|&i| i == self.par_units.len() - 1)
                    .unwrap_or(false);
                if !innermost_is_threadlike {
                    return Err(self.err(
                        line,
                        "barrier() only inside the innermost parallelism unit's foreach",
                    ));
                }
                Ok(())
            }
        }
    }

    fn check_assignable(
        &self,
        target: Ty,
        value: Ty,
        line: usize,
        name: &str,
    ) -> Result<(), CheckError> {
        match (target, value) {
            (Ty::Int, Ty::Int) | (Ty::Float, Ty::Float) | (Ty::Float, Ty::Int) => Ok(()),
            (Ty::Int, Ty::Float) => Err(self.err(
                line,
                format!("implicit float→int narrowing assigning to `{name}` (use a cast)"),
            )),
            _ => Err(self.err(line, format!("cannot assign to `{name}`: type mismatch"))),
        }
    }

    fn lvalue_ty(&mut self, lv: &LValue, line: usize) -> Result<Ty, CheckError> {
        let base = self
            .scope
            .lookup(&lv.name)
            .ok_or_else(|| self.err(line, format!("unknown variable `{}`", lv.name)))?;
        if lv.indices.is_empty() {
            if matches!(base, Ty::Array(..)) {
                return Err(self.err(line, format!("cannot assign whole array `{}`", lv.name)));
            }
            Ok(base)
        } else {
            match base {
                Ty::Array(elem, rank) => {
                    if lv.indices.len() != rank {
                        return Err(self.err(
                            line,
                            format!(
                                "`{}` has rank {rank}, indexed with {} indices",
                                lv.name,
                                lv.indices.len()
                            ),
                        ));
                    }
                    for ix in &lv.indices {
                        if self.expr_ty(ix, line)? != Ty::Int {
                            return Err(self.err(line, "array index must be int"));
                        }
                    }
                    Ok(Ty::scalar(elem))
                }
                _ => Err(self.err(line, format!("`{}` is not an array", lv.name))),
            }
        }
    }

    fn expr_ty(&self, e: &Expr, line: usize) -> Result<Ty, CheckError> {
        match e {
            Expr::IntLit(_) => Ok(Ty::Int),
            Expr::FloatLit(_) => Ok(Ty::Float),
            Expr::Var(name) => self
                .scope
                .lookup(name)
                .ok_or_else(|| self.err(line, format!("unknown variable `{name}`"))),
            Expr::Index { array, indices } => {
                let base = self
                    .scope
                    .lookup(array)
                    .ok_or_else(|| self.err(line, format!("unknown array `{array}`")))?;
                match base {
                    Ty::Array(elem, rank) => {
                        if indices.len() != rank {
                            return Err(self.err(
                                line,
                                format!(
                                    "`{array}` has rank {rank}, indexed with {} indices",
                                    indices.len()
                                ),
                            ));
                        }
                        for ix in indices {
                            if self.expr_ty(ix, line)? != Ty::Int {
                                return Err(self.err(line, "array index must be int"));
                            }
                        }
                        Ok(Ty::scalar(elem))
                    }
                    _ => Err(self.err(line, format!("`{array}` is not an array"))),
                }
            }
            Expr::Unary { op, operand } => {
                let t = self.expr_ty(operand, line)?;
                match op {
                    UnOp::Neg => match t {
                        Ty::Int | Ty::Float => Ok(t),
                        _ => Err(self.err(line, "cannot negate an array")),
                    },
                    UnOp::Not | UnOp::BitNot => {
                        if t == Ty::Int {
                            Ok(Ty::Int)
                        } else {
                            Err(self.err(line, "logical/bit operators need int operands"))
                        }
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.expr_ty(lhs, line)?;
                let rt = self.expr_ty(rhs, line)?;
                if matches!(lt, Ty::Array(..)) || matches!(rt, Ty::Array(..)) {
                    return Err(self.err(line, "arrays are not scalar operands"));
                }
                if op.int_only() {
                    if lt != Ty::Int || rt != Ty::Int {
                        return Err(
                            self.err(line, format!("operator {op:?} requires int operands"))
                        );
                    }
                    return Ok(Ty::Int);
                }
                if op.is_comparison() {
                    return Ok(Ty::Int);
                }
                if lt == Ty::Float || rt == Ty::Float {
                    Ok(Ty::Float)
                } else {
                    Ok(Ty::Int)
                }
            }
            Expr::Call { name, args } => {
                let (_, arity) = BUILTINS
                    .iter()
                    .find(|(n, _)| n == name)
                    .ok_or_else(|| self.err(line, format!("unknown builtin `{name}`")))?;
                if args.len() != *arity {
                    return Err(self.err(
                        line,
                        format!("`{name}` takes {arity} arguments, got {}", args.len()),
                    ));
                }
                let mut all_int = true;
                for a in args {
                    match self.expr_ty(a, line)? {
                        Ty::Int => {}
                        Ty::Float => all_int = false,
                        Ty::Array(..) => {
                            return Err(self.err(line, "arrays are not call arguments"))
                        }
                    }
                }
                // min/max/abs/clamp are polymorphic; everything else is float.
                let poly = matches!(name.as_str(), "min" | "max" | "abs" | "clamp");
                if poly && all_int {
                    Ok(Ty::Int)
                } else {
                    Ok(Ty::Float)
                }
            }
            Expr::Cast { to, operand } => {
                let t = self.expr_ty(operand, line)?;
                if matches!(t, Ty::Array(..)) {
                    return Err(self.err(line, "cannot cast an array"));
                }
                Ok(Ty::scalar(*to))
            }
        }
    }
}

/// Check a kernel against the hierarchy. The kernel's `level` field names
/// the hardware description it is written for.
pub fn check(kernel: &Kernel, hierarchy: &Hierarchy) -> Result<CheckedKernel, CheckError> {
    let level = hierarchy.id(&kernel.level).ok_or_else(|| CheckError {
        line: 1,
        message: format!("unknown hardware description `{}`", kernel.level),
    })?;
    let params = hierarchy.effective_params(level);
    let par_units: Vec<String> = params.par_units.iter().map(|p| p.name.clone()).collect();
    if par_units.is_empty() {
        return Err(CheckError {
            line: 1,
            message: format!("level `{}` defines no parallelism units", kernel.level),
        });
    }

    let mut checker = Checker {
        hierarchy,
        par_units,
        scope: Scope::new(),
        foreach_stack: Vec::new(),
    };
    let _ = checker.hierarchy; // reserved for future cross-level checks

    // Parameters: scalars first in scope, then arrays (dims may reference
    // any scalar parameter).
    let mut scalar_params = Vec::new();
    let mut array_params = Vec::new();
    for p in &kernel.params {
        if !p.is_array() {
            checker.scope.declare(&p.name, Ty::scalar(p.elem), 1)?;
            if p.elem == ElemTy::Int {
                scalar_params.push(p.name.clone());
            }
        }
    }
    for p in &kernel.params {
        if p.is_array() {
            for d in &p.dims {
                let t = checker.expr_ty(d, 1)?;
                if t != Ty::Int {
                    return Err(CheckError {
                        line: 1,
                        message: format!("array `{}` dims must be int expressions", p.name),
                    });
                }
            }
            checker
                .scope
                .declare(&p.name, Ty::Array(p.elem, p.dims.len()), 1)?;
            array_params.push((p.name.clone(), p.elem, p.dims.len()));
        }
    }

    checker.check_body(&kernel.body)?;

    Ok(CheckedKernel {
        kernel: kernel.clone(),
        level,
        scalar_params,
        array_params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use cashmere_hwdesc::standard_hierarchy;

    fn check_src(src: &str) -> Result<CheckedKernel, CheckError> {
        let h = standard_hierarchy();
        let k = parse(src).map_err(|e| CheckError {
            line: e.line,
            message: e.message,
        })?;
        check(&k, &h)
    }

    #[test]
    fn fig3_checks() {
        let ck = check_src(
            "perfect void matmul(int n, int m, int p, float[n,m] c, float[n,p] a, float[p,m] b) {
  foreach (int i in n threads) {
    foreach (int j in m threads) {
      float sum = 0.0;
      for (int k = 0; k < p; k++) { sum += a[i,k] * b[k,j]; }
      c[i,j] += sum;
    }
  }
}",
        )
        .unwrap();
        assert_eq!(ck.scalar_params, vec!["n", "m", "p"]);
        assert_eq!(ck.array_params.len(), 3);
    }

    #[test]
    fn unknown_level_rejected() {
        let err = check_src("nonsense void t(int n) { }").unwrap_err();
        assert!(err.message.contains("unknown hardware description"));
    }

    #[test]
    fn unknown_unit_rejected() {
        let err = check_src(
            "perfect void t(int n, float[n] a) { foreach (int i in n blocks) { a[i] = 0.0; } }",
        )
        .unwrap_err();
        assert!(err.message.contains("`blocks` not defined"), "{err}");
    }

    #[test]
    fn gpu_units_nest_outer_first() {
        // blocks-inside-threads is rejected…
        let err = check_src(
            "gpu void t(int n, float[n] a) {
  foreach (int t in 256 threads) {
    foreach (int b in n blocks) { a[b] = 0.0; }
  }
}",
        )
        .unwrap_err();
        assert!(err.message.contains("cannot nest"), "{err}");
        // …threads-inside-blocks is fine.
        assert!(check_src(
            "gpu void t(int n, float[n] a) {
  foreach (int b in n / 256 blocks) {
    foreach (int t in 256 threads) { a[b * 256 + t] = 0.0; }
  }
}",
        )
        .is_ok());
    }

    #[test]
    fn barrier_needs_thread_foreach() {
        let err = check_src("gpu void t(int n) { barrier(); }").unwrap_err();
        assert!(err.message.contains("barrier"), "{err}");
        let err2 = check_src(
            "gpu void t(int n, float[n] a) { foreach (int b in n blocks) { barrier(); } }",
        )
        .unwrap_err();
        assert!(err2.message.contains("barrier"), "{err2}");
    }

    #[test]
    fn narrowing_assignment_rejected() {
        let err = check_src(
            "perfect void t(int n, int[n] a) { foreach (int i in n threads) { a[i] = 1.5; } }",
        )
        .unwrap_err();
        assert!(err.message.contains("narrowing"), "{err}");
        // with a cast it is fine
        assert!(check_src(
            "perfect void t(int n, int[n] a) { foreach (int i in n threads) { a[i] = (int) 1.5; } }"
        )
        .is_ok());
    }

    #[test]
    fn rank_mismatch_rejected() {
        let err = check_src(
            "perfect void t(int n, float[n,n] a) { foreach (int i in n threads) { a[i] = 0.0; } }",
        )
        .unwrap_err();
        assert!(err.message.contains("rank 2"), "{err}");
    }

    #[test]
    fn unknown_variable_and_builtin() {
        let err = check_src(
            "perfect void t(int n, float[n] a) { foreach (int i in n threads) { a[i] = bogus; } }",
        )
        .unwrap_err();
        assert!(err.message.contains("unknown variable"));
        let err2 = check_src(
            "perfect void t(int n, float[n] a) { foreach (int i in n threads) { a[i] = frob(1.0); } }",
        )
        .unwrap_err();
        assert!(err2.message.contains("unknown builtin"));
    }

    #[test]
    fn int_only_ops_reject_floats() {
        let err = check_src(
            "perfect void t(int n, float[n] a) { foreach (int i in n threads) { int x = i % 2; a[i] = 0.0; x = x << 1; float f = a[i]; x = x & (int) f; int y = i % (int) a[i]; } }",
        );
        assert!(err.is_ok(), "{err:?}");
        let err2 = check_src(
            "perfect void t(int n, float[n] a) { foreach (int i in n threads) { a[i] = a[i] % 2.0; } }",
        )
        .unwrap_err();
        assert!(err2.message.contains("requires int"), "{err2}");
    }

    #[test]
    fn local_outside_foreach_rejected() {
        let err = check_src("gpu void t(int n) { local float tile[16]; }").unwrap_err();
        assert!(err.message.contains("inside a foreach"), "{err}");
    }

    #[test]
    fn shadowing_in_same_scope_rejected() {
        let err = check_src(
            "perfect void t(int n, float[n] a) { foreach (int i in n threads) { float x = 0.0; float x = 1.0; a[i] = x; } }",
        )
        .unwrap_err();
        assert!(err.message.contains("already declared"), "{err}");
    }

    #[test]
    fn polymorphic_min_max() {
        let ck = check_src(
            "perfect void t(int n, int[n] a, float[n] b) { foreach (int i in n threads) { a[i] = min(a[i], 3); b[i] = max(b[i], 0.0); } }",
        );
        assert!(ck.is_ok(), "{ck:?}");
    }
}
