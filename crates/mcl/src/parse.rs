//! Lexer and recursive-descent parser for MCPL.
//!
//! The grammar follows the paper's Fig. 3 closely:
//!
//! ```text
//! perfect void matmul(int n, int m, int p,
//!     float[n,m] c, float[n,p] a, float[p,m] b) {
//!   foreach (int i in n threads) {
//!     foreach (int j in m threads) {
//!       float sum = 0.0;
//!       for (int k = 0; k < p; k++) {
//!         sum += a[i,k] * b[k,j];
//!       }
//!       c[i,j] += sum;
//!     }
//!   }
//! }
//! ```
//!
//! A source file contains exactly one kernel. The leading identifier names
//! the hardware-description level the kernel is written for.

use crate::ast::*;
use std::fmt;

/// Parse error with 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MCPL parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    // operators
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    AndAnd,
    OrOr,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
}

struct Lexed {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<Lexed>, ParseError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = bytes.len();
    macro_rules! push {
        ($t:expr) => {
            out.push(Lexed { tok: $t, line })
        };
    }
    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                i += 2;
                while i + 1 < n && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= n {
                    return Err(ParseError {
                        line,
                        message: "unterminated block comment".into(),
                    });
                }
                i += 2;
            }
            '(' => {
                push!(Tok::LParen);
                i += 1;
            }
            ')' => {
                push!(Tok::RParen);
                i += 1;
            }
            '{' => {
                push!(Tok::LBrace);
                i += 1;
            }
            '}' => {
                push!(Tok::RBrace);
                i += 1;
            }
            '[' => {
                push!(Tok::LBracket);
                i += 1;
            }
            ']' => {
                push!(Tok::RBracket);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma);
                i += 1;
            }
            ';' => {
                push!(Tok::Semi);
                i += 1;
            }
            '~' => {
                push!(Tok::Tilde);
                i += 1;
            }
            '^' => {
                push!(Tok::Caret);
                i += 1;
            }
            '%' => {
                push!(Tok::Percent);
                i += 1;
            }
            '+' => {
                if i + 1 < n && bytes[i + 1] == '+' {
                    push!(Tok::PlusPlus);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::PlusAssign);
                    i += 2;
                } else {
                    push!(Tok::Plus);
                    i += 1;
                }
            }
            '-' => {
                if i + 1 < n && bytes[i + 1] == '-' {
                    push!(Tok::MinusMinus);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::MinusAssign);
                    i += 2;
                } else {
                    push!(Tok::Minus);
                    i += 1;
                }
            }
            '*' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::StarAssign);
                    i += 2;
                } else {
                    push!(Tok::Star);
                    i += 1;
                }
            }
            '/' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::SlashAssign);
                    i += 2;
                } else {
                    push!(Tok::Slash);
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < n && bytes[i + 1] == '&' {
                    push!(Tok::AndAnd);
                    i += 2;
                } else {
                    push!(Tok::Amp);
                    i += 1;
                }
            }
            '|' => {
                if i + 1 < n && bytes[i + 1] == '|' {
                    push!(Tok::OrOr);
                    i += 2;
                } else {
                    push!(Tok::Pipe);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == '<' {
                    push!(Tok::Shl);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::Le);
                    i += 2;
                } else {
                    push!(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == '>' {
                    push!(Tok::Shr);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::Ge);
                    i += 2;
                } else {
                    push!(Tok::Gt);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::EqEq);
                    i += 2;
                } else {
                    push!(Tok::Assign);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    push!(Tok::NotEq);
                    i += 2;
                } else {
                    push!(Tok::Bang);
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < n && (bytes[i].is_ascii_digit() || bytes[i] == '_') {
                    i += 1;
                }
                if i < n && bytes[i] == '.' && i + 1 < n && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < n && (bytes[i] == 'e' || bytes[i] == 'E') {
                    is_float = true;
                    i += 1;
                    if i < n && (bytes[i] == '+' || bytes[i] == '-') {
                        i += 1;
                    }
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // trailing f suffix as in C float literals
                let text: String = bytes[start..i].iter().filter(|c| **c != '_').collect();
                if i < n && bytes[i] == 'f' {
                    is_float = true;
                    i += 1;
                }
                if is_float {
                    let v: f64 = text.parse().map_err(|_| ParseError {
                        line,
                        message: format!("bad float literal `{text}`"),
                    })?;
                    push!(Tok::Float(v));
                } else {
                    let v: i64 = text.parse().map_err(|_| ParseError {
                        line,
                        message: format!("bad int literal `{text}`"),
                    })?;
                    push!(Tok::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                push!(Tok::Ident(bytes[start..i].iter().collect()));
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Lexed>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|l| &l.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|l| &l.tok)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |l| l.line)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|l| l.tok.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == t {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, got {got:?}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }

    fn elem_ty(&mut self) -> Result<ElemTy, ParseError> {
        let id = self.expect_ident()?;
        match id.as_str() {
            "int" => Ok(ElemTy::Int),
            "float" => Ok(ElemTy::Float),
            other => Err(self.err(format!("expected type (int/float), got `{other}`"))),
        }
    }

    fn is_type_ident(t: Option<&Tok>) -> bool {
        matches!(t, Some(Tok::Ident(s)) if s == "int" || s == "float" || s == "local")
    }

    // kernel := ident("level") "void" ident "(" params ")" block
    fn kernel(&mut self) -> Result<Kernel, ParseError> {
        let level = self.expect_ident()?;
        let ret = self.expect_ident()?;
        if ret != "void" {
            return Err(self.err(format!("kernels return void, got `{ret}`")));
        }
        let name = self.expect_ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                params.push(self.param()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        if self.peek().is_some() {
            return Err(self.err("trailing tokens after kernel body"));
        }
        Ok(Kernel {
            level,
            name,
            params,
            body,
        })
    }

    // param := ty ident | ty "[" expr,* "]" ident
    fn param(&mut self) -> Result<Param, ParseError> {
        let elem = self.elem_ty()?;
        let mut dims = Vec::new();
        if self.eat(&Tok::LBracket) {
            loop {
                dims.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RBracket)?;
        }
        let name = self.expect_ident()?;
        Ok(Param { name, elem, dims })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::Ident(id)) => match id.as_str() {
                "if" => self.if_stmt(),
                "for" => self.for_stmt(),
                "foreach" => self.foreach_stmt(),
                "barrier" => {
                    self.next()?;
                    self.expect(Tok::LParen)?;
                    self.expect(Tok::RParen)?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::new(line, StmtKind::Barrier))
                }
                "local" | "int" | "float" => self.decl_stmt(),
                _ => {
                    let s = self.assign_stmt()?;
                    self.expect(Tok::Semi)?;
                    Ok(s)
                }
            },
            _ => Err(self.err("expected statement")),
        }
    }

    // decl := ("local")? ty ident ("=" expr)? ";"
    //       | ("local")? ty ident "[" expr,* "]" ";"
    fn decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let mut space = Space::Private;
        if let Some(Tok::Ident(id)) = self.peek() {
            if id == "local" {
                self.next()?;
                space = Space::Local;
            }
        }
        let ty = self.elem_ty()?;
        let name = self.expect_ident()?;
        if self.eat(&Tok::LBracket) {
            let mut dims = Vec::new();
            loop {
                dims.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RBracket)?;
            self.expect(Tok::Semi)?;
            Ok(Stmt::new(
                line,
                StmtKind::DeclArray {
                    space,
                    ty,
                    name,
                    dims,
                },
            ))
        } else {
            if space == Space::Local {
                return Err(self.err("`local` requires an array declaration"));
            }
            let init = if self.eat(&Tok::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(Tok::Semi)?;
            Ok(Stmt::new(line, StmtKind::DeclScalar { ty, name, init }))
        }
    }

    // assignment or ++/--, without the trailing semicolon (shared with `for`)
    fn assign_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let name = self.expect_ident()?;
        let mut indices = Vec::new();
        if self.eat(&Tok::LBracket) {
            loop {
                indices.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RBracket)?;
        }
        let target = LValue {
            name: name.clone(),
            indices,
        };
        let tok = self.next()?;
        let (op, value) = match tok {
            Tok::Assign => (AssignOp::Set, self.expr()?),
            Tok::PlusAssign => (AssignOp::Add, self.expr()?),
            Tok::MinusAssign => (AssignOp::Sub, self.expr()?),
            Tok::StarAssign => (AssignOp::Mul, self.expr()?),
            Tok::SlashAssign => (AssignOp::Div, self.expr()?),
            Tok::PlusPlus => (AssignOp::Add, Expr::IntLit(1)),
            Tok::MinusMinus => (AssignOp::Sub, Expr::IntLit(1)),
            other => return Err(self.err(format!("expected assignment operator, got {other:?}"))),
        };
        Ok(Stmt::new(line, StmtKind::Assign { target, op, value }))
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.next()?; // if
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then_branch = self.block()?;
        let else_branch = if let Some(Tok::Ident(id)) = self.peek() {
            if id == "else" {
                self.next()?;
                if let Some(Tok::Ident(id2)) = self.peek() {
                    if id2 == "if" {
                        vec![self.if_stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    self.block()?
                }
            } else {
                vec![]
            }
        } else {
            vec![]
        };
        Ok(Stmt::new(
            line,
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
        ))
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.next()?; // for
        self.expect(Tok::LParen)?;
        let init = if self.peek() == Some(&Tok::Semi) {
            self.next()?;
            None
        } else if Self::is_type_ident(self.peek()) {
            let d = self.decl_stmt()?; // consumes the `;`
            Some(Box::new(d))
        } else {
            let s = self.assign_stmt()?;
            self.expect(Tok::Semi)?;
            Some(Box::new(s))
        };
        let cond = if self.peek() == Some(&Tok::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(Tok::Semi)?;
        let step = if self.peek() == Some(&Tok::RParen) {
            None
        } else {
            Some(Box::new(self.assign_stmt()?))
        };
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        Ok(Stmt::new(
            line,
            StmtKind::For {
                init,
                cond,
                step,
                body,
            },
        ))
    }

    // foreach := "foreach" "(" "int" ident "in" expr ident ")" block
    fn foreach_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.next()?; // foreach
        self.expect(Tok::LParen)?;
        let ty = self.expect_ident()?;
        if ty != "int" {
            return Err(self.err("foreach variable must be int"));
        }
        let var = self.expect_ident()?;
        let kw = self.expect_ident()?;
        if kw != "in" {
            return Err(self.err(format!("expected `in`, got `{kw}`")));
        }
        let count = self.expr()?;
        let unit = self.expect_ident()?;
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        Ok(Stmt::new(
            line,
            StmtKind::Foreach {
                var,
                count,
                unit,
                body,
            },
        ))
    }

    // Pratt-style precedence climbing.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Some(Tok::OrOr) => (BinOp::Or, 1),
                Some(Tok::AndAnd) => (BinOp::And, 2),
                Some(Tok::Pipe) => (BinOp::BitOr, 3),
                Some(Tok::Caret) => (BinOp::BitXor, 4),
                Some(Tok::Amp) => (BinOp::BitAnd, 5),
                Some(Tok::EqEq) => (BinOp::Eq, 6),
                Some(Tok::NotEq) => (BinOp::Ne, 6),
                Some(Tok::Lt) => (BinOp::Lt, 7),
                Some(Tok::Le) => (BinOp::Le, 7),
                Some(Tok::Gt) => (BinOp::Gt, 7),
                Some(Tok::Ge) => (BinOp::Ge, 7),
                Some(Tok::Shl) => (BinOp::Shl, 8),
                Some(Tok::Shr) => (BinOp::Shr, 8),
                Some(Tok::Plus) => (BinOp::Add, 9),
                Some(Tok::Minus) => (BinOp::Sub, 9),
                Some(Tok::Star) => (BinOp::Mul, 10),
                Some(Tok::Slash) => (BinOp::Div, 10),
                Some(Tok::Percent) => (BinOp::Mod, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.next()?;
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.next()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(self.unary()?),
                })
            }
            Some(Tok::Bang) => {
                self.next()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    operand: Box::new(self.unary()?),
                })
            }
            Some(Tok::Tilde) => {
                self.next()?;
                Ok(Expr::Unary {
                    op: UnOp::BitNot,
                    operand: Box::new(self.unary()?),
                })
            }
            // cast: "(" ("int"|"float") ")" unary
            Some(Tok::LParen) if matches!(self.peek2(), Some(Tok::Ident(s)) if s=="int"||s=="float") =>
            {
                // Look ahead for the closing paren to distinguish a cast from
                // a parenthesized variable named `int` (impossible — keyword),
                // so this is unambiguous.
                self.next()?;
                let to = self.elem_ty()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::Cast {
                    to,
                    operand: Box::new(self.unary()?),
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        match self.next()? {
            Tok::Int(v) => Ok(Expr::IntLit(v)),
            Tok::Float(v) => Ok(Expr::FloatLit(v)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call { name, args })
                } else if self.eat(&Tok::LBracket) {
                    let mut indices = Vec::new();
                    loop {
                        indices.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RBracket)?;
                    Ok(Expr::Index {
                        array: name,
                        indices,
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected expression, got {other:?}"))),
        }
    }
}

/// Parse one MCPL kernel from source text.
pub fn parse(src: &str) -> Result<Kernel, ParseError> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.kernel()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 3 kernel, verbatim modulo formatting.
    pub const FIG3: &str = "\
perfect void matmul(int n, int m, int p,
    float[n,m] c,
    float[n,p] a, float[p,m] b) {
  foreach (int i in n threads) {
    foreach (int j in m threads) {
      float sum = 0.0;
      for (int k = 0; k < p; k++) {
        sum += a[i,k] * b[k,j];
      }
      c[i,j] += sum;
    }
  }
}";

    #[test]
    fn parses_fig3() {
        let k = parse(FIG3).unwrap();
        assert_eq!(k.level, "perfect");
        assert_eq!(k.name, "matmul");
        assert_eq!(k.params.len(), 6);
        assert!(k.params[3].is_array());
        assert_eq!(k.params[3].dims.len(), 2);
        assert_eq!(foreach_units(&k), vec!["threads"]);
        // outer foreach over i, inner over j, then decl/for/assign
        match &k.body[0].kind {
            StmtKind::Foreach {
                var, unit, body, ..
            } => {
                assert_eq!(var, "i");
                assert_eq!(unit, "threads");
                match &body[0].kind {
                    StmtKind::Foreach { var, body, .. } => {
                        assert_eq!(var, "j");
                        assert_eq!(body.len(), 3);
                    }
                    other => panic!("expected inner foreach, got {other:?}"),
                }
            }
            other => panic!("expected foreach, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_with_plusplus_and_compound_assign() {
        let k = parse(FIG3).unwrap();
        // dig to the for statement
        let StmtKind::Foreach { body, .. } = &k.body[0].kind else {
            panic!()
        };
        let StmtKind::Foreach { body, .. } = &body[0].kind else {
            panic!()
        };
        let StmtKind::For {
            init, cond, step, ..
        } = &body[1].kind
        else {
            panic!("expected for")
        };
        assert!(init.is_some());
        assert!(cond.is_some());
        let StmtKind::Assign { op, .. } = &step.as_ref().unwrap().kind else {
            panic!()
        };
        assert_eq!(*op, AssignOp::Add, "k++ desugars to k += 1");
    }

    #[test]
    fn parses_local_arrays_and_barrier() {
        let src = "
gpu void t(int n, float[n] a) {
  foreach (int b in n / 256 blocks) {
    local float tile[256];
    foreach (int t in 256 threads) {
      tile[t] = a[b * 256 + t];
      barrier();
      a[b * 256 + t] = tile[255 - t];
    }
  }
}";
        let k = parse(src).unwrap();
        assert_eq!(k.level, "gpu");
        let StmtKind::Foreach { body, .. } = &k.body[0].kind else {
            panic!()
        };
        let StmtKind::DeclArray { space, dims, .. } = &body[0].kind else {
            panic!("expected local decl, got {:?}", body[0].kind)
        };
        assert_eq!(*space, Space::Local);
        assert_eq!(dims.len(), 1);
        let StmtKind::Foreach { body: tb, .. } = &body[1].kind else {
            panic!()
        };
        assert!(matches!(tb[1].kind, StmtKind::Barrier));
    }

    #[test]
    fn precedence_mul_over_add_over_cmp() {
        let k = parse("perfect void t(int n, float[n] a) { foreach (int i in n threads) { if (i + 2 * 3 < n) { a[i] = 1.0; } } }").unwrap();
        let StmtKind::Foreach { body, .. } = &k.body[0].kind else {
            panic!()
        };
        let StmtKind::If { cond, .. } = &body[0].kind else {
            panic!()
        };
        // (i + (2*3)) < n
        let Expr::Binary {
            op: BinOp::Lt, lhs, ..
        } = cond
        else {
            panic!("expected <, got {cond:?}")
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = lhs.as_ref()
        else {
            panic!()
        };
        assert!(matches!(rhs.as_ref(), Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_casts_and_bit_ops() {
        let src = "perfect void t(int n, int[n] s) {
  foreach (int i in n threads) {
    int x = s[i];
    x = x ^ (x << 13);
    x = x ^ (x >> 7);
    float f = (float) (x & 8388607) / 8388608.0;
    s[i] = (int) (f * 2.0);
  }
}";
        let k = parse(src).unwrap();
        assert_eq!(k.name, "t");
    }

    #[test]
    fn parses_else_if_chain() {
        let src = "perfect void t(int n, float[n] a) {
  foreach (int i in n threads) {
    if (i < 1) { a[i] = 0.0; }
    else if (i < 2) { a[i] = 1.0; }
    else { a[i] = 2.0; }
  }
}";
        let k = parse(src).unwrap();
        let StmtKind::Foreach { body, .. } = &k.body[0].kind else {
            panic!()
        };
        let StmtKind::If { else_branch, .. } = &body[0].kind else {
            panic!()
        };
        assert!(matches!(else_branch[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn error_reports_line() {
        let err = parse("perfect void t(int n) {\n  bogus bogus bogus;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn error_non_void_return() {
        assert!(parse("perfect int t() { }").is_err());
    }

    #[test]
    fn error_local_scalar() {
        let err = parse("gpu void t(int n) { local float x; }").unwrap_err();
        assert!(err.message.contains("array"), "{err}");
    }

    #[test]
    fn error_unterminated_comment() {
        assert!(parse("perfect void t() { /* oops ").is_err());
    }

    #[test]
    fn float_literal_forms() {
        let k =
            parse("perfect void t(int n, float[n] a) { foreach (int i in n threads) { a[i] = 1.5e-3f + 2.0 + 3f; } }");
        assert!(k.is_ok(), "{k:?}");
    }
}
