//! Register-bytecode VM for compiled MCPL kernels.
//!
//! Executes a [`crate::compile::Program`] with the same warp-synchronous
//! activity-mask semantics as the tree walker ([`crate::interp`]) and
//! produces **bit-identical** [`KernelStats`]: every `f64` counter is
//! accumulated by the same sequence of additions, in the same order, with
//! the same association as the tree walker performs them. Per-site stats
//! are accumulated into a dense vector indexed by interned site id (the
//! per-site addend sequence is the site's execution order, identical to the
//! tree walker's `BTreeMap` entries) and only materialized into the result
//! map at the end.
//!
//! What makes it fast rather than just equivalent:
//!
//! * variables live in a flat register pool — no `HashMap` scope walks;
//! * values are reused buffers ([`VBuf`]) — uniform values stay length-1
//!   and are read through stride-0 indexing instead of being materialized
//!   as broadcast vectors, so the steady state allocates nothing;
//! * site keys and the L1-model cache lines are interned integers — no
//!   `String` hashing on every global access;
//! * control flow is explicit jumps over a linear instruction array.

use crate::ast::{AssignOp, BinOp, ElemTy, UnOp};
use crate::check::CheckedKernel;
use crate::compile::{compile_program, Builtin, Instr, Program};
use crate::interp::{ExecError, ExecOptions, ExecResult, Sampling};
use crate::stats::{KernelStats, SiteStats};
use crate::value::ArgValue;
use std::collections::VecDeque;
use std::mem;
use std::sync::atomic::{AtomicU8, Ordering};

// Instruction costs — must match crate::interp exactly.
const CYCLE_BASIC: f64 = 1.0;
const CYCLE_SPECIAL: f64 = 8.0;
const CYCLE_LOCAL: f64 = 2.0;
const CYCLE_GLOBAL: f64 = 4.0;
const CYCLE_BARRIER: f64 = 4.0;
const TRANSACTION_BYTES: u64 = 32;
const ELEM_BYTES: u64 = 4;

/// A lane-varying value: the active vector is `i` or `f` per the runtime
/// type tag, and its length is 1 (uniform) or the current lane count.
/// Uniform values are read through stride-0 indexing — the VM never
/// materializes broadcasts.
#[derive(Debug, Clone, Default)]
struct VBuf {
    is_f: bool,
    i: Vec<i64>,
    f: Vec<f64>,
}

impl VBuf {
    #[inline]
    fn len(&self) -> usize {
        if self.is_f {
            self.f.len()
        } else {
            self.i.len()
        }
    }

    /// Lane read as int (with the tree walker's `f64 as i64` cast).
    #[inline]
    fn get_i(&self, lane: usize) -> i64 {
        if self.is_f {
            let v = &self.f;
            v[if v.len() == 1 { 0 } else { lane }] as i64
        } else {
            let v = &self.i;
            v[if v.len() == 1 { 0 } else { lane }]
        }
    }

    /// Lane read as float (with the tree walker's `i64 as f64` cast).
    #[inline]
    fn get_f(&self, lane: usize) -> f64 {
        if self.is_f {
            let v = &self.f;
            v[if v.len() == 1 { 0 } else { lane }]
        } else {
            let v = &self.i;
            v[if v.len() == 1 { 0 } else { lane }] as f64
        }
    }

    fn set_uniform_i(&mut self, x: i64) {
        self.is_f = false;
        self.i.clear();
        self.f.clear();
        self.i.push(x);
    }

    fn set_uniform_f(&mut self, x: f64) {
        self.is_f = true;
        self.i.clear();
        self.f.clear();
        self.f.push(x);
    }

    /// Start writing an int result; returns the cleared backing vector.
    fn begin_i(&mut self) -> &mut Vec<i64> {
        self.is_f = false;
        self.f.clear();
        self.i.clear();
        &mut self.i
    }

    /// Start writing a float result.
    fn begin_f(&mut self) -> &mut Vec<f64> {
        self.is_f = true;
        self.i.clear();
        self.f.clear();
        &mut self.f
    }

    fn copy_from(&mut self, src: &VBuf) {
        self.is_f = src.is_f;
        self.i.clear();
        self.f.clear();
        if src.is_f {
            self.f.extend_from_slice(&src.f);
        } else {
            self.i.extend_from_slice(&src.i);
        }
    }

    /// Render like the tree walker's `V` for error messages
    /// (`F([1.0])` / `I([3])`).
    fn debug_v(&self) -> String {
        if self.is_f {
            format!("F({:?})", self.f)
        } else {
            format!("I({:?})", self.i)
        }
    }
}

/// Storage for a `local` (work-group shared) or private array. Mirrors the
/// tree walker's `ArrayStore`, re-initialized on every declaration.
#[derive(Debug, Clone)]
struct ScratchArr {
    dims: Vec<u64>,
    shared: bool,
    lanes: usize,
    elem: ElemTy,
    fdata: Vec<f64>,
    idata: Vec<i64>,
}

impl Default for ScratchArr {
    fn default() -> Self {
        ScratchArr {
            dims: Vec::new(),
            shared: false,
            lanes: 1,
            elem: ElemTy::Int,
            fdata: Vec::new(),
            idata: Vec::new(),
        }
    }
}

impl ScratchArr {
    fn flat(&self, idx: &[i64], line: usize) -> Result<u64, ExecError> {
        let mut flat: u64 = 0;
        for (d, &i) in self.dims.iter().zip(idx) {
            if i < 0 || (i as u64) >= *d {
                return Err(ExecError {
                    line,
                    message: format!("scratch index {i} out of bounds for dim {d}"),
                });
            }
            flat = flat * d + i as u64;
        }
        Ok(flat)
    }

    #[inline]
    fn slot(&self, flat: u64, lane: usize) -> usize {
        if self.shared {
            flat as usize
        } else {
            flat as usize * self.lanes + lane
        }
    }
}

/// Per-site accumulator; materialized into the stats map at the end.
#[derive(Debug, Clone, Default)]
struct SiteAcc {
    s: SiteStats,
    touched: bool,
}

#[derive(Debug, Default)]
struct IfFrame {
    saved: Vec<bool>,
    cmask: Vec<bool>,
    /// `Some(c)` when the condition was lane-uniform (no cmask stored).
    cond_uniform: Option<bool>,
    /// Any *active* lane with a false condition (drives the else branch).
    any_not: bool,
    /// The then-branch narrowed `mask` (so `saved` must be restored).
    dirty: bool,
}

#[derive(Debug, Default)]
struct ForFrame {
    saved: Vec<bool>,
    cmask: Vec<bool>,
    guard: u64,
    /// The loop narrowed `mask` since entry (restore on exit).
    dirty: bool,
}

#[derive(Debug, Default)]
struct FeFrame {
    outer_scale: f64,
    n: u64,
    idx: u64,
    run: u64,
    var: u32,
    saved_lanes: usize,
    saved_mask: Vec<bool>,
}

struct Vm<'p> {
    prog: &'p Program,
    args: Vec<ArgValue>,
    pool: Vec<VBuf>,
    arrays: Vec<ScratchArr>,
    lanes: usize,
    mask: Vec<bool>,
    active: usize,
    warps: usize,
    simd: usize,
    group: usize,
    sample: Option<Sampling>,
    scale: f64,
    st: KernelStats,
    acc: Vec<SiteAcc>,
    caches: Vec<VecDeque<u64>>,
    seg: Vec<u64>,
    addrs: Vec<u64>,
    sidx: Vec<i64>,
    dim_stack: Vec<i64>,
    t0: VBuf,
    t1: VBuf,
    if_stack: Vec<IfFrame>,
    if_depth: usize,
    for_stack: Vec<ForFrame>,
    for_depth: usize,
    fe_stack: Vec<FeFrame>,
    fe_depth: usize,
}

/// Pure value half of the tree walker's `apply_bin` (stats are recorded
/// separately by [`Vm::bin_stats`]).
fn bin_compute(op: BinOp, a: &VBuf, b: &VBuf, out: &mut VBuf) {
    let lanes = a.len().max(b.len());
    let anyf = a.is_f || b.is_f;
    let float = anyf && !op.int_only() && !op.is_comparison();
    if op.is_comparison() && anyf {
        let o = out.begin_i();
        for l in 0..lanes {
            let p = a.get_f(l);
            let q = b.get_f(l);
            o.push(i64::from(match op {
                BinOp::Eq => p == q,
                BinOp::Ne => p != q,
                BinOp::Lt => p < q,
                BinOp::Le => p <= q,
                BinOp::Gt => p > q,
                BinOp::Ge => p >= q,
                _ => unreachable!(),
            }));
        }
    } else if float {
        let o = out.begin_f();
        // Specialize by operand shape so the hot lanes-wide loops avoid
        // the per-lane type/stride branches of `get_f`. Values are
        // identical to the generic loop below — same f64 ops, same order.
        if a.is_f && b.is_f {
            let (av, bv) = (&a.f, &b.f);
            if av.len() == lanes && bv.len() == lanes {
                match op {
                    BinOp::Add => o.extend(av.iter().zip(bv).map(|(&p, &q)| p + q)),
                    BinOp::Sub => o.extend(av.iter().zip(bv).map(|(&p, &q)| p - q)),
                    BinOp::Mul => o.extend(av.iter().zip(bv).map(|(&p, &q)| p * q)),
                    BinOp::Div => o.extend(av.iter().zip(bv).map(|(&p, &q)| p / q)),
                    _ => unreachable!("float op {op:?}"),
                }
                return;
            }
            if av.len() == 1 && bv.len() == lanes {
                let p = av[0];
                match op {
                    BinOp::Add => o.extend(bv.iter().map(|&q| p + q)),
                    BinOp::Sub => o.extend(bv.iter().map(|&q| p - q)),
                    BinOp::Mul => o.extend(bv.iter().map(|&q| p * q)),
                    BinOp::Div => o.extend(bv.iter().map(|&q| p / q)),
                    _ => unreachable!("float op {op:?}"),
                }
                return;
            }
            if bv.len() == 1 && av.len() == lanes {
                let q = bv[0];
                match op {
                    BinOp::Add => o.extend(av.iter().map(|&p| p + q)),
                    BinOp::Sub => o.extend(av.iter().map(|&p| p - q)),
                    BinOp::Mul => o.extend(av.iter().map(|&p| p * q)),
                    BinOp::Div => o.extend(av.iter().map(|&p| p / q)),
                    _ => unreachable!("float op {op:?}"),
                }
                return;
            }
        }
        for l in 0..lanes {
            let p = a.get_f(l);
            let q = b.get_f(l);
            o.push(match op {
                BinOp::Add => p + q,
                BinOp::Sub => p - q,
                BinOp::Mul => p * q,
                BinOp::Div => p / q,
                _ => unreachable!("float op {op:?}"),
            });
        }
    } else if !a.is_f && !b.is_f {
        // Both int: hoist the stride/type resolution out of the loop; the
        // per-lane op dispatch is a single predictable jump.
        let o = out.begin_i();
        let (av, sa) = (&a.i, usize::from(a.i.len() > 1));
        let (bv, sb) = (&b.i, usize::from(b.i.len() > 1));
        for l in 0..lanes {
            let p = av[l * sa];
            let q = bv[l * sb];
            o.push(match op {
                BinOp::Add => p.wrapping_add(q),
                BinOp::Sub => p.wrapping_sub(q),
                BinOp::Mul => p.wrapping_mul(q),
                BinOp::Div => {
                    if q == 0 {
                        0
                    } else {
                        p.wrapping_div(q)
                    }
                }
                BinOp::Mod => {
                    if q == 0 {
                        0
                    } else {
                        p.rem_euclid(q)
                    }
                }
                BinOp::And => i64::from(p != 0 && q != 0),
                BinOp::Or => i64::from(p != 0 || q != 0),
                BinOp::BitAnd => p & q,
                BinOp::BitOr => p | q,
                BinOp::BitXor => p ^ q,
                BinOp::Shl => p.wrapping_shl(q as u32 & 63),
                BinOp::Shr => ((p as u64).wrapping_shr(q as u32 & 63)) as i64,
                BinOp::Eq => i64::from(p == q),
                BinOp::Ne => i64::from(p != q),
                BinOp::Lt => i64::from(p < q),
                BinOp::Le => i64::from(p <= q),
                BinOp::Gt => i64::from(p > q),
                BinOp::Ge => i64::from(p >= q),
            });
        }
    } else {
        let o = out.begin_i();
        for l in 0..lanes {
            let p = a.get_i(l);
            let q = b.get_i(l);
            o.push(match op {
                BinOp::Add => p.wrapping_add(q),
                BinOp::Sub => p.wrapping_sub(q),
                BinOp::Mul => p.wrapping_mul(q),
                BinOp::Div => {
                    if q == 0 {
                        0
                    } else {
                        p.wrapping_div(q)
                    }
                }
                BinOp::Mod => {
                    if q == 0 {
                        0
                    } else {
                        p.rem_euclid(q)
                    }
                }
                BinOp::And => i64::from(p != 0 && q != 0),
                BinOp::Or => i64::from(p != 0 || q != 0),
                BinOp::BitAnd => p & q,
                BinOp::BitOr => p | q,
                BinOp::BitXor => p ^ q,
                BinOp::Shl => p.wrapping_shl(q as u32 & 63),
                BinOp::Shr => ((p as u64).wrapping_shr(q as u32 & 63)) as i64,
                BinOp::Eq => i64::from(p == q),
                BinOp::Ne => i64::from(p != q),
                BinOp::Lt => i64::from(p < q),
                BinOp::Le => i64::from(p <= q),
                BinOp::Gt => i64::from(p > q),
                BinOp::Ge => i64::from(p >= q),
            });
        }
    }
}

impl<'p> Vm<'p> {
    fn fail(&self, line: usize, message: String) -> ExecError {
        ExecError { line, message }
    }

    fn refresh(&mut self) {
        self.active = self.mask.iter().filter(|b| **b).count();
        self.warps = self
            .mask
            .chunks(self.simd)
            .filter(|w| w.iter().any(|b| *b))
            .count();
    }

    #[inline]
    fn issue(&mut self, cost: f64) {
        let w = self.warps as f64;
        self.st.issue_cycles += cost * w * self.scale;
        self.st.issue_slots += w * self.simd as f64 * self.scale;
        self.st.active_slots += self.active as f64 * self.scale;
    }

    #[inline]
    fn count_flops(&mut self, per_lane: f64) {
        self.st.flops += per_lane * self.active as f64 * self.scale;
    }

    /// Stats half of the tree walker's `apply_bin`.
    #[inline]
    fn bin_stats(&mut self, op: BinOp, af: bool, bf: bool) {
        let cost = match op {
            BinOp::Div | BinOp::Mod => CYCLE_SPECIAL,
            _ => CYCLE_BASIC,
        };
        self.issue(cost);
        let float = (af || bf) && !op.int_only() && !op.is_comparison();
        if float {
            self.count_flops(1.0);
        }
    }

    /// Verify a value is lane-uniform and return its int form.
    fn uniform_int(&self, src: u32, line: usize, what: &str) -> Result<i64, ExecError> {
        let v = &self.pool[src as usize];
        let n = v.len();
        let first = v.get_i(0);
        for l in 1..n {
            if v.get_i(l) != first {
                return Err(self.fail(line, format!("{what} must be lane-uniform")));
            }
        }
        Ok(first)
    }

    /// Per-lane flat addresses for a global access — fills `addrs` exactly
    /// like the tree walker's `global_addresses` (masked lanes get the
    /// first valid address). Returns `true` when the access is provably
    /// lane-uniform under a full mask: all index operands are uniform and
    /// every lane is active, so every entry of `addrs` holds the same flat
    /// address computed (and bounds-checked) once. The tree walker would
    /// produce the identical `addrs` vector lane by lane.
    fn global_addresses(
        &mut self,
        pidx: usize,
        idx: &[u32],
        line: usize,
        addrs: &mut Vec<u64>,
    ) -> Result<bool, ExecError> {
        let lanes = if self.lanes > 1 {
            self.lanes
        } else {
            idx.iter()
                .map(|&s| self.pool[s as usize].len())
                .max()
                .unwrap_or(1)
        };
        let ArgValue::Array(arr) = &self.args[pidx] else {
            unreachable!("entry validation checked array kinds")
        };
        let nd = idx.len();
        self.sidx.clear();
        self.sidx.resize(nd, 0);
        addrs.clear();
        if self.lanes > 1
            && self.active == self.lanes
            && idx.iter().all(|&s| self.pool[s as usize].len() == 1)
        {
            for (k, &s) in idx.iter().enumerate() {
                self.sidx[k] = self.pool[s as usize].get_i(0);
            }
            let flat = if arr.data.is_phantom() {
                arr.flat_index(&self.sidx)
            } else {
                let mut flat: u64 = 0;
                for (d, &i) in arr.dims.iter().zip(&self.sidx) {
                    if i < 0 || (i as u64) >= *d {
                        return Err(ExecError {
                            line,
                            message: format!(
                                "index {i} out of bounds for dim {d} (array rank {})",
                                arr.rank()
                            ),
                        });
                    }
                    flat = flat * d + i as u64;
                }
                flat
            };
            addrs.resize(lanes, flat);
            return Ok(true);
        }
        addrs.resize(lanes.max(1), 0);
        let full = lanes == self.lanes;
        let mut first_valid: Option<u64> = None;
        let mut sidx = mem::take(&mut self.sidx);
        for (lane, a) in addrs.iter_mut().enumerate() {
            let active = if full {
                *self.mask.get(lane).unwrap_or(&true)
            } else {
                true
            };
            if !active {
                continue;
            }
            sidx.clear();
            for &s in idx {
                sidx.push(self.pool[s as usize].get_i(lane));
            }
            let flat = if arr.data.is_phantom() {
                arr.flat_index(&sidx)
            } else {
                let mut flat: u64 = 0;
                for (d, &i) in arr.dims.iter().zip(&sidx) {
                    if i < 0 || (i as u64) >= *d {
                        self.sidx = sidx;
                        return Err(ExecError {
                            line,
                            message: format!(
                                "index {i} out of bounds for dim {d} (array rank {})",
                                arr.rank()
                            ),
                        });
                    }
                    flat = flat * d + i as u64;
                }
                flat
            };
            *a = flat;
            if first_valid.is_none() {
                first_valid = Some(flat);
            }
        }
        self.sidx = sidx;
        let fill = first_valid.unwrap_or(0);
        for (lane, a) in addrs.iter_mut().enumerate() {
            let active = if full {
                *self.mask.get(lane).unwrap_or(&true)
            } else {
                true
            };
            if !active {
                *a = fill;
            }
        }
        Ok(false)
    }

    /// Transaction/coalescing accounting — identical addend order to the
    /// tree walker's `account_global`. `cache` is `Some` for loads only.
    /// `uniform` is the flag from [`Vm::global_addresses`]: all entries of
    /// `addrs` equal under a full mask, so each warp coalesces to exactly
    /// one transaction and the per-warp segment scan can be skipped.
    fn account_global(&mut self, site: usize, cache: Option<usize>, addrs: &[u64], uniform: bool) {
        self.issue(CYCLE_GLOBAL);
        let (transactions, active_lanes, all_same) = if uniform {
            (self.warps as u64, self.active as u64, true)
        } else {
            let lanes = addrs.len();
            let mut transactions = 0u64;
            let mut active_lanes = 0u64;
            let mut all_same = true;
            let mut first_addr: Option<u64> = None;
            let full = lanes == self.lanes;
            for (w, warp_addrs) in addrs.chunks(self.simd).enumerate() {
                self.seg.clear();
                let mut sorted = true;
                for (l, &a) in warp_addrs.iter().enumerate() {
                    let lane = w * self.simd + l;
                    let active = if full {
                        *self.mask.get(lane).unwrap_or(&true)
                    } else {
                        true
                    };
                    if !active {
                        continue;
                    }
                    active_lanes += 1;
                    match first_addr {
                        None => first_addr = Some(a),
                        Some(fa) if fa != a => all_same = false,
                        _ => {}
                    }
                    let seg = a * ELEM_BYTES / TRANSACTION_BYTES;
                    if let Some(&last) = self.seg.last() {
                        sorted &= last <= seg;
                    }
                    self.seg.push(seg);
                }
                if !sorted {
                    self.seg.sort_unstable();
                }
                self.seg.dedup();
                transactions += self.seg.len() as u64;
            }
            (transactions, active_lanes, all_same)
        };
        if active_lanes == 0 {
            return;
        }
        let ideal = active_lanes * ELEM_BYTES;
        let mut cached = false;
        if let Some(cid) = cache {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for a in addrs {
                h ^= *a;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let entry = &mut self.caches[cid];
            if entry.contains(&h) {
                cached = true;
            } else {
                if entry.len() >= 8 {
                    entry.pop_front();
                }
                entry.push_back(h);
            }
        }
        let moved = if cached {
            0
        } else if all_same && active_lanes > 1 {
            ELEM_BYTES
        } else {
            transactions * TRANSACTION_BYTES
        };
        self.st.global_bytes += moved as f64 * self.scale;
        self.st.ideal_global_bytes += ideal as f64 * self.scale;
        let a = &mut self.acc[site];
        a.touched = true;
        a.s.executions += self.scale;
        a.s.ideal_bytes += ideal as f64 * self.scale;
        a.s.transaction_bytes += moved as f64 * self.scale;
        if all_same && active_lanes > 1 {
            a.s.broadcasts += self.scale;
        }
    }

    /// Enter vector chunk `fe_stack[d].idx`: set lanes/mask, count the
    /// chunk, bind the loop variable to the lane iota.
    fn enter_chunk(&mut self, d: usize) {
        let (base, lanes, var) = {
            let fr = &self.fe_stack[d];
            let base = fr.idx * self.group as u64;
            (
                base,
                ((fr.n - base).min(self.group as u64)) as usize,
                fr.var,
            )
        };
        self.lanes = lanes;
        self.mask.clear();
        self.mask.resize(lanes, true);
        self.refresh();
        self.st.raw_lanes += lanes as f64;
        self.st.total_threads += lanes as f64 * self.scale;
        self.st.groups += self.scale;
        let o = self.pool[var as usize].begin_i();
        for l in 0..lanes {
            o.push(base as i64 + l as i64);
        }
    }

    fn run(&mut self) -> Result<(), ExecError> {
        let prog = self.prog;
        let mut pc = 0usize;
        loop {
            let line = prog.lines[pc] as usize;
            match &prog.instrs[pc] {
                Instr::LitI { dst, v } => {
                    self.pool[*dst as usize].set_uniform_i(*v);
                    pc += 1;
                }
                Instr::LitF { dst, v } => {
                    self.pool[*dst as usize].set_uniform_f(*v);
                    pc += 1;
                }
                Instr::DeclI { dst, src } => {
                    match src {
                        Some(s) => {
                            let mut out = mem::take(&mut self.t0);
                            {
                                let v = &self.pool[*s as usize];
                                let o = out.begin_i();
                                if v.is_f {
                                    o.extend(v.f.iter().map(|&x| x as i64));
                                } else {
                                    o.extend_from_slice(&v.i);
                                }
                            }
                            mem::swap(&mut self.pool[*dst as usize], &mut out);
                            self.t0 = out;
                        }
                        None => self.pool[*dst as usize].set_uniform_i(0),
                    }
                    pc += 1;
                }
                Instr::DeclF { dst, src } => {
                    match src {
                        Some(s) => {
                            let mut out = mem::take(&mut self.t0);
                            {
                                let v = &self.pool[*s as usize];
                                let o = out.begin_f();
                                if v.is_f {
                                    o.extend_from_slice(&v.f);
                                } else {
                                    o.extend(v.i.iter().map(|&x| x as f64));
                                }
                            }
                            mem::swap(&mut self.pool[*dst as usize], &mut out);
                            self.t0 = out;
                        }
                        None => self.pool[*dst as usize].set_uniform_f(0.0),
                    }
                    pc += 1;
                }
                Instr::Un { dst, src, op } => {
                    let is_f = self.pool[*src as usize].is_f;
                    self.issue(CYCLE_BASIC);
                    let mut out = mem::take(&mut self.t0);
                    match (op, is_f) {
                        (UnOp::Neg, true) => {
                            self.count_flops(1.0);
                            let v = &self.pool[*src as usize];
                            let o = out.begin_f();
                            o.extend(v.f.iter().map(|&x| -x));
                        }
                        (UnOp::Neg, false) => {
                            let v = &self.pool[*src as usize];
                            let o = out.begin_i();
                            o.extend(v.i.iter().map(|&x| x.wrapping_neg()));
                        }
                        (UnOp::Not, false) => {
                            let v = &self.pool[*src as usize];
                            let o = out.begin_i();
                            o.extend(v.i.iter().map(|&x| i64::from(x == 0)));
                        }
                        (UnOp::BitNot, false) => {
                            let v = &self.pool[*src as usize];
                            let o = out.begin_i();
                            o.extend(v.i.iter().map(|&x| !x));
                        }
                        (op, _) => {
                            return Err(self.fail(
                                line,
                                format!(
                                    "bad unary {op:?} on {}",
                                    self.pool[*src as usize].debug_v()
                                ),
                            ));
                        }
                    }
                    mem::swap(&mut self.pool[*dst as usize], &mut out);
                    self.t0 = out;
                    pc += 1;
                }
                Instr::Bin { dst, a, b, op } => {
                    let af = self.pool[*a as usize].is_f;
                    let bf = self.pool[*b as usize].is_f;
                    self.bin_stats(*op, af, bf);
                    let mut out = mem::take(&mut self.t0);
                    bin_compute(
                        *op,
                        &self.pool[*a as usize],
                        &self.pool[*b as usize],
                        &mut out,
                    );
                    mem::swap(&mut self.pool[*dst as usize], &mut out);
                    self.t0 = out;
                    pc += 1;
                }
                Instr::FmaMul { dst, a, b } => {
                    let af = self.pool[*a as usize].is_f;
                    let bf = self.pool[*b as usize].is_f;
                    let mut out = mem::take(&mut self.t0);
                    if af || bf {
                        self.issue(CYCLE_BASIC);
                        self.count_flops(2.0);
                        let x = &self.pool[*a as usize];
                        let y = &self.pool[*b as usize];
                        let lanes = x.len().max(y.len());
                        let o = out.begin_f();
                        if x.is_f && y.is_f && x.f.len() == lanes && y.f.len() == lanes {
                            o.extend(x.f.iter().zip(&y.f).map(|(&p, &q)| p * q));
                        } else if x.is_f && y.is_f && x.f.len() == 1 && y.f.len() == lanes {
                            let p = x.f[0];
                            o.extend(y.f.iter().map(|&q| p * q));
                        } else if x.is_f && y.is_f && y.f.len() == 1 && x.f.len() == lanes {
                            let q = y.f[0];
                            o.extend(x.f.iter().map(|&p| p * q));
                        } else {
                            for l in 0..lanes {
                                o.push(x.get_f(l) * y.get_f(l));
                            }
                        }
                    } else {
                        self.bin_stats(BinOp::Mul, false, false);
                        bin_compute(
                            BinOp::Mul,
                            &self.pool[*a as usize],
                            &self.pool[*b as usize],
                            &mut out,
                        );
                    }
                    mem::swap(&mut self.pool[*dst as usize], &mut out);
                    self.t0 = out;
                    pc += 1;
                }
                Instr::Call { dst, f, args } => {
                    self.issue(if f.is_special() {
                        CYCLE_SPECIAL
                    } else {
                        CYCLE_BASIC
                    });
                    self.count_flops(1.0);
                    let lanes = args
                        .iter()
                        .map(|&s| self.pool[s as usize].len())
                        .max()
                        .unwrap_or(1);
                    let all_int = args.iter().all(|&s| !self.pool[s as usize].is_f);
                    let mut out = mem::take(&mut self.t0);
                    if all_int && f.int_capable() {
                        let pool = &self.pool;
                        let g = |k: usize, l: usize| pool[args[k] as usize].get_i(l);
                        let o = out.begin_i();
                        for l in 0..lanes {
                            o.push(match f {
                                Builtin::Min => g(0, l).min(g(1, l)),
                                Builtin::Max => g(0, l).max(g(1, l)),
                                Builtin::Abs => g(0, l).abs(),
                                Builtin::Clamp => {
                                    g(0, l).clamp(g(1, l).min(g(2, l)), g(2, l).max(g(1, l)))
                                }
                                _ => unreachable!(),
                            });
                        }
                    } else {
                        let pool = &self.pool;
                        let g = |k: usize, l: usize| pool[args[k] as usize].get_f(l);
                        let o = out.begin_f();
                        for l in 0..lanes {
                            o.push(match f {
                                Builtin::Sqrt => g(0, l).max(0.0).sqrt(),
                                Builtin::Rsqrt => 1.0 / g(0, l).max(f64::MIN_POSITIVE).sqrt(),
                                Builtin::Fabs | Builtin::Abs => g(0, l).abs(),
                                Builtin::Floor => g(0, l).floor(),
                                Builtin::Exp => g(0, l).exp(),
                                Builtin::Log => g(0, l).max(f64::MIN_POSITIVE).ln(),
                                Builtin::Sin => g(0, l).sin(),
                                Builtin::Cos => g(0, l).cos(),
                                Builtin::Tan => g(0, l).tan(),
                                Builtin::Pow => g(0, l).powf(g(1, l)),
                                Builtin::Min => g(0, l).min(g(1, l)),
                                Builtin::Max => g(0, l).max(g(1, l)),
                                Builtin::Clamp => {
                                    let (lo, hi) = (g(1, l).min(g(2, l)), g(2, l).max(g(1, l)));
                                    g(0, l).clamp(lo, hi)
                                }
                            });
                        }
                    }
                    mem::swap(&mut self.pool[*dst as usize], &mut out);
                    self.t0 = out;
                    pc += 1;
                }
                Instr::Cast { dst, src, to } => {
                    self.issue(CYCLE_BASIC);
                    let mut out = mem::take(&mut self.t0);
                    {
                        let v = &self.pool[*src as usize];
                        match to {
                            ElemTy::Int => {
                                let o = out.begin_i();
                                if v.is_f {
                                    o.extend(v.f.iter().map(|&x| x as i64));
                                } else {
                                    o.extend_from_slice(&v.i);
                                }
                            }
                            ElemTy::Float => {
                                let o = out.begin_f();
                                if v.is_f {
                                    o.extend_from_slice(&v.f);
                                } else {
                                    o.extend(v.i.iter().map(|&x| x as f64));
                                }
                            }
                        }
                    }
                    mem::swap(&mut self.pool[*dst as usize], &mut out);
                    self.t0 = out;
                    pc += 1;
                }
                Instr::RaceCheck { name } => {
                    if self.lanes > 1 {
                        return Err(self.fail(line, name.to_string()));
                    }
                    pc += 1;
                }
                Instr::Assign {
                    slot,
                    src,
                    op,
                    fused,
                } => {
                    let slot = *slot as usize;
                    let src = *src as usize;
                    let mut out = mem::take(&mut self.t0);
                    match op {
                        AssignOp::Set => out.copy_from(&self.pool[src]),
                        AssignOp::Add if *fused => {
                            let of = self.pool[slot].is_f;
                            let rf = self.pool[src].is_f;
                            if of || rf {
                                // FMA add: no extra issue, no extra flops.
                                let old = &self.pool[slot];
                                let rhs = &self.pool[src];
                                let lanes = old.len().max(rhs.len());
                                let o = out.begin_f();
                                for l in 0..lanes {
                                    o.push(old.get_f(l) + rhs.get_f(l));
                                }
                            } else {
                                self.bin_stats(BinOp::Add, false, false);
                                bin_compute(
                                    BinOp::Add,
                                    &self.pool[slot],
                                    &self.pool[src],
                                    &mut out,
                                );
                            }
                        }
                        _ => {
                            let bop = match op {
                                AssignOp::Add => BinOp::Add,
                                AssignOp::Sub => BinOp::Sub,
                                AssignOp::Mul => BinOp::Mul,
                                AssignOp::Div => BinOp::Div,
                                AssignOp::Set => unreachable!(),
                            };
                            let of = self.pool[slot].is_f;
                            let rf = self.pool[src].is_f;
                            self.bin_stats(bop, of, rf);
                            bin_compute(bop, &self.pool[slot], &self.pool[src], &mut out);
                        }
                    }
                    if self.lanes == 1 || self.active == self.lanes {
                        mem::swap(&mut self.pool[slot], &mut out);
                    } else {
                        // Masked update: inactive lanes keep the old value;
                        // the result type follows the old value's type.
                        let lanes = self.lanes;
                        let mut sel = mem::take(&mut self.t1);
                        {
                            let old = &self.pool[slot];
                            let mask = &self.mask;
                            if old.is_f {
                                let o = sel.begin_f();
                                for (l, &m) in mask.iter().enumerate().take(lanes) {
                                    o.push(if m { out.get_f(l) } else { old.get_f(l) });
                                }
                            } else {
                                let o = sel.begin_i();
                                for (l, &m) in mask.iter().enumerate().take(lanes) {
                                    o.push(if m { out.get_i(l) } else { old.get_i(l) });
                                }
                            }
                        }
                        mem::swap(&mut self.pool[slot], &mut sel);
                        self.t1 = sel;
                    }
                    self.t0 = out;
                    pc += 1;
                }
                Instr::GlobalLoad {
                    dst,
                    pidx,
                    idx,
                    site,
                    cache,
                } => {
                    let mut addrs = mem::take(&mut self.addrs);
                    let uniform = self.global_addresses(*pidx as usize, idx, line, &mut addrs)?;
                    self.account_global(*site as usize, Some(*cache as usize), &addrs, uniform);
                    let ArgValue::Array(arr) = &self.args[*pidx as usize] else {
                        unreachable!()
                    };
                    let mut out = mem::take(&mut self.t0);
                    if uniform {
                        // Every lane loads the same address under a full
                        // mask; a one-element buffer is value-identical to
                        // the broadcast the tree walker materializes.
                        match arr.data.elem() {
                            ElemTy::Float => out.set_uniform_f(arr.data.load_f(addrs[0])),
                            ElemTy::Int => out.set_uniform_i(arr.data.load_i(addrs[0])),
                        }
                    } else {
                        match arr.data.elem() {
                            ElemTy::Float => {
                                let o = out.begin_f();
                                o.extend(addrs.iter().map(|&a| arr.data.load_f(a)));
                            }
                            ElemTy::Int => {
                                let o = out.begin_i();
                                o.extend(addrs.iter().map(|&a| arr.data.load_i(a)));
                            }
                        }
                    }
                    mem::swap(&mut self.pool[*dst as usize], &mut out);
                    self.t0 = out;
                    self.addrs = addrs;
                    pc += 1;
                }
                Instr::GlobalAssign {
                    pidx,
                    idx,
                    src,
                    rmw,
                    store_site,
                } => {
                    let pidx = *pidx as usize;
                    let src = *src as usize;
                    let mut addrs = mem::take(&mut self.addrs);
                    let uniform = self.global_addresses(pidx, idx, line, &mut addrs)?;
                    let mut out = mem::take(&mut self.t0);
                    let mut from_out = false;
                    if let Some((op, load_site, cache)) = rmw {
                        self.account_global(
                            *load_site as usize,
                            Some(*cache as usize),
                            &addrs,
                            uniform,
                        );
                        let mut old = mem::take(&mut self.t1);
                        {
                            let ArgValue::Array(arr) = &self.args[pidx] else {
                                unreachable!()
                            };
                            if uniform {
                                match arr.data.elem() {
                                    ElemTy::Float => old.set_uniform_f(arr.data.load_f(addrs[0])),
                                    ElemTy::Int => old.set_uniform_i(arr.data.load_i(addrs[0])),
                                }
                            } else {
                                match arr.data.elem() {
                                    ElemTy::Float => {
                                        let o = old.begin_f();
                                        o.extend(addrs.iter().map(|&a| arr.data.load_f(a)));
                                    }
                                    ElemTy::Int => {
                                        let o = old.begin_i();
                                        o.extend(addrs.iter().map(|&a| arr.data.load_i(a)));
                                    }
                                }
                            }
                        }
                        let of = old.is_f;
                        let rf = self.pool[src].is_f;
                        self.bin_stats(*op, of, rf);
                        bin_compute(*op, &old, &self.pool[src], &mut out);
                        self.t1 = old;
                        from_out = true;
                    }
                    self.account_global(*store_site as usize, None, &addrs, uniform);
                    {
                        let lanes = addrs.len();
                        let full = lanes == self.lanes;
                        let v: &VBuf = if from_out { &out } else { &self.pool[src] };
                        let mask = &self.mask;
                        let ArgValue::Array(arr) = &mut self.args[pidx] else {
                            unreachable!()
                        };
                        for (lane, &a) in addrs.iter().enumerate() {
                            let active = if full {
                                *mask.get(lane).unwrap_or(&true)
                            } else {
                                true
                            };
                            if !active {
                                continue;
                            }
                            if v.is_f {
                                arr.data.store_f(a, v.get_f(lane));
                            } else {
                                arr.data.store_i(a, v.get_i(lane));
                            }
                        }
                    }
                    self.t0 = out;
                    self.addrs = addrs;
                    pc += 1;
                }
                Instr::DimCheck { src, name } => {
                    let v = self.uniform_int(*src, line, "array dimension")?;
                    if v <= 0 {
                        return Err(self.fail(line, format!("array `{name}` has dim {v} <= 0")));
                    }
                    self.dim_stack.push(v);
                    pc += 1;
                }
                Instr::ScratchDecl {
                    arr,
                    ndims,
                    ty,
                    shared,
                } => {
                    let nd = *ndims as usize;
                    let start = self.dim_stack.len() - nd;
                    let lanes = if *shared { 1 } else { self.lanes.max(1) };
                    let a = &mut self.arrays[*arr as usize];
                    a.dims.clear();
                    a.dims
                        .extend(self.dim_stack.drain(start..).map(|v| v as u64));
                    a.shared = *shared;
                    a.lanes = lanes;
                    a.elem = *ty;
                    let n: u64 = a.dims.iter().product();
                    let slots = if *shared {
                        n as usize
                    } else {
                        n as usize * lanes
                    };
                    a.fdata.clear();
                    a.idata.clear();
                    match ty {
                        ElemTy::Float => a.fdata.resize(slots, 0.0),
                        ElemTy::Int => a.idata.resize(slots, 0),
                    }
                    pc += 1;
                }
                Instr::ScratchLoad { dst, arr, idx } => {
                    let ai = *arr as usize;
                    let shared = self.arrays[ai].shared;
                    self.issue(if shared { CYCLE_LOCAL } else { CYCLE_BASIC });
                    let lanes = self.lanes;
                    let vec_lanes = if !shared && lanes > 1 {
                        lanes
                    } else {
                        idx.iter()
                            .map(|&s| self.pool[s as usize].len())
                            .max()
                            .unwrap_or(1)
                            .max(1)
                    };
                    if shared {
                        self.st.local_bytes +=
                            (self.active as u64 * ELEM_BYTES) as f64 * self.scale;
                    }
                    let nd = idx.len();
                    self.sidx.clear();
                    self.sidx.resize(nd, 0);
                    let mut out = mem::take(&mut self.t0);
                    {
                        let a = &self.arrays[ai];
                        match a.elem {
                            ElemTy::Float => {
                                out.begin_f();
                            }
                            ElemTy::Int => {
                                out.begin_i();
                            }
                        }
                        let full = vec_lanes == lanes && self.active == lanes;
                        let uniform_to = if full {
                            idx.iter()
                                .take_while(|&&s| self.pool[s as usize].len() == 1)
                                .count()
                        } else {
                            0
                        };
                        if full && uniform_to == nd {
                            // Uniform indices under a full mask: one bounds
                            // check, then a strided (often contiguous) copy —
                            // same per-lane slots and values as the generic
                            // walk.
                            for (k, &s) in idx.iter().enumerate() {
                                self.sidx[k] = self.pool[s as usize].get_i(0);
                            }
                            let flat = a.flat(&self.sidx, line)?;
                            let al = a.lanes.max(1);
                            if !a.shared && al == vec_lanes {
                                let base = flat as usize * al;
                                match a.elem {
                                    ElemTy::Float => {
                                        out.f.extend_from_slice(&a.fdata[base..base + vec_lanes])
                                    }
                                    ElemTy::Int => {
                                        out.i.extend_from_slice(&a.idata[base..base + vec_lanes])
                                    }
                                }
                            } else {
                                match a.elem {
                                    ElemTy::Float => out.f.extend(
                                        (0..vec_lanes).map(|l| a.fdata[a.slot(flat, l % al)]),
                                    ),
                                    ElemTy::Int => out.i.extend(
                                        (0..vec_lanes).map(|l| a.idata[a.slot(flat, l % al)]),
                                    ),
                                }
                            }
                        } else if full && nd >= 1 && uniform_to == nd - 1 && a.dims.len() == nd && {
                            let lv = &self.pool[idx[nd - 1] as usize];
                            !lv.is_f && lv.i.len() == vec_lanes
                        } {
                            // Uniform index prefix with a lanes-varying last
                            // index (the shared-tile pattern `tb[kk, t]`):
                            // bounds-check the prefix once, then walk the
                            // last dimension lane by lane. Same flat slots,
                            // values, and error order as the generic walk —
                            // under a full mask lane 0 is checked first
                            // either way.
                            let mut prefix: u64 = 0;
                            for (k, &s) in idx[..nd - 1].iter().enumerate() {
                                let i = self.pool[s as usize].get_i(0);
                                let d = a.dims[k];
                                if i < 0 || (i as u64) >= d {
                                    return Err(ExecError {
                                        line,
                                        message: format!(
                                            "scratch index {i} out of bounds for dim {d}"
                                        ),
                                    });
                                }
                                prefix = prefix * d + i as u64;
                            }
                            let dl = a.dims[nd - 1];
                            let base = prefix * dl;
                            let lv = &self.pool[idx[nd - 1] as usize].i;
                            let al = a.lanes.max(1);
                            if a.shared && a.elem == ElemTy::Float {
                                let bu = base as usize;
                                for &i in lv {
                                    if i < 0 || (i as u64) >= dl {
                                        return Err(ExecError {
                                            line,
                                            message: format!(
                                                "scratch index {i} out of bounds for dim {dl}"
                                            ),
                                        });
                                    }
                                    out.f.push(a.fdata[bu + i as usize]);
                                }
                            } else {
                                for (lane, &i) in lv.iter().enumerate() {
                                    if i < 0 || (i as u64) >= dl {
                                        return Err(ExecError {
                                            line,
                                            message: format!(
                                                "scratch index {i} out of bounds for dim {dl}"
                                            ),
                                        });
                                    }
                                    let flat = base + i as u64;
                                    let sl = if a.shared {
                                        flat as usize
                                    } else {
                                        flat as usize * al + lane % al
                                    };
                                    match a.elem {
                                        ElemTy::Float => out.f.push(a.fdata[sl]),
                                        ElemTy::Int => out.i.push(a.idata[sl]),
                                    }
                                }
                            }
                        } else {
                            for lane in 0..vec_lanes {
                                let lane_active = if vec_lanes == lanes {
                                    *self.mask.get(lane).unwrap_or(&true)
                                } else {
                                    true
                                };
                                for (k, &s) in idx.iter().enumerate() {
                                    self.sidx[k] = self.pool[s as usize].get_i(lane);
                                }
                                if !lane_active {
                                    match a.elem {
                                        ElemTy::Float => out.f.push(0.0),
                                        ElemTy::Int => out.i.push(0),
                                    }
                                    continue;
                                }
                                let flat = a.flat(&self.sidx, line)?;
                                let sl = a.slot(flat, lane % a.lanes.max(1));
                                match a.elem {
                                    ElemTy::Float => out.f.push(a.fdata[sl]),
                                    ElemTy::Int => out.i.push(a.idata[sl]),
                                }
                            }
                        }
                    }
                    mem::swap(&mut self.pool[*dst as usize], &mut out);
                    self.t0 = out;
                    pc += 1;
                }
                Instr::ScratchStore { arr, idx, src } => {
                    let ai = *arr as usize;
                    let src = *src as usize;
                    let shared = self.arrays[ai].shared;
                    self.issue(if shared { CYCLE_LOCAL } else { CYCLE_BASIC });
                    let lanes = self.lanes;
                    let vec_lanes = if !shared && lanes > 1 {
                        lanes
                    } else {
                        idx.iter()
                            .map(|&s| self.pool[s as usize].len())
                            .max()
                            .unwrap_or(1)
                            .max(1)
                            .max(self.pool[src].len())
                    };
                    if shared {
                        self.st.local_bytes +=
                            (self.active as u64 * ELEM_BYTES) as f64 * self.scale;
                    }
                    let nd = idx.len();
                    self.sidx.clear();
                    self.sidx.resize(nd, 0);
                    // Split borrows: arrays (mut) vs pool/mask/sidx.
                    let mut a = mem::take(&mut self.arrays[ai]);
                    let res = (|| -> Result<(), ExecError> {
                        let v = &self.pool[src];
                        let full = vec_lanes == lanes && self.active == lanes;
                        let uniform_to = if full {
                            idx.iter()
                                .take_while(|&&s| self.pool[s as usize].len() == 1)
                                .count()
                        } else {
                            0
                        };
                        if full && uniform_to == nd {
                            // Uniform indices under a full mask: one bounds
                            // check, then strided stores lane by lane.
                            for (k, &s) in idx.iter().enumerate() {
                                self.sidx[k] = self.pool[s as usize].get_i(0);
                            }
                            let flat = a.flat(&self.sidx, line)?;
                            let al = a.lanes.max(1);
                            if !a.shared && al == vec_lanes && v.is_f && a.elem == ElemTy::Float {
                                let base = flat as usize * al;
                                let (vf, sv) = (&v.f, usize::from(v.f.len() > 1));
                                for lane in 0..vec_lanes {
                                    a.fdata[base + lane] = vf[lane * sv] as f32 as f64;
                                }
                                return Ok(());
                            }
                            for lane in 0..vec_lanes {
                                let sl = a.slot(flat, lane % al);
                                match (v.is_f, a.elem) {
                                    (true, ElemTy::Float) => {
                                        a.fdata[sl] = v.get_f(lane) as f32 as f64
                                    }
                                    (false, ElemTy::Int) => a.idata[sl] = v.get_i(lane),
                                    (false, ElemTy::Float) => a.fdata[sl] = v.get_i(lane) as f64,
                                    (true, ElemTy::Int) => a.idata[sl] = v.get_f(lane) as i64,
                                }
                            }
                            return Ok(());
                        }
                        if full && nd >= 1 && uniform_to == nd - 1 && a.dims.len() == nd && {
                            let lv = &self.pool[idx[nd - 1] as usize];
                            !lv.is_f && lv.i.len() == vec_lanes
                        } {
                            // Uniform prefix, lanes-varying last index (the
                            // shared-tile store `tb[kk, t] = ...`): prefix
                            // checked once, last dimension walked per lane.
                            let mut prefix: u64 = 0;
                            for (k, &s) in idx[..nd - 1].iter().enumerate() {
                                let i = self.pool[s as usize].get_i(0);
                                let d = a.dims[k];
                                if i < 0 || (i as u64) >= d {
                                    return Err(ExecError {
                                        line,
                                        message: format!(
                                            "scratch index {i} out of bounds for dim {d}"
                                        ),
                                    });
                                }
                                prefix = prefix * d + i as u64;
                            }
                            let dl = a.dims[nd - 1];
                            let base = prefix * dl;
                            let lv = &self.pool[idx[nd - 1] as usize].i;
                            let al = a.lanes.max(1);
                            for (lane, &i) in lv.iter().enumerate() {
                                if i < 0 || (i as u64) >= dl {
                                    return Err(ExecError {
                                        line,
                                        message: format!(
                                            "scratch index {i} out of bounds for dim {dl}"
                                        ),
                                    });
                                }
                                let flat = base + i as u64;
                                let sl = if a.shared {
                                    flat as usize
                                } else {
                                    flat as usize * al + lane % al
                                };
                                match (v.is_f, a.elem) {
                                    (true, ElemTy::Float) => {
                                        a.fdata[sl] = v.get_f(lane) as f32 as f64
                                    }
                                    (false, ElemTy::Int) => a.idata[sl] = v.get_i(lane),
                                    (false, ElemTy::Float) => a.fdata[sl] = v.get_i(lane) as f64,
                                    (true, ElemTy::Int) => a.idata[sl] = v.get_f(lane) as i64,
                                }
                            }
                            return Ok(());
                        }
                        for lane in 0..vec_lanes {
                            let lane_active = if vec_lanes == lanes {
                                *self.mask.get(lane).unwrap_or(&true)
                            } else {
                                true
                            };
                            for (k, &s) in idx.iter().enumerate() {
                                self.sidx[k] = self.pool[s as usize].get_i(lane);
                            }
                            if !lane_active {
                                continue;
                            }
                            let flat = a.flat(&self.sidx, line)?;
                            let sl = a.slot(flat, lane % a.lanes.max(1));
                            match (v.is_f, a.elem) {
                                (true, ElemTy::Float) => a.fdata[sl] = v.get_f(lane) as f32 as f64,
                                (false, ElemTy::Int) => a.idata[sl] = v.get_i(lane),
                                (false, ElemTy::Float) => a.fdata[sl] = v.get_i(lane) as f64,
                                (true, ElemTy::Int) => a.idata[sl] = v.get_f(lane) as i64,
                            }
                        }
                        Ok(())
                    })();
                    self.arrays[ai] = a;
                    res?;
                    pc += 1;
                }
                Instr::IfCond {
                    src,
                    predicated,
                    then_empty,
                    else_at,
                } => {
                    let d = self.if_depth;
                    if self.if_stack.len() == d {
                        self.if_stack.push(IfFrame::default());
                    }
                    self.if_depth += 1;
                    let v = &self.pool[*src as usize];
                    if v.len() == 1 {
                        // Lane-uniform condition: the then-mask is either the
                        // current mask (c true) or empty (c false), so the
                        // mask never changes. Branch accounting collapses to
                        // one `+= scale` per warp with any active lane —
                        // identical addend order to `record_branch` (a
                        // uniform condition can never diverge).
                        let c = if v.is_f {
                            v.get_f(0) != 0.0
                        } else {
                            v.get_i(0) != 0
                        };
                        if !*predicated {
                            for _ in 0..self.warps {
                                self.st.branch_events += self.scale;
                            }
                        }
                        let fr = &mut self.if_stack[d];
                        fr.cond_uniform = Some(c);
                        fr.any_not = !c && self.active > 0;
                        fr.dirty = false;
                        if c && self.active > 0 && !*then_empty {
                            pc += 1;
                        } else {
                            pc = *else_at as usize;
                        }
                    } else {
                        // Varying condition: one fused pass builds the cmask,
                        // does warp-level branch accounting, and discovers
                        // whether any/all active lanes take the branch.
                        let mut any_taken = false;
                        let mut any_not = false;
                        {
                            let fr = &mut self.if_stack[d];
                            fr.cond_uniform = None;
                            fr.cmask.clear();
                            if v.is_f {
                                fr.cmask.extend((0..self.lanes).map(|l| v.get_f(l) != 0.0));
                            } else {
                                fr.cmask.extend((0..self.lanes).map(|l| v.get_i(l) != 0));
                            }
                            for (w, warp) in self.mask.chunks(self.simd).enumerate() {
                                let lo = w * self.simd;
                                let mut taken = 0usize;
                                let mut not_taken = 0usize;
                                for (l, &active) in warp.iter().enumerate() {
                                    if !active {
                                        continue;
                                    }
                                    if fr.cmask[lo + l] {
                                        taken += 1;
                                    } else {
                                        not_taken += 1;
                                    }
                                }
                                if taken + not_taken == 0 {
                                    continue;
                                }
                                if !*predicated {
                                    self.st.branch_events += self.scale;
                                    if taken > 0 && not_taken > 0 {
                                        self.st.divergent_branches += self.scale;
                                    }
                                }
                                any_taken |= taken > 0;
                                any_not |= not_taken > 0;
                            }
                            fr.any_not = any_not;
                        }
                        if any_taken && !*then_empty {
                            if any_not {
                                let fr = &mut self.if_stack[d];
                                fr.saved.clear();
                                fr.saved.extend_from_slice(&self.mask);
                                fr.dirty = true;
                                for (m, &c) in self.mask.iter_mut().zip(&fr.cmask) {
                                    *m = *m && c;
                                }
                                self.refresh();
                            } else {
                                // Every active lane takes the branch: the
                                // narrowed mask equals the current mask.
                                self.if_stack[d].dirty = false;
                            }
                            pc += 1;
                        } else {
                            self.if_stack[d].dirty = false;
                            pc = *else_at as usize;
                        }
                    }
                }
                Instr::IfElse { else_empty, end_at } => {
                    let d = self.if_depth - 1;
                    let run_else = self.if_stack[d].any_not && !*else_empty;
                    if run_else {
                        match self.if_stack[d].cond_uniform {
                            Some(_) => {
                                // Uniform-false condition: the else-mask is
                                // the saved mask, which is still current
                                // (the then branch never ran).
                            }
                            None => {
                                let fr = &mut self.if_stack[d];
                                if !fr.dirty {
                                    // Then branch left the mask untouched, so
                                    // the current mask *is* the saved mask.
                                    fr.saved.clear();
                                    fr.saved.extend_from_slice(&self.mask);
                                    fr.dirty = true;
                                }
                                for ((m, &s), &c) in
                                    self.mask.iter_mut().zip(&fr.saved).zip(&fr.cmask)
                                {
                                    *m = s && !c;
                                }
                                self.refresh();
                            }
                        }
                        pc += 1;
                    } else {
                        pc = *end_at as usize;
                    }
                }
                Instr::IfEnd => {
                    let d = self.if_depth - 1;
                    if self.if_stack[d].dirty {
                        self.mask.copy_from_slice(&self.if_stack[d].saved);
                        self.refresh();
                    }
                    self.if_depth = d;
                    pc += 1;
                }
                Instr::ForEnter => {
                    let d = self.for_depth;
                    if self.for_stack.len() == d {
                        self.for_stack.push(ForFrame::default());
                    }
                    let fr = &mut self.for_stack[d];
                    fr.guard = 0;
                    // The entry mask is snapshotted lazily, on the first
                    // narrowing ForCond — loops with lane-uniform trip
                    // counts never touch the mask at all.
                    fr.dirty = false;
                    self.for_depth += 1;
                    pc += 1;
                }
                Instr::ForGuard => {
                    let fr = &mut self.for_stack[self.for_depth - 1];
                    fr.guard += 1;
                    if fr.guard > 1_000_000_000 {
                        return Err(
                            self.fail(line, "loop exceeded 1e9 iterations (runaway?)".into())
                        );
                    }
                    pc += 1;
                }
                Instr::ForCond { src, exit } => {
                    let d = self.for_depth - 1;
                    let v = &self.pool[*src as usize];
                    if v.len() == 1 {
                        // Lane-uniform loop condition: every active lane
                        // agrees, so the mask never narrows. Accounting is
                        // one `+= scale` per warp with any active lane,
                        // exactly as `record_branch` would add them.
                        let c = if v.is_f {
                            v.get_f(0) != 0.0
                        } else {
                            v.get_i(0) != 0
                        };
                        if self.lanes > 1 {
                            for _ in 0..self.warps {
                                self.st.branch_events += self.scale;
                            }
                        }
                        if !c || self.active == 0 {
                            pc = *exit as usize;
                        } else {
                            pc += 1;
                        }
                    } else {
                        // Varying condition: fused cmask build + warp-level
                        // accounting + any/all discovery in one pass.
                        let record = self.lanes > 1;
                        let mut any_taken = false;
                        let mut any_not = false;
                        {
                            let fr = &mut self.for_stack[d];
                            fr.cmask.clear();
                            if v.is_f {
                                fr.cmask.extend((0..self.lanes).map(|l| v.get_f(l) != 0.0));
                            } else {
                                fr.cmask.extend((0..self.lanes).map(|l| v.get_i(l) != 0));
                            }
                            for (w, warp) in self.mask.chunks(self.simd).enumerate() {
                                let lo = w * self.simd;
                                let mut taken = 0usize;
                                let mut not_taken = 0usize;
                                for (l, &active) in warp.iter().enumerate() {
                                    if !active {
                                        continue;
                                    }
                                    if fr.cmask[lo + l] {
                                        taken += 1;
                                    } else {
                                        not_taken += 1;
                                    }
                                }
                                if taken + not_taken == 0 {
                                    continue;
                                }
                                if record {
                                    self.st.branch_events += self.scale;
                                    if taken > 0 && not_taken > 0 {
                                        self.st.divergent_branches += self.scale;
                                    }
                                }
                                any_taken |= taken > 0;
                                any_not |= not_taken > 0;
                            }
                        }
                        if !any_taken {
                            pc = *exit as usize;
                        } else {
                            if any_not {
                                let fr = &mut self.for_stack[d];
                                if !fr.dirty {
                                    // First narrowing: the current mask is
                                    // still the loop-entry mask.
                                    fr.saved.clear();
                                    fr.saved.extend_from_slice(&self.mask);
                                    fr.dirty = true;
                                }
                                for (m, &c) in self.mask.iter_mut().zip(&fr.cmask) {
                                    *m = *m && c;
                                }
                                self.refresh();
                            }
                            pc += 1;
                        }
                    }
                }
                Instr::ForExit => {
                    let d = self.for_depth - 1;
                    if self.for_stack[d].dirty {
                        self.mask.copy_from_slice(&self.for_stack[d].saved);
                        self.refresh();
                    }
                    self.for_depth = d;
                    pc += 1;
                }
                Instr::Jump { to } => {
                    pc = *to as usize;
                }
                Instr::FailNoCond => {
                    return Err(
                        self.fail(line, "for loop without condition never terminates".into())
                    );
                }
                Instr::ForeachVec { src, var, end } => {
                    if self.lanes != 1 {
                        return Err(self.fail(line, "foreach inside a vectorized foreach".into()));
                    }
                    let n = self.uniform_int(*src, line, "foreach count")?;
                    if n < 0 {
                        return Err(self.fail(line, format!("foreach count {n} < 0")));
                    }
                    let n = n as u64;
                    if n == 0 {
                        pc = *end as usize;
                        continue;
                    }
                    let gs = self.group as u64;
                    let chunks = n.div_ceil(gs);
                    let run_chunks = match self.sample {
                        Some(s) => chunks.min(s.max_chunks as u64),
                        None => chunks,
                    };
                    let d = self.fe_depth;
                    if self.fe_stack.len() == d {
                        self.fe_stack.push(FeFrame::default());
                    }
                    let outer_scale = self.scale;
                    {
                        let fr = &mut self.fe_stack[d];
                        fr.outer_scale = outer_scale;
                        fr.n = n;
                        fr.idx = 0;
                        fr.run = run_chunks;
                        fr.var = *var;
                        fr.saved_lanes = self.lanes;
                        fr.saved_mask.clear();
                        fr.saved_mask.extend_from_slice(&self.mask);
                    }
                    self.fe_depth += 1;
                    if run_chunks < chunks {
                        self.scale = outer_scale * chunks as f64 / run_chunks as f64;
                    }
                    self.enter_chunk(d);
                    pc += 1;
                }
                Instr::ForeachVecNext { head } => {
                    let d = self.fe_depth - 1;
                    self.fe_stack[d].idx += 1;
                    if self.fe_stack[d].idx < self.fe_stack[d].run {
                        self.enter_chunk(d);
                        pc = *head as usize + 1;
                    } else {
                        let fr = &self.fe_stack[d];
                        self.scale = fr.outer_scale;
                        self.lanes = fr.saved_lanes;
                        self.mask.clear();
                        self.mask.extend_from_slice(&fr.saved_mask);
                        self.refresh();
                        self.fe_depth = d;
                        pc += 1;
                    }
                }
                Instr::ForeachSeq { src, var, end } => {
                    if self.lanes != 1 {
                        return Err(self.fail(line, "foreach inside a vectorized foreach".into()));
                    }
                    let n = self.uniform_int(*src, line, "foreach count")?;
                    if n < 0 {
                        return Err(self.fail(line, format!("foreach count {n} < 0")));
                    }
                    let n = n as u64;
                    if n == 0 {
                        pc = *end as usize;
                        continue;
                    }
                    let run = match self.sample {
                        Some(s) => n.min(s.max_outer_iters as u64),
                        None => n,
                    };
                    let d = self.fe_depth;
                    if self.fe_stack.len() == d {
                        self.fe_stack.push(FeFrame::default());
                    }
                    let outer_scale = self.scale;
                    {
                        let fr = &mut self.fe_stack[d];
                        fr.outer_scale = outer_scale;
                        fr.n = n;
                        fr.idx = 0;
                        fr.run = run;
                        fr.var = *var;
                        fr.saved_lanes = self.lanes;
                    }
                    self.fe_depth += 1;
                    if run < n {
                        self.scale = outer_scale * n as f64 / run as f64;
                    }
                    self.pool[*var as usize].set_uniform_i(0);
                    pc += 1;
                }
                Instr::ForeachSeqNext { head } => {
                    let d = self.fe_depth - 1;
                    self.fe_stack[d].idx += 1;
                    if self.fe_stack[d].idx < self.fe_stack[d].run {
                        let (it, var) = (self.fe_stack[d].idx, self.fe_stack[d].var);
                        self.pool[var as usize].set_uniform_i(it as i64);
                        pc = *head as usize + 1;
                    } else {
                        self.scale = self.fe_stack[d].outer_scale;
                        self.fe_depth = d;
                        pc += 1;
                    }
                }
                Instr::Barrier => {
                    self.issue(CYCLE_BARRIER);
                    self.st.barriers += self.scale;
                    pc += 1;
                }
                Instr::ParamDim { src } => {
                    let v = self.uniform_int(*src, line, "array dimension")?;
                    self.dim_stack.push(v);
                    pc += 1;
                }
                Instr::ValidateDims { pidx, ndims, name } => {
                    let nd = *ndims as usize;
                    let start = self.dim_stack.len() - nd;
                    let expect: Vec<u64> =
                        self.dim_stack.drain(start..).map(|v| v as u64).collect();
                    let ArgValue::Array(arr) = &self.args[*pidx as usize] else {
                        unreachable!()
                    };
                    if arr.dims != expect {
                        return Err(self.fail(
                            line,
                            format!(
                                "argument `{name}`: declared dims {expect:?} but buffer has {:?}",
                                arr.dims
                            ),
                        ));
                    }
                    pc += 1;
                }
                Instr::ResetStats => {
                    // Prelude dim validation polluted the counters; zero
                    // everything. The L1 cache model deliberately persists,
                    // matching the tree walker.
                    self.st = KernelStats::default();
                    for a in &mut self.acc {
                        *a = SiteAcc::default();
                    }
                    pc += 1;
                }
                Instr::Fail { msg } => {
                    return Err(self.fail(line, msg.to_string()));
                }
                Instr::Halt => return Ok(()),
            }
        }
    }
}

/// Execute a compiled program. Entry validation (argument count, kinds,
/// ranks) mirrors the tree walker's `execute`; declared-dim validation runs
/// in the program prelude.
pub fn execute_compiled(
    prog: &Program,
    args: Vec<ArgValue>,
    opts: &ExecOptions,
) -> Result<ExecResult, ExecError> {
    if args.len() != prog.params.len() {
        return Err(ExecError {
            line: 1,
            message: format!(
                "kernel `{}` takes {} arguments, got {}",
                prog.kernel_name,
                prog.params.len(),
                args.len()
            ),
        });
    }
    let mut pool: Vec<VBuf> = vec![VBuf::default(); prog.n_slots];
    for (p, a) in prog.params.iter().zip(&args) {
        match (p.is_array, a) {
            (false, ArgValue::Int(v)) => {
                pool[p.slot.expect("scalar param has slot") as usize].set_uniform_i(*v);
            }
            (false, ArgValue::Float(v)) => {
                pool[p.slot.expect("scalar param has slot") as usize].set_uniform_f(*v);
            }
            (true, ArgValue::Array(arr)) => {
                if arr.rank() != p.rank {
                    return Err(ExecError {
                        line: 1,
                        message: format!(
                            "argument `{}`: rank {} expected, got {}",
                            p.name,
                            p.rank,
                            arr.rank()
                        ),
                    });
                }
            }
            _ => {
                return Err(ExecError {
                    line: 1,
                    message: format!("argument `{}` kind mismatch", p.name),
                })
            }
        }
    }
    let mut vm = Vm {
        prog,
        args,
        pool,
        arrays: vec![ScratchArr::default(); prog.n_arrays],
        lanes: 1,
        mask: vec![true],
        active: 1,
        warps: 1,
        simd: opts.simd_width.max(1),
        group: opts.group_size.max(1),
        sample: opts.sample,
        scale: 1.0,
        st: KernelStats::default(),
        acc: vec![SiteAcc::default(); prog.sites.len()],
        caches: vec![VecDeque::new(); prog.n_caches],
        seg: Vec::new(),
        addrs: Vec::new(),
        sidx: Vec::new(),
        dim_stack: Vec::new(),
        t0: VBuf::default(),
        t1: VBuf::default(),
        if_stack: Vec::new(),
        if_depth: 0,
        for_stack: Vec::new(),
        for_depth: 0,
        fe_stack: Vec::new(),
        fe_depth: 0,
    };
    vm.refresh();
    vm.run()?;
    let mut stats = mem::take(&mut vm.st);
    for (i, a) in vm.acc.iter().enumerate() {
        if a.touched {
            stats.sites.insert(prog.sites[i].clone(), a.s.clone());
        }
    }
    Ok(ExecResult {
        args: vm.args,
        stats,
    })
}

/// Compile and execute a checked kernel on the VM. Drop-in replacement for
/// [`crate::interp::execute`].
pub fn execute(
    ck: &CheckedKernel,
    args: Vec<ArgValue>,
    par_units: &[String],
    opts: &ExecOptions,
) -> Result<ExecResult, ExecError> {
    let prog = compile_program(ck, par_units);
    execute_compiled(&prog, args, opts)
}

/// Which kernel interpreter executes launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterpEngine {
    /// Reference tree-walking interpreter.
    Tree,
    /// Register-bytecode VM (default).
    #[default]
    Vm,
}

impl InterpEngine {
    pub fn parse(s: &str) -> Option<InterpEngine> {
        match s {
            "tree" => Some(InterpEngine::Tree),
            "vm" => Some(InterpEngine::Vm),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            InterpEngine::Tree => "tree",
            InterpEngine::Vm => "vm",
        }
    }
}

// Hand-written so the JSON form is the stable CLI token (`tree`, `vm`),
// shared by `--interp` and the scenario spec's `interp` field.
impl serde::Serialize for InterpEngine {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.name().to_string())
    }
}

impl serde::Deserialize for InterpEngine {
    fn from_content(content: &serde::Content) -> Result<InterpEngine, serde::DeError> {
        match content.as_str() {
            Some(s) => InterpEngine::parse(s)
                .ok_or_else(|| serde::DeError::unknown_variant(s, "InterpEngine")),
            None => Err(serde::DeError::expected("string", "InterpEngine", content)),
        }
    }
}

static DEFAULT_ENGINE: AtomicU8 = AtomicU8::new(1);

/// Set the process-wide default engine (e.g. from an `--interp` flag). Set
/// this once before spawning worker threads; launches read it on every
/// dispatch.
pub fn set_default_engine(e: InterpEngine) {
    DEFAULT_ENGINE.store(e as u8, Ordering::Relaxed);
}

pub fn default_engine() -> InterpEngine {
    if DEFAULT_ENGINE.load(Ordering::Relaxed) == InterpEngine::Tree as u8 {
        InterpEngine::Tree
    } else {
        InterpEngine::Vm
    }
}

/// Execute with an explicit engine choice.
pub fn execute_with_engine(
    engine: InterpEngine,
    ck: &CheckedKernel,
    args: Vec<ArgValue>,
    par_units: &[String],
    opts: &ExecOptions,
) -> Result<ExecResult, ExecError> {
    match engine {
        InterpEngine::Tree => crate::interp::execute(ck, args, par_units, opts),
        InterpEngine::Vm => execute(ck, args, par_units, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::parse::parse;
    use crate::value::ArrayArg;
    use cashmere_hwdesc::standard_hierarchy;

    /// Run a kernel on both engines and require identical outcomes:
    /// bit-identical stats (including per-site records) and identical
    /// argument buffers, or the exact same error.
    fn diff(src: &str, args: Vec<ArgValue>, opts: &ExecOptions) {
        let h = standard_hierarchy();
        let k = parse(src).expect("parse");
        let ck = check(&k, &h).expect("check");
        let units: Vec<String> = h
            .effective_params(ck.level)
            .par_units
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let t = crate::interp::execute(&ck, args.clone(), &units, opts);
        let v = execute(&ck, args, &units, opts);
        match (t, v) {
            (Ok(t), Ok(v)) => {
                assert_eq!(
                    format!("{:?}", t.stats),
                    format!("{:?}", v.stats),
                    "stats mismatch"
                );
                for (a, b) in [
                    (t.stats.issue_cycles, v.stats.issue_cycles),
                    (t.stats.flops, v.stats.flops),
                    (t.stats.global_bytes, v.stats.global_bytes),
                    (t.stats.ideal_global_bytes, v.stats.ideal_global_bytes),
                    (t.stats.local_bytes, v.stats.local_bytes),
                    (t.stats.issue_slots, v.stats.issue_slots),
                    (t.stats.active_slots, v.stats.active_slots),
                    (t.stats.total_threads, v.stats.total_threads),
                    (t.stats.branch_events, v.stats.branch_events),
                    (t.stats.divergent_branches, v.stats.divergent_branches),
                    (t.stats.barriers, v.stats.barriers),
                ] {
                    assert_eq!(a.to_bits(), b.to_bits(), "counter bits differ: {a} vs {b}");
                }
                assert_eq!(t.args, v.args, "argument buffers mismatch");
            }
            (Err(te), Err(ve)) => {
                assert_eq!(te, ve, "errors differ");
            }
            (t, v) => panic!("engines disagree: tree={t:?} vm={v:?}"),
        }
    }

    fn sampled() -> ExecOptions {
        ExecOptions {
            sample: Some(Sampling::default()),
            ..ExecOptions::default()
        }
    }

    const SAXPY: &str = "perfect void saxpy(int n, float alpha, float[n] y, float[n] x) {
  foreach (int i in n threads) {
    y[i] += alpha * x[i];
  }
}";

    fn saxpy_args(n: u64) -> Vec<ArgValue> {
        vec![
            ArgValue::Int(n as i64),
            ArgValue::Float(2.0),
            ArgValue::Array(ArrayArg::float(
                &[n],
                (0..n).map(|i| 1.0 + i as f64 * 0.25).collect(),
            )),
            ArgValue::Array(ArrayArg::float(&[n], (0..n).map(|i| i as f64).collect())),
        ]
    }

    #[test]
    fn saxpy_matches_tree() {
        diff(SAXPY, saxpy_args(100), &ExecOptions::default());
        diff(SAXPY, saxpy_args(1000), &sampled());
    }

    #[test]
    fn saxpy_phantom_sampled_matches_tree() {
        let n = 1_000_000u64;
        let args = vec![
            ArgValue::Int(n as i64),
            ArgValue::Float(2.0),
            ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n])),
            ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n])),
        ];
        diff(SAXPY, args, &sampled());
    }

    #[test]
    fn matmul_matches_tree() {
        let (n, m, p) = (7u64, 5u64, 9u64);
        let a: Vec<f64> = (0..n * p).map(|i| (i % 13) as f64 * 0.5).collect();
        let b: Vec<f64> = (0..p * m).map(|i| (i % 7) as f64 - 3.0).collect();
        let src =
            "perfect void matmul(int n, int m, int p, float[n,m] c, float[n,p] a, float[p,m] b) {
  foreach (int i in n threads) {
    foreach (int j in m threads) {
      float sum = 0.0;
      for (int k = 0; k < p; k++) { sum += a[i,k] * b[k,j]; }
      c[i,j] += sum;
    }
  }
}";
        let args = vec![
            ArgValue::Int(n as i64),
            ArgValue::Int(m as i64),
            ArgValue::Int(p as i64),
            ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[n, m])),
            ArgValue::Array(ArrayArg::float(&[n, p], a)),
            ArgValue::Array(ArrayArg::float(&[p, m], b)),
        ];
        diff(src, args.clone(), &ExecOptions::default());
        diff(src, args, &sampled());
    }

    #[test]
    fn divergent_branches_match_tree() {
        let src = "perfect void t(int n, float[n] a) {
  foreach (int i in n threads) {
    if (i % 2 == 0) { a[i] = 1.0; } else { a[i] = 2.0; }
  }
}";
        let args = vec![
            ArgValue::Int(64),
            ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[64])),
        ];
        diff(src, args, &ExecOptions::default());
    }

    #[test]
    fn local_tiling_with_barrier_matches_tree() {
        let src = "gpu void rev(int n, float[n] a) {
  foreach (int b in n / 64 blocks) {
    local float tile[64];
    foreach (int t in 64 threads) {
      tile[t] = a[b * 64 + t];
      barrier();
      a[b * 64 + t] = tile[63 - t];
    }
  }
}";
        let n = 128u64;
        let args = vec![
            ArgValue::Int(n as i64),
            ArgValue::Array(ArrayArg::float(&[n], (0..n).map(|i| i as f64).collect())),
        ];
        let opts = ExecOptions {
            group_size: 64,
            ..ExecOptions::default()
        };
        diff(src, args, &opts);
    }

    #[test]
    fn private_arrays_match_tree() {
        let src = "perfect void t(int n, float[n] out) {
  foreach (int i in n threads) {
    float acc[2];
    acc[0] = (float) i;
    acc[1] = acc[0] * 2.0;
    out[i] = acc[1];
  }
}";
        let args = vec![
            ArgValue::Int(8),
            ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[8])),
        ];
        diff(src, args, &ExecOptions::default());
    }

    #[test]
    fn varying_trip_counts_match_tree() {
        let src = "perfect void t(int n, float[n] out) {
  foreach (int i in n threads) {
    float s = 0.0;
    for (int k = 0; k < i; k++) { s += 1.0; }
    out[i] = s;
  }
}";
        let args = vec![
            ArgValue::Int(40),
            ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[40])),
        ];
        diff(src, args, &ExecOptions::default());
    }

    #[test]
    fn strided_and_broadcast_match_tree() {
        let strided = "perfect void t(int n, float[n] a) {
  foreach (int i in n / 16 threads) {
    a[i * 16] = 1.0;
  }
}";
        diff(
            strided,
            vec![
                ArgValue::Int(1024),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[1024])),
            ],
            &ExecOptions::default(),
        );
        let broadcast = "perfect void t(int n, float[n] a, float[n] b) {
  foreach (int i in n threads) {
    b[i] = a[0];
  }
}";
        diff(
            broadcast,
            vec![
                ArgValue::Int(64),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[64])),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[64])),
            ],
            &ExecOptions::default(),
        );
    }

    #[test]
    fn integer_bit_ops_match_tree() {
        let src = "perfect void t(int n, int[n] s) {
  foreach (int i in n threads) {
    int x = s[i];
    x = x ^ (x << 13);
    x = x ^ (x >> 7);
    x = x ^ (x << 17);
    s[i] = x & 2147483647;
  }
}";
        let args = vec![
            ArgValue::Int(4),
            ArgValue::Array(ArrayArg::int(&[4], vec![1, 2, 3, 4])),
        ];
        diff(src, args, &ExecOptions::default());
    }

    #[test]
    fn builtins_match_tree() {
        let src = "perfect void t(int n, float[n] a, int[n] b) {
  foreach (int i in n threads) {
    a[i] = sqrt(a[i]) + exp(a[i] * 0.01) + pow(a[i], 2.0) + clamp(a[i], 0.5, 2.5);
    b[i] = min(b[i], 7) + max(b[i], 2) + abs(b[i] - 5) + clamp(b[i], 1, 6);
  }
}";
        let n = 33u64;
        let args = vec![
            ArgValue::Int(n as i64),
            ArgValue::Array(ArrayArg::float(
                &[n],
                (0..n).map(|i| i as f64 * 0.3 - 2.0).collect(),
            )),
            ArgValue::Array(ArrayArg::int(&[n], (0..n).map(|i| i as i64 - 9).collect())),
        ];
        diff(src, args, &ExecOptions::default());
    }

    #[test]
    fn global_and_scratch_rmw_match_tree() {
        let src = "gpu void t(int n, float[n] a, int[n] c) {
  foreach (int b in 1 blocks) {
    local float acc[4];
    foreach (int i in n threads) {
      acc[i % 4] += a[i];
      a[i] *= 1.5;
      a[i] -= 0.25;
      a[i] /= 2.0;
      c[i] += i;
      acc[i % 4] = acc[i % 4] / 2.0;
    }
  }
}";
        let n = 32u64;
        let args = vec![
            ArgValue::Int(n as i64),
            ArgValue::Array(ArrayArg::float(
                &[n],
                (0..n).map(|i| i as f64 * 0.5).collect(),
            )),
            ArgValue::Array(ArrayArg::int(&[n], (0..n).map(|i| i as i64).collect())),
        ];
        diff(src, args, &ExecOptions::default());
    }

    #[test]
    fn dynamic_retyping_matches_tree() {
        // Assignments do not coerce to the declared type at runtime — the
        // VM must replicate the tree walker's dynamic typing exactly.
        let src = "perfect void t(int n, float[n] a) {
  foreach (int i in n threads) {
    float x = 0.0;
    x = 5;
    x = x + i;
    a[i] = x;
  }
}";
        let args = vec![
            ArgValue::Int(16),
            ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[16])),
        ];
        diff(src, args, &ExecOptions::default());
    }

    #[test]
    fn errors_match_tree() {
        // Data race.
        let race = "gpu void t(int n, float[n] a) {
  foreach (int b in 1 blocks) {
    float s = 0.0;
    foreach (int t in 64 threads) {
      s = (float) t;
      a[t] = s;
    }
  }
}";
        diff(
            race,
            vec![
                ArgValue::Int(64),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[64])),
            ],
            &ExecOptions::default(),
        );
        // Out of bounds.
        let oob = "perfect void t(int n, float[n] a) {
  foreach (int i in n threads) {
    a[i + 1] = 0.0;
  }
}";
        diff(
            oob,
            vec![
                ArgValue::Int(4),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[4])),
            ],
            &ExecOptions::default(),
        );
        // Wrong argument count / dims (single array param: deterministic).
        let saxpy_short = vec![ArgValue::Int(4)];
        diff(SAXPY, saxpy_short, &ExecOptions::default());
        let oob_dims = vec![
            ArgValue::Int(8),
            ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[4])),
        ];
        diff(oob, oob_dims, &ExecOptions::default());
        // Negative foreach count.
        let neg = "perfect void t(int n, float[n] a) {
  foreach (int i in n - 10 threads) {
    a[i] = 0.0;
  }
}";
        diff(
            neg,
            vec![
                ArgValue::Int(4),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[4])),
            ],
            &ExecOptions::default(),
        );
    }

    #[test]
    fn deterministic_counters_pinned() {
        // Regression pin: exact counter values for SAXPY n=100 on the VM.
        // These must match the tree walker bit-for-bit; if this test fails
        // the instrumentation semantics changed and every calibrated
        // artifact is suspect.
        let h = standard_hierarchy();
        let k = parse(SAXPY).expect("parse");
        let ck = check(&k, &h).expect("check");
        let units: Vec<String> = h
            .effective_params(ck.level)
            .par_units
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let r = execute(&ck, saxpy_args(100), &units, &ExecOptions::default()).unwrap();
        assert_eq!(r.stats.total_threads, 100.0);
        assert_eq!(r.stats.raw_lanes, 100.0);
        assert_eq!(r.stats.groups, 1.0);
        assert_eq!(r.stats.flops, 200.0);
        assert_eq!(r.stats.barriers, 0.0);
        let tree =
            crate::interp::execute(&ck, saxpy_args(100), &units, &ExecOptions::default()).unwrap();
        assert_eq!(
            r.stats.issue_cycles.to_bits(),
            tree.stats.issue_cycles.to_bits()
        );
        assert_eq!(
            r.stats.global_bytes.to_bits(),
            tree.stats.global_bytes.to_bits()
        );
    }

    #[test]
    fn engine_selection_roundtrip() {
        assert_eq!(InterpEngine::parse("tree"), Some(InterpEngine::Tree));
        assert_eq!(InterpEngine::parse("vm"), Some(InterpEngine::Vm));
        assert_eq!(InterpEngine::parse("x"), None);
        let prev = default_engine();
        set_default_engine(InterpEngine::Tree);
        assert_eq!(default_engine(), InterpEngine::Tree);
        set_default_engine(prev);
    }
}
