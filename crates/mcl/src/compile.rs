//! Bytecode compiler: lowers a [`CheckedKernel`] to a flat register program.
//!
//! The tree-walking interpreter ([`crate::interp`]) resolves variable names
//! through a stack of `HashMap` frames, allocates a fresh vector for every
//! expression node and builds site keys with string allocations on every
//! global access. All of that is static: MCPL has no functions and no
//! recursion, so lexical scoping *is* dynamic scoping, every variable can be
//! resolved to a fixed register slot at compile time, and every memory
//! access site / L1-model cache line can be interned to a small integer.
//!
//! `compile_program` performs that resolution once and emits a linear
//! [`Instr`] array that [`crate::vm`] executes with the same
//! warp-synchronous activity-mask semantics — and bit-identical
//! [`crate::stats::KernelStats`] — as the tree walker. Control flow
//! (`if`/`for`/`foreach`) becomes explicit jump targets patched after the
//! body is emitted; a side table maps every instruction back to its source
//! line for `ExecError` reporting.
//!
//! Also resolved statically (all verified equivalent to the tree walker's
//! runtime decisions):
//!
//! * which `foreach` vectorizes (innermost parallelism unit, no nested
//!   `foreach` — both decidable from the AST and the unit order);
//! * which `if` is predicated (small scalar-assign-only branches);
//! * which scalar assignments are data races (target declared lexically
//!   outside the vectorized `foreach`);
//! * which `x += a*b` assignments are FMA-fusion candidates (the int/float
//!   dispatch stays dynamic, matching the tree walker's runtime typing).

use crate::ast::*;
use crate::check::CheckedKernel;
use crate::stats::SiteKey;
use std::collections::HashMap;

/// Temp-register flag: slots with this bit set index the temp region and are
/// rebased after the variable count is known.
const TMP: u32 = 1 << 31;

/// Builtin functions, pre-resolved from call names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    Sqrt,
    Rsqrt,
    Fabs,
    Floor,
    Exp,
    Log,
    Sin,
    Cos,
    Tan,
    Pow,
    Min,
    Max,
    Abs,
    Clamp,
}

impl Builtin {
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "sqrt" => Builtin::Sqrt,
            "rsqrt" => Builtin::Rsqrt,
            "fabs" => Builtin::Fabs,
            "floor" => Builtin::Floor,
            "exp" => Builtin::Exp,
            "log" => Builtin::Log,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "tan" => Builtin::Tan,
            "pow" => Builtin::Pow,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "abs" => Builtin::Abs,
            "clamp" => Builtin::Clamp,
            _ => return None,
        })
    }

    /// Transcendental/division-class builtins cost `CYCLE_SPECIAL`.
    pub fn is_special(self) -> bool {
        matches!(
            self,
            Builtin::Sqrt
                | Builtin::Rsqrt
                | Builtin::Pow
                | Builtin::Exp
                | Builtin::Log
                | Builtin::Sin
                | Builtin::Cos
                | Builtin::Tan
        )
    }

    /// `min`/`max`/`abs`/`clamp` stay int when every argument is int.
    pub fn int_capable(self) -> bool {
        matches!(
            self,
            Builtin::Min | Builtin::Max | Builtin::Abs | Builtin::Clamp
        )
    }
}

/// One bytecode instruction. Register operands (`dst`, `src`, `a`, `b`,
/// `idx` elements) index the VM's unified slot pool: variables first, then
/// expression temps. `site`/`cache` index interned instrumentation tables.
#[derive(Debug, Clone)]
pub enum Instr {
    /// Uniform int literal → `dst`. No issue (literals are free).
    LitI {
        dst: u32,
        v: i64,
    },
    /// Uniform float literal → `dst`. No issue.
    LitF {
        dst: u32,
        v: f64,
    },
    /// `int x = src;` — coerce to int (or default 0) into the var slot.
    DeclI {
        dst: u32,
        src: Option<u32>,
    },
    /// `float x = src;` — coerce to float (or default 0.0).
    DeclF {
        dst: u32,
        src: Option<u32>,
    },
    /// Unary op. Issues `CYCLE_BASIC`; float negate counts one flop.
    Un {
        dst: u32,
        src: u32,
        op: UnOp,
    },
    /// Binary op with the tree walker's dynamic int/float dispatch.
    Bin {
        dst: u32,
        a: u32,
        b: u32,
        op: BinOp,
    },
    /// The multiply of a fusable `x += a*b`: float operands issue once for
    /// two flops (FMA); int operands behave exactly like `Bin` `Mul`.
    FmaMul {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Builtin call; arguments are already-evaluated slots.
    Call {
        dst: u32,
        f: Builtin,
        args: Box<[u32]>,
    },
    /// `(int)` / `(float)` cast. Issues `CYCLE_BASIC`, no flops.
    Cast {
        dst: u32,
        src: u32,
        to: ElemTy,
    },
    /// Write to a scalar declared outside the vectorized `foreach`: a data
    /// race when more than one lane is live.
    RaceCheck {
        name: Box<str>,
    },
    /// Scalar assignment: combine `slot` (old) with `src` per `op`, apply
    /// the activity mask, store back. `fused` marks an FMA-accounted add.
    Assign {
        slot: u32,
        src: u32,
        op: AssignOp,
        fused: bool,
    },
    /// Global-memory load: compute per-lane addresses from `idx` slots,
    /// account coalescing at `site` (L1 model entry `cache`), load.
    GlobalLoad {
        dst: u32,
        pidx: u32,
        idx: Box<[u32]>,
        site: u32,
        cache: u32,
    },
    /// Global-memory store or read-modify-write. `rmw` carries the combine
    /// op plus the load-side site and cache ids; addresses are computed
    /// once and shared by both accountings, exactly like the tree walker.
    GlobalAssign {
        pidx: u32,
        idx: Box<[u32]>,
        src: u32,
        rmw: Option<(BinOp, u32, u32)>,
        store_site: u32,
    },
    /// Scratch-array dimension: lane-uniform, positive; pushed for the
    /// following `ScratchDecl`.
    DimCheck {
        src: u32,
        name: Box<str>,
    },
    /// (Re-)initialize a local/private array. Runs — and re-zeroes — every
    /// time the declaration statement executes, like the tree walker.
    ScratchDecl {
        arr: u32,
        ndims: u32,
        ty: ElemTy,
        shared: bool,
    },
    /// Scratch (local/private) array load.
    ScratchLoad {
        dst: u32,
        arr: u32,
        idx: Box<[u32]>,
    },
    /// Scratch array store.
    ScratchStore {
        arr: u32,
        idx: Box<[u32]>,
        src: u32,
    },
    /// Head of an `if`: computes the condition mask, records divergence
    /// (unless predicated), runs the then-branch masked or jumps to
    /// `else_at`.
    IfCond {
        src: u32,
        predicated: bool,
        then_empty: bool,
        else_at: u32,
    },
    /// Between the branches: flips to the complement mask or jumps to the
    /// matching `IfEnd`.
    IfElse {
        else_empty: bool,
        end_at: u32,
    },
    /// Restores the pre-branch mask.
    IfEnd,
    /// `for` entry: saves the activity mask, resets the runaway guard.
    ForEnter,
    /// Top of every `for` iteration: the 1e9-iteration runaway check.
    ForGuard,
    /// `for` condition: records divergence in vector context, narrows the
    /// mask (loop-carried), exits to `exit` when no lane remains.
    ForCond {
        src: u32,
        exit: u32,
    },
    /// `for` exit: restores the saved mask.
    ForExit,
    Jump {
        to: u32,
    },
    /// A `for` without a condition ran its body once: never terminates.
    FailNoCond,
    /// Vectorized `foreach`: chunked lockstep execution of `var` over the
    /// count in `src`; `end` skips the body for zero-size domains.
    ForeachVec {
        src: u32,
        var: u32,
        end: u32,
    },
    /// End of a vectorized chunk: next chunk or restore scalar context.
    ForeachVecNext {
        head: u32,
    },
    /// Sequential (outer) `foreach` with a uniform index.
    ForeachSeq {
        src: u32,
        var: u32,
        end: u32,
    },
    ForeachSeqNext {
        head: u32,
    },
    /// `barrier()`.
    Barrier,
    /// Prelude: parameter dimension expression (lane-uniform), pushed for
    /// `ValidateDims`.
    ParamDim {
        src: u32,
    },
    /// Prelude: compare declared dims against the actual buffer.
    ValidateDims {
        pidx: u32,
        ndims: u32,
        name: Box<str>,
    },
    /// Prelude/body boundary: dimension validation cost is not charged, so
    /// zero every counter (the L1 cache model is deliberately *not* reset,
    /// matching the tree walker).
    ResetStats,
    /// Unconditional runtime error. Emitted for constructs the checker
    /// rejects (unbound names, array/scalar confusion) so that — like the
    /// tree walker — they only fail if actually executed.
    Fail {
        msg: Box<str>,
    },
    Halt,
}

/// Kernel parameter info needed for entry validation.
#[derive(Debug, Clone)]
pub struct PInfo {
    pub name: String,
    /// Register slot for scalar parameters.
    pub slot: Option<u32>,
    /// Declared rank; 0 = scalar.
    pub rank: usize,
    pub is_array: bool,
}

/// A compiled kernel: linear instruction array plus the interned tables the
/// VM needs to reproduce the tree walker's statistics bit-for-bit.
#[derive(Debug, Clone)]
pub struct Program {
    pub kernel_name: String,
    pub params: Vec<PInfo>,
    pub instrs: Vec<Instr>,
    /// Source line per instruction (for `ExecError` and site keys).
    pub lines: Vec<u32>,
    /// Register pool size: variables then expression temps.
    pub n_slots: usize,
    /// Scratch (local/private) array storage count.
    pub n_arrays: usize,
    /// Interned global-access sites in first-use order.
    pub sites: Vec<SiteKey>,
    /// Interned L1-model cache lines (per line+array, loads only).
    pub n_caches: usize,
}

#[derive(Clone)]
enum Binding {
    Scalar { slot: u32, depth: usize },
    Scratch { arr: u32 },
    GlobalArr { pidx: u32 },
}

struct Compiler {
    instrs: Vec<Instr>,
    lines: Vec<u32>,
    scopes: Vec<HashMap<String, Binding>>,
    n_vars: u32,
    sp: u32,
    max_sp: u32,
    n_arrays: u32,
    sites: Vec<SiteKey>,
    site_ids: HashMap<(usize, String, bool), u32>,
    cache_ids: HashMap<(usize, String), u32>,
    innermost_unit: String,
    /// Scope depth where the vectorized `foreach` body begins (the slot of
    /// the tree walker's `vector_base` frame index), when inside one.
    vec_boundary: Option<usize>,
}

impl Compiler {
    fn emit(&mut self, line: usize, i: Instr) -> u32 {
        self.instrs.push(i);
        self.lines.push(line as u32);
        (self.instrs.len() - 1) as u32
    }

    fn alloc_var(&mut self) -> u32 {
        let s = self.n_vars;
        self.n_vars += 1;
        s
    }

    fn alloc_tmp(&mut self) -> u32 {
        let s = self.sp;
        self.sp += 1;
        self.max_sp = self.max_sp.max(self.sp);
        TMP | s
    }

    fn bind(&mut self, name: &str, b: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), b);
    }

    fn resolve(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn site(&mut self, line: usize, array: &str, is_store: bool) -> u32 {
        if let Some(&id) = self.site_ids.get(&(line, array.to_string(), is_store)) {
            return id;
        }
        let id = self.sites.len() as u32;
        self.sites.push(SiteKey {
            line,
            array: array.to_string(),
            is_store,
        });
        self.site_ids
            .insert((line, array.to_string(), is_store), id);
        id
    }

    fn cache(&mut self, line: usize, array: &str) -> u32 {
        let next = self.cache_ids.len() as u32;
        *self
            .cache_ids
            .entry((line, array.to_string()))
            .or_insert(next)
    }

    fn fail(&mut self, line: usize, msg: String) -> u32 {
        self.emit(line, Instr::Fail { msg: msg.into() });
        self.alloc_tmp()
    }

    // ------------------------------------------------------------ exprs

    /// Compile an expression; returns the slot holding its value. Temps are
    /// stack-allocated: callers snapshot `self.sp` and roll back when the
    /// operand values are dead.
    fn expr(&mut self, e: &Expr, line: usize) -> u32 {
        match e {
            Expr::IntLit(v) => {
                let dst = self.alloc_tmp();
                self.emit(line, Instr::LitI { dst, v: *v });
                dst
            }
            Expr::FloatLit(v) => {
                let dst = self.alloc_tmp();
                self.emit(line, Instr::LitF { dst, v: *v });
                dst
            }
            Expr::Var(name) => match self.resolve(name) {
                Some(Binding::Scalar { slot, .. }) => *slot,
                Some(Binding::Scratch { .. }) => {
                    let msg = format!("`{name}` is an array, not a scalar");
                    self.fail(line, msg)
                }
                Some(Binding::GlobalArr { .. }) | None => {
                    let msg = format!("unbound variable `{name}`");
                    self.fail(line, msg)
                }
            },
            Expr::Index { array, indices } => {
                match self.resolve(array).cloned() {
                    Some(Binding::Scratch { arr }) => {
                        let sp0 = self.sp;
                        let idx: Box<[u32]> =
                            indices.iter().map(|ix| self.expr(ix, line)).collect();
                        self.sp = sp0;
                        let dst = self.alloc_tmp();
                        self.emit(line, Instr::ScratchLoad { dst, arr, idx });
                        dst
                    }
                    Some(Binding::GlobalArr { pidx }) => {
                        let sp0 = self.sp;
                        let idx: Box<[u32]> =
                            indices.iter().map(|ix| self.expr(ix, line)).collect();
                        self.sp = sp0;
                        let dst = self.alloc_tmp();
                        let site = self.site(line, array, false);
                        let cache = self.cache(line, array);
                        self.emit(
                            line,
                            Instr::GlobalLoad {
                                dst,
                                pidx,
                                idx,
                                site,
                                cache,
                            },
                        );
                        dst
                    }
                    // A scalar shadowing the name routes the tree walker
                    // into the scratch path, which rejects the slot kind.
                    Some(Binding::Scalar { .. }) => {
                        let msg = format!("`{array}` is not an array");
                        self.fail(line, msg)
                    }
                    None => {
                        let msg = format!("unbound array `{array}`");
                        self.fail(line, msg)
                    }
                }
            }
            Expr::Unary { op, operand } => {
                let sp0 = self.sp;
                let src = self.expr(operand, line);
                self.sp = sp0;
                let dst = self.alloc_tmp();
                self.emit(line, Instr::Un { dst, src, op: *op });
                dst
            }
            Expr::Binary { op, lhs, rhs } => {
                let sp0 = self.sp;
                let a = self.expr(lhs, line);
                let b = self.expr(rhs, line);
                self.sp = sp0;
                let dst = self.alloc_tmp();
                self.emit(line, Instr::Bin { dst, a, b, op: *op });
                dst
            }
            Expr::Call { name, args } => {
                let sp0 = self.sp;
                let argv: Box<[u32]> = args.iter().map(|a| self.expr(a, line)).collect();
                self.sp = sp0;
                let dst = self.alloc_tmp();
                match Builtin::from_name(name) {
                    Some(f) => {
                        self.emit(line, Instr::Call { dst, f, args: argv });
                    }
                    None => {
                        // Unreachable post-check; mirror a hard failure.
                        let msg = format!("unknown builtin `{name}`");
                        self.emit(line, Instr::Fail { msg: msg.into() });
                    }
                }
                dst
            }
            Expr::Cast { to, operand } => {
                let sp0 = self.sp;
                let src = self.expr(operand, line);
                self.sp = sp0;
                let dst = self.alloc_tmp();
                self.emit(line, Instr::Cast { dst, src, to: *to });
                dst
            }
        }
    }

    // ------------------------------------------------------- statements

    fn block(&mut self, body: &[Stmt]) {
        self.scopes.push(HashMap::new());
        self.stmts(body);
        self.scopes.pop();
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        let line = s.line;
        match &s.kind {
            StmtKind::DeclScalar { ty, name, init } => {
                let sp0 = self.sp;
                let src = init.as_ref().map(|e| self.expr(e, line));
                let dst = self.alloc_var();
                match ty {
                    ElemTy::Int => self.emit(line, Instr::DeclI { dst, src }),
                    ElemTy::Float => self.emit(line, Instr::DeclF { dst, src }),
                };
                self.sp = sp0;
                self.bind(
                    name,
                    Binding::Scalar {
                        slot: dst,
                        depth: self.scopes.len() - 1,
                    },
                );
            }
            StmtKind::DeclArray {
                space,
                ty,
                name,
                dims,
            } => {
                let arr = self.n_arrays;
                self.n_arrays += 1;
                for d in dims {
                    let sp0 = self.sp;
                    let src = self.expr(d, line);
                    self.emit(
                        line,
                        Instr::DimCheck {
                            src,
                            name: name.as_str().into(),
                        },
                    );
                    self.sp = sp0;
                }
                let shared = *space == Space::Local;
                self.emit(
                    line,
                    Instr::ScratchDecl {
                        arr,
                        ndims: dims.len() as u32,
                        ty: *ty,
                        shared,
                    },
                );
                self.bind(name, Binding::Scratch { arr });
            }
            StmtKind::Assign { target, op, value } => self.assign(target, *op, value, line),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let sp0 = self.sp;
                let src = self.expr(cond, line);
                self.sp = sp0;
                let predicated = is_predicatable(then_branch) && is_predicatable(else_branch);
                let if_at = self.emit(
                    line,
                    Instr::IfCond {
                        src,
                        predicated,
                        then_empty: then_branch.is_empty(),
                        else_at: 0,
                    },
                );
                self.block(then_branch);
                let else_at = self.emit(
                    line,
                    Instr::IfElse {
                        else_empty: else_branch.is_empty(),
                        end_at: 0,
                    },
                );
                self.block(else_branch);
                let end_at = self.emit(line, Instr::IfEnd);
                let Instr::IfCond { else_at: t, .. } = &mut self.instrs[if_at as usize] else {
                    unreachable!()
                };
                *t = else_at;
                let Instr::IfElse { end_at: t, .. } = &mut self.instrs[else_at as usize] else {
                    unreachable!()
                };
                *t = end_at;
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                self.emit(line, Instr::ForEnter);
                if let Some(i) = init {
                    self.stmt(i);
                }
                let head = self.instrs.len() as u32;
                self.emit(line, Instr::ForGuard);
                let cond_at = cond.as_ref().map(|c| {
                    let sp0 = self.sp;
                    let src = self.expr(c, line);
                    self.sp = sp0;
                    self.emit(line, Instr::ForCond { src, exit: 0 })
                });
                self.block(body);
                if let Some(st) = step {
                    self.stmt(st);
                }
                if cond.is_some() {
                    self.emit(line, Instr::Jump { to: head });
                } else {
                    self.emit(line, Instr::FailNoCond);
                }
                let exit = self.emit(line, Instr::ForExit);
                if let Some(at) = cond_at {
                    let Instr::ForCond { exit: t, .. } = &mut self.instrs[at as usize] else {
                        unreachable!()
                    };
                    *t = exit;
                }
                self.scopes.pop();
            }
            StmtKind::Foreach {
                var,
                count,
                unit,
                body,
            } => {
                let sp0 = self.sp;
                let src = self.expr(count, line);
                self.sp = sp0;
                let mut has_inner = false;
                walk_stmts(body, &mut |s| {
                    if matches!(s.kind, StmtKind::Foreach { .. }) {
                        has_inner = true;
                    }
                });
                let vectorize = *unit == self.innermost_unit && !has_inner;
                let saved_boundary = self.vec_boundary;
                if vectorize {
                    self.vec_boundary = Some(self.scopes.len());
                }
                self.scopes.push(HashMap::new());
                let vslot = self.alloc_var();
                self.bind(
                    var,
                    Binding::Scalar {
                        slot: vslot,
                        depth: self.scopes.len() - 1,
                    },
                );
                let head = if vectorize {
                    self.emit(
                        line,
                        Instr::ForeachVec {
                            src,
                            var: vslot,
                            end: 0,
                        },
                    )
                } else {
                    self.emit(
                        line,
                        Instr::ForeachSeq {
                            src,
                            var: vslot,
                            end: 0,
                        },
                    )
                };
                self.stmts(body);
                let next = if vectorize {
                    self.emit(line, Instr::ForeachVecNext { head })
                } else {
                    self.emit(line, Instr::ForeachSeqNext { head })
                };
                let end = next + 1;
                match &mut self.instrs[head as usize] {
                    Instr::ForeachVec { end: t, .. } | Instr::ForeachSeq { end: t, .. } => {
                        *t = end;
                    }
                    _ => unreachable!(),
                }
                self.scopes.pop();
                self.vec_boundary = saved_boundary;
            }
            StmtKind::Barrier => {
                self.emit(line, Instr::Barrier);
            }
        }
    }

    fn assign(&mut self, target: &LValue, op: AssignOp, value: &Expr, line: usize) {
        let sp0 = self.sp;
        // FMA fusion candidate: `x += a * b` on a scalar target. The
        // multiply is evaluated first, before the target is even resolved —
        // exactly the tree walker's order.
        let fused = if op == AssignOp::Add && target.indices.is_empty() {
            if let Expr::Binary {
                op: BinOp::Mul,
                lhs,
                rhs,
            } = value
            {
                let a = self.expr(lhs, line);
                let b = self.expr(rhs, line);
                self.sp = sp0;
                let dst = self.alloc_tmp();
                self.emit(line, Instr::FmaMul { dst, a, b });
                Some(dst)
            } else {
                None
            }
        } else {
            None
        };
        let was_fused = fused.is_some();

        if target.indices.is_empty() {
            // Scalar target.
            let binding = self.resolve(&target.name).cloned();
            let (slot, depth) = match binding {
                Some(Binding::Scalar { slot, depth }) => (slot, depth),
                Some(Binding::Scratch { .. }) => {
                    let msg = format!("`{}` is an array", target.name);
                    self.fail(line, msg);
                    self.sp = sp0;
                    return;
                }
                Some(Binding::GlobalArr { .. }) | None => {
                    let msg = format!("unbound variable `{}`", target.name);
                    self.fail(line, msg);
                    self.sp = sp0;
                    return;
                }
            };
            if let Some(boundary) = self.vec_boundary {
                if depth < boundary {
                    let msg = format!(
                        "write to `{}` from parallel context (declared outside the vectorized foreach) — a data race on real hardware",
                        target.name
                    );
                    self.emit(line, Instr::RaceCheck { name: msg.into() });
                }
            }
            let src = match fused {
                Some(s) => s,
                None => self.expr(value, line),
            };
            self.emit(
                line,
                Instr::Assign {
                    slot,
                    src,
                    op,
                    fused: was_fused,
                },
            );
            self.sp = sp0;
        } else {
            match self.resolve(&target.name).cloned() {
                Some(Binding::Scratch { arr }) => {
                    // Scratch element. RMW evaluates the index expressions
                    // twice (load access + store access), like the tree.
                    let src = match fused {
                        Some(s) => s,
                        None => self.expr(value, line),
                    };
                    if op == AssignOp::Set && !was_fused {
                        let idx: Box<[u32]> = target
                            .indices
                            .iter()
                            .map(|ix| self.expr(ix, line))
                            .collect();
                        self.emit(line, Instr::ScratchStore { arr, idx, src });
                    } else {
                        let idx: Box<[u32]> = target
                            .indices
                            .iter()
                            .map(|ix| self.expr(ix, line))
                            .collect();
                        let old = self.alloc_tmp();
                        self.emit(line, Instr::ScratchLoad { dst: old, arr, idx });
                        let combined = self.alloc_tmp();
                        self.emit(
                            line,
                            Instr::Bin {
                                dst: combined,
                                a: old,
                                b: src,
                                op: combine_op(op),
                            },
                        );
                        let idx2: Box<[u32]> = target
                            .indices
                            .iter()
                            .map(|ix| self.expr(ix, line))
                            .collect();
                        self.emit(
                            line,
                            Instr::ScratchStore {
                                arr,
                                idx: idx2,
                                src: combined,
                            },
                        );
                    }
                    self.sp = sp0;
                }
                Some(Binding::GlobalArr { pidx }) => {
                    let src = match fused {
                        Some(s) => s,
                        None => self.expr(value, line),
                    };
                    let idx: Box<[u32]> = target
                        .indices
                        .iter()
                        .map(|ix| self.expr(ix, line))
                        .collect();
                    let store_site = self.site(line, &target.name, true);
                    let rmw = if op == AssignOp::Set && !was_fused {
                        None
                    } else {
                        let load_site = self.site(line, &target.name, false);
                        let cache = self.cache(line, &target.name);
                        Some((combine_op(op), load_site, cache))
                    };
                    self.emit(
                        line,
                        Instr::GlobalAssign {
                            pidx,
                            idx,
                            src,
                            rmw,
                            store_site,
                        },
                    );
                    self.sp = sp0;
                }
                Some(Binding::Scalar { .. }) => {
                    // Scalar shadowing an array name: the tree walker's
                    // scratch path rejects the slot kind.
                    let msg = format!("`{}` is not an array", target.name);
                    self.fail(line, msg);
                    self.sp = sp0;
                }
                None => {
                    let msg = format!("unbound array `{}`", target.name);
                    self.fail(line, msg);
                    self.sp = sp0;
                }
            }
        }
    }
}

fn combine_op(op: AssignOp) -> BinOp {
    match op {
        AssignOp::Set => unreachable!("Set is not a combine"),
        AssignOp::Add => BinOp::Add,
        AssignOp::Sub => BinOp::Sub,
        AssignOp::Mul => BinOp::Mul,
        AssignOp::Div => BinOp::Div,
    }
}

/// Mirror of the tree walker's predication heuristic: small branches that
/// only assign scalars compile to select instructions — no divergence.
fn is_predicatable(body: &[Stmt]) -> bool {
    body.len() <= 4
        && body.iter().all(|s| {
            matches!(
                &s.kind,
                StmtKind::Assign { target, .. } if target.indices.is_empty()
            )
        })
}

/// Rebase temp-flagged slots after `n_vars` is known.
fn fixup_slot(s: &mut u32, n_vars: u32) {
    if *s & TMP != 0 {
        *s = n_vars + (*s & !TMP);
    }
}

fn fixup(i: &mut Instr, n_vars: u32) {
    let f = |s: &mut u32| fixup_slot(s, n_vars);
    match i {
        Instr::LitI { dst, .. } | Instr::LitF { dst, .. } => f(dst),
        Instr::DeclI { dst, src } | Instr::DeclF { dst, src } => {
            f(dst);
            if let Some(s) = src {
                f(s);
            }
        }
        Instr::Un { dst, src, .. } | Instr::Cast { dst, src, .. } => {
            f(dst);
            f(src);
        }
        Instr::Bin { dst, a, b, .. } | Instr::FmaMul { dst, a, b } => {
            f(dst);
            f(a);
            f(b);
        }
        Instr::Call { dst, args, .. } => {
            f(dst);
            for a in args.iter_mut() {
                f(a);
            }
        }
        Instr::Assign { slot, src, .. } => {
            f(slot);
            f(src);
        }
        Instr::GlobalLoad { dst, idx, .. } => {
            f(dst);
            for s in idx.iter_mut() {
                f(s);
            }
        }
        Instr::GlobalAssign { idx, src, .. } => {
            f(src);
            for s in idx.iter_mut() {
                f(s);
            }
        }
        Instr::DimCheck { src, .. } | Instr::ParamDim { src } => f(src),
        Instr::ScratchLoad { dst, idx, .. } => {
            f(dst);
            for s in idx.iter_mut() {
                f(s);
            }
        }
        Instr::ScratchStore { idx, src, .. } => {
            f(src);
            for s in idx.iter_mut() {
                f(s);
            }
        }
        Instr::IfCond { src, .. } | Instr::ForCond { src, .. } => f(src),
        Instr::ForeachVec { src, var, .. } | Instr::ForeachSeq { src, var, .. } => {
            f(src);
            f(var);
        }
        _ => {}
    }
}

/// Compile a checked kernel against a parallelism-unit order (outermost
/// first; the last unit vectorizes). The same `par_units` must be passed to
/// the VM-producing wrapper as the tree walker's `execute` receives.
pub fn compile_program(ck: &CheckedKernel, par_units: &[String]) -> Program {
    let mut c = Compiler {
        instrs: Vec::new(),
        lines: Vec::new(),
        scopes: vec![HashMap::new()],
        n_vars: 0,
        sp: 0,
        max_sp: 0,
        n_arrays: 0,
        sites: Vec::new(),
        site_ids: HashMap::new(),
        cache_ids: HashMap::new(),
        innermost_unit: par_units.last().cloned().unwrap_or_default(),
        vec_boundary: None,
    };

    // Base scope: parameters. Scalars get register slots; arrays resolve to
    // their argument index.
    let mut params = Vec::with_capacity(ck.kernel.params.len());
    for (i, p) in ck.kernel.params.iter().enumerate() {
        if p.is_array() {
            c.bind(&p.name, Binding::GlobalArr { pidx: i as u32 });
            params.push(PInfo {
                name: p.name.clone(),
                slot: None,
                rank: p.dims.len(),
                is_array: true,
            });
        } else {
            let slot = c.alloc_var();
            c.bind(&p.name, Binding::Scalar { slot, depth: 0 });
            params.push(PInfo {
                name: p.name.clone(),
                slot: Some(slot),
                rank: 0,
                is_array: false,
            });
        }
    }

    // Prelude: validate declared dims against the actual buffers, in
    // parameter order, then reset the counters the validation polluted.
    // (The tree walker iterates a HashMap here — nondeterministic when
    // several params mismatch at once; declaration order is one of its
    // possible orders.)
    for (i, p) in ck.kernel.params.iter().enumerate() {
        if !p.is_array() {
            continue;
        }
        for d in &p.dims {
            let sp0 = c.sp;
            let src = c.expr(d, 1);
            c.emit(1, Instr::ParamDim { src });
            c.sp = sp0;
        }
        c.emit(
            1,
            Instr::ValidateDims {
                pidx: i as u32,
                ndims: p.dims.len() as u32,
                name: p.name.as_str().into(),
            },
        );
    }
    c.emit(1, Instr::ResetStats);

    c.stmts(&ck.kernel.body);
    c.emit(ck.kernel.body.last().map_or(1, |s| s.line), Instr::Halt);

    let n_vars = c.n_vars;
    for i in &mut c.instrs {
        fixup(i, n_vars);
    }

    Program {
        kernel_name: ck.kernel.name.clone(),
        params,
        instrs: c.instrs,
        lines: c.lines,
        n_slots: (n_vars + c.max_sp) as usize,
        n_arrays: c.n_arrays as usize,
        sites: c.sites,
        n_caches: c.cache_ids.len(),
    }
}
