//! Translation between abstraction levels (paper Sec. III-A).
//!
//! "MCL can automatically translate kernels written for the programming
//! abstractions of hardware description *x* to the programming abstractions
//! of a child level *y*. […] During this translation process the compiler
//! does not apply optimizations."
//!
//! The implemented rules:
//!
//! * same parallelism units (e.g. `gpu` → `nvidia` → `gtx480`): the kernel
//!   is re-targeted verbatim;
//! * one flat unit → two-level units (`perfect` → `gpu`/`mic`): the
//!   innermost `threads` domain is split into groups of the child's thread
//!   capacity with a bounds guard, outer `threads` domains become the
//!   child's outer unit;
//! * one flat unit → one flat unit (`perfect` → `host_cpu`): unit renaming.
//!
//! The result is deliberately *unoptimized* — it is the starting point for
//! another round of stepwise refinement at the lower level.

use crate::ast::*;
use crate::check::{check, CheckError, CheckedKernel};
use cashmere_hwdesc::Hierarchy;

/// Default group size used when splitting a flat thread domain and the
/// child's thread unit declares no maximum.
const DEFAULT_SPLIT: u64 = 256;

/// Translate `ck` to `target`, which must be a descendant of the kernel's
/// current level. Returns the checked kernel at the new level.
pub fn translate_to(
    ck: &CheckedKernel,
    h: &Hierarchy,
    target: &str,
) -> Result<CheckedKernel, CheckError> {
    let tgt = h.id(target).ok_or_else(|| CheckError {
        line: 1,
        message: format!("unknown target level `{target}`"),
    })?;
    if !h.is_ancestor_or_self(ck.level, tgt) {
        return Err(CheckError {
            line: 1,
            message: format!(
                "cannot translate from `{}` to `{target}`: target is not a descendant",
                h.name(ck.level)
            ),
        });
    }

    let src_units: Vec<String> = h
        .effective_params(ck.level)
        .par_units
        .iter()
        .map(|u| u.name.clone())
        .collect();
    let tgt_params = h.effective_params(tgt);
    let tgt_units: Vec<String> = tgt_params
        .par_units
        .iter()
        .map(|u| u.name.clone())
        .collect();

    let mut kernel = ck.kernel.clone();
    kernel.level = target.to_string();

    if src_units == tgt_units {
        // Same abstractions, only the level name changes.
        return check(&kernel, h);
    }

    if src_units.len() == 1 {
        let src_unit = &src_units[0];
        match tgt_units.len() {
            1 => {
                rename_unit(&mut kernel.body, src_unit, &tgt_units[0]);
                return check(&kernel, h);
            }
            2 => {
                let inner_max = tgt_params
                    .par_units
                    .last()
                    .and_then(|u| u.max)
                    .unwrap_or(DEFAULT_SPLIT)
                    .min(DEFAULT_SPLIT);
                let mut counter = 0usize;
                kernel.body = split_body(
                    kernel.body,
                    src_unit,
                    &tgt_units[0],
                    &tgt_units[1],
                    inner_max,
                    &mut counter,
                );
                return check(&kernel, h);
            }
            _ => {}
        }
    }

    Err(CheckError {
        line: 1,
        message: format!("no translation rule from units {src_units:?} to {tgt_units:?}"),
    })
}

fn rename_unit(body: &mut [Stmt], from: &str, to: &str) {
    for s in body {
        match &mut s.kind {
            StmtKind::Foreach { unit, body, .. } => {
                if unit == from {
                    *unit = to.to_string();
                }
                rename_unit(body, from, to);
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                rename_unit(then_branch, from, to);
                rename_unit(else_branch, from, to);
            }
            StmtKind::For { body, .. } => rename_unit(body, from, to),
            _ => {}
        }
    }
}

/// Rewrite a statement list: innermost `foreach … in src_unit` domains are
/// split into `outer × inner` with a bounds guard; non-innermost ones are
/// mapped to the outer unit.
fn split_body(
    body: Vec<Stmt>,
    src_unit: &str,
    outer: &str,
    inner: &str,
    chunk: u64,
    counter: &mut usize,
) -> Vec<Stmt> {
    body.into_iter()
        .map(|s| split_stmt(s, src_unit, outer, inner, chunk, counter))
        .collect()
}

fn split_stmt(
    mut s: Stmt,
    src_unit: &str,
    outer: &str,
    inner: &str,
    chunk: u64,
    counter: &mut usize,
) -> Stmt {
    let line = s.line;
    match s.kind {
        StmtKind::Foreach {
            var,
            count,
            unit,
            body,
        } if unit == src_unit => {
            let mut has_inner = false;
            walk_stmts(&body, &mut |t| {
                if matches!(t.kind, StmtKind::Foreach { .. }) {
                    has_inner = true;
                }
            });
            if has_inner {
                // Outer parallel domain → child's outer unit, recurse inside.
                let body = split_body(body, src_unit, outer, inner, chunk, counter);
                Stmt::new(
                    line,
                    StmtKind::Foreach {
                        var,
                        count,
                        unit: outer.to_string(),
                        body,
                    },
                )
            } else {
                // Innermost domain → outer×inner split with a guard:
                //   foreach (__g in (count + chunk-1)/chunk outer) {
                //     foreach (__l in chunk inner) {
                //       int var = __g*chunk + __l;
                //       if (var < count) { body }
                //     }
                //   }
                let id = *counter;
                *counter += 1;
                let gvar = format!("__g{id}");
                let lvar = format!("__l{id}");
                let groups = Expr::bin(
                    BinOp::Div,
                    Expr::bin(BinOp::Add, count.clone(), Expr::int(chunk as i64 - 1)),
                    Expr::int(chunk as i64),
                );
                let recover = Stmt::new(
                    line,
                    StmtKind::DeclScalar {
                        ty: ElemTy::Int,
                        name: var.clone(),
                        init: Some(Expr::bin(
                            BinOp::Add,
                            Expr::bin(BinOp::Mul, Expr::var(&gvar), Expr::int(chunk as i64)),
                            Expr::var(&lvar),
                        )),
                    },
                );
                let guard = Stmt::new(
                    line,
                    StmtKind::If {
                        cond: Expr::bin(BinOp::Lt, Expr::var(&var), count),
                        then_branch: body,
                        else_branch: vec![],
                    },
                );
                Stmt::new(
                    line,
                    StmtKind::Foreach {
                        var: gvar.clone(),
                        count: groups,
                        unit: outer.to_string(),
                        body: vec![Stmt::new(
                            line,
                            StmtKind::Foreach {
                                var: lvar,
                                count: Expr::int(chunk as i64),
                                unit: inner.to_string(),
                                body: vec![recover, guard],
                            },
                        )],
                    },
                )
            }
        }
        StmtKind::Foreach {
            var,
            count,
            unit,
            body,
        } => {
            let body = split_body(body, src_unit, outer, inner, chunk, counter);
            s.kind = StmtKind::Foreach {
                var,
                count,
                unit,
                body,
            };
            s
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            s.kind = StmtKind::If {
                cond,
                then_branch: split_body(then_branch, src_unit, outer, inner, chunk, counter),
                else_branch: split_body(else_branch, src_unit, outer, inner, chunk, counter),
            };
            s
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            s.kind = StmtKind::For {
                init,
                cond,
                step,
                body: split_body(body, src_unit, outer, inner, chunk, counter),
            };
            s
        }
        other => {
            s.kind = other;
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::interp::{execute, ExecOptions};
    use crate::value::{ArgValue, ArrayArg};
    use cashmere_hwdesc::standard_hierarchy;

    const SAXPY: &str = "perfect void saxpy(int n, float alpha, float[n] y, float[n] x) {
  foreach (int i in n threads) {
    y[i] += alpha * x[i];
  }
}";

    fn run_kernel(ck: &CheckedKernel, h: &cashmere_hwdesc::Hierarchy, n: u64) -> Vec<f64> {
        let units: Vec<String> = h
            .effective_params(ck.level)
            .par_units
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let x = ArrayArg::float(&[n], (0..n).map(|i| i as f64).collect());
        let y = ArrayArg::float(&[n], vec![1.0; n as usize]);
        let r = execute(
            ck,
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Float(2.0),
                ArgValue::Array(y),
                ArgValue::Array(x),
            ],
            &units,
            &ExecOptions {
                group_size: 64,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        r.args[2].clone().array().as_f64().to_vec()
    }

    #[test]
    fn identity_translation_down_same_units() {
        let h = standard_hierarchy();
        let src = "gpu void t(int n, float[n] a) {
  foreach (int b in n / 64 blocks) {
    foreach (int t in 64 threads) { a[b * 64 + t] = 1.0; }
  }
}";
        let ck = compile(src, &h).unwrap();
        let t = translate_to(&ck, &h, "gtx480").unwrap();
        assert_eq!(t.kernel.level, "gtx480");
        assert_eq!(t.kernel.body, ck.kernel.body, "no rewriting needed");
    }

    #[test]
    fn perfect_to_gpu_splits_and_guards() {
        let h = standard_hierarchy();
        let ck = compile(SAXPY, &h).unwrap();
        let t = translate_to(&ck, &h, "gpu").unwrap();
        assert_eq!(t.kernel.level, "gpu");
        // Outer foreach over blocks, inner over threads, with a guard.
        let StmtKind::Foreach { unit, body, .. } = &t.kernel.body[0].kind else {
            panic!()
        };
        assert_eq!(unit, "blocks");
        let StmtKind::Foreach { unit, body, .. } = &body[0].kind else {
            panic!()
        };
        assert_eq!(unit, "threads");
        assert!(matches!(body[0].kind, StmtKind::DeclScalar { .. }));
        assert!(matches!(body[1].kind, StmtKind::If { .. }));
    }

    #[test]
    fn translated_kernel_computes_identical_results() {
        let h = standard_hierarchy();
        let ck = compile(SAXPY, &h).unwrap();
        // n deliberately not a multiple of the split so the guard matters.
        let n = 1000;
        let reference = run_kernel(&ck, &h, n);
        for target in ["gpu", "mic", "host_cpu", "gtx480", "xeon_phi"] {
            let t = translate_to(&ck, &h, target).unwrap();
            let got = run_kernel(&t, &h, n);
            assert_eq!(got, reference, "target {target}");
        }
    }

    #[test]
    fn nested_thread_domains_translate() {
        // Fig. 3-style nested foreach: outer becomes blocks, inner splits.
        let h = standard_hierarchy();
        let src = "perfect void t(int n, int m, float[n,m] a) {
  foreach (int i in n threads) {
    foreach (int j in m threads) {
      a[i,j] = (float) (i + j);
    }
  }
}";
        let ck = compile(src, &h).unwrap();
        let t = translate_to(&ck, &h, "gpu").unwrap();
        let StmtKind::Foreach { unit, .. } = &t.kernel.body[0].kind else {
            panic!()
        };
        assert_eq!(unit, "blocks", "outer thread domain becomes blocks");
        // Functional check.
        let (n, m) = (5u64, 70u64);
        let units: Vec<String> = h
            .effective_params(t.level)
            .par_units
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let r = execute(
            &t,
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Int(m as i64),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[n, m])),
            ],
            &units,
            &ExecOptions::default(),
        )
        .unwrap();
        let a = r.args[2].clone().array();
        for i in 0..n {
            for j in 0..m {
                assert_eq!(a.as_f64()[(i * m + j) as usize], (i + j) as f64);
            }
        }
    }

    #[test]
    fn translation_to_host_cpu_renames_unit() {
        let h = standard_hierarchy();
        let ck = compile(SAXPY, &h).unwrap();
        let t = translate_to(&ck, &h, "host_cpu").unwrap();
        let StmtKind::Foreach { unit, .. } = &t.kernel.body[0].kind else {
            panic!()
        };
        assert_eq!(unit, "cores");
    }

    #[test]
    fn upward_translation_rejected() {
        let h = standard_hierarchy();
        let src = "gpu void t(int n, float[n] a) {
  foreach (int b in n blocks) { a[b] = 0.0; }
}";
        let ck = compile(src, &h).unwrap();
        let err = translate_to(&ck, &h, "perfect").unwrap_err();
        assert!(err.message.contains("descendant"), "{err}");
        let err2 = translate_to(&ck, &h, "xeon_phi").unwrap_err();
        assert!(err2.message.contains("descendant"), "{err2}");
    }

    #[test]
    fn unknown_target_rejected() {
        let h = standard_hierarchy();
        let ck = compile(SAXPY, &h).unwrap();
        assert!(translate_to(&ck, &h, "nonsense").is_err());
    }
}
