//! Per-node NIC serialization.
//!
//! Each node has one full-duplex port: concurrent sends from the same node
//! queue behind each other (likewise receives into the same node), while a
//! send and a receive can overlap. A point-to-point transfer therefore
//! starts when *both* the sender's TX path and the receiver's RX path are
//! free, and occupies each for the transfer's serialization time.

use crate::NetConfig;
use cashmere_des::obs::prof;
use cashmere_des::SimTime;
use serde::{Deserialize, Serialize};

/// The transmit/receive availability of one node's network port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeNic {
    pub tx_free_at: SimTime,
    pub rx_free_at: SimTime,
    /// Bytes sent/received, for reporting.
    pub bytes_tx: u64,
    pub bytes_rx: u64,
}

/// A scheduled point-to-point transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// When the wire starts moving data.
    pub start: SimTime,
    /// When the last byte arrives at the receiver.
    pub arrival: SimTime,
}

impl Transfer {
    /// End-to-end latency: first byte on the wire to last byte received.
    pub fn duration(&self) -> SimTime {
        self.arrival - self.start
    }
}

/// Schedule a transfer of `bytes` from `src` to `dst`, requested at `now`,
/// with the given per-endpoint CPU busy fractions. Updates both NICs.
///
/// Timeline: the message waits for the sender's TX path and the sender-side
/// CPU handling, is serialized onto the wire, traverses the fabric
/// (latency), then occupies the receiver's RX path for the same
/// serialization time plus receiver-side handling.
pub fn schedule_transfer(
    net: &NetConfig,
    now: SimTime,
    src: &mut NodeNic,
    dst: &mut NodeNic,
    bytes: u64,
    src_busy_fraction: f64,
    dst_busy_fraction: f64,
) -> Transfer {
    let _prof = prof::scope("net::transfer");
    let ser = SimTime::from_secs_f64(bytes as f64 / (net.bandwidth_gbs * 1e9));
    let send_handling = net.handling_time(src_busy_fraction);
    let recv_handling = net.handling_time(dst_busy_fraction);

    // Sender: wait for TX path, pay handling, then serialize.
    let tx_start = now.max(src.tx_free_at) + send_handling;
    let tx_end = tx_start + ser;
    // Receiver: data can only land when the RX path is free.
    let rx_start = (tx_start + net.latency).max(dst.rx_free_at);
    let rx_end = rx_start + ser + recv_handling;

    src.tx_free_at = tx_end;
    src.bytes_tx += bytes;
    dst.rx_free_at = rx_end;
    dst.bytes_rx += bytes;

    Transfer {
        start: tx_start,
        arrival: rx_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn single_transfer_timing() {
        let net = NetConfig::qdr_infiniband();
        let mut a = NodeNic::default();
        let mut b = NodeNic::default();
        // 3.2 MB at 3.2 GB/s = 1 ms serialization.
        let tr = schedule_transfer(&net, t(0), &mut a, &mut b, 3_200_000, 0.0, 0.0);
        let expect_start = net.cpu_handling;
        assert_eq!(tr.start, expect_start);
        // Cut-through: the receive path overlaps the wire serialization, so
        // the last byte lands start + latency + serialization later, plus
        // receiver-side handling.
        let expect_arrival =
            expect_start + net.latency + SimTime::from_millis(1) + net.cpu_handling;
        assert_eq!(tr.arrival, expect_arrival);
        assert_eq!(a.bytes_tx, 3_200_000);
        assert_eq!(b.bytes_rx, 3_200_000);
    }

    #[test]
    fn sends_from_same_node_serialize() {
        let net = NetConfig::qdr_infiniband();
        let mut a = NodeNic::default();
        let mut b = NodeNic::default();
        let mut c = NodeNic::default();
        let t1 = schedule_transfer(&net, t(0), &mut a, &mut b, 3_200_000, 0.0, 0.0);
        let t2 = schedule_transfer(&net, t(0), &mut a, &mut c, 3_200_000, 0.0, 0.0);
        assert!(t2.start >= t1.start + SimTime::from_millis(1), "TX queued");
    }

    #[test]
    fn send_and_receive_overlap() {
        let net = NetConfig::qdr_infiniband();
        let mut a = NodeNic::default();
        let mut b = NodeNic::default();
        let out = schedule_transfer(&net, t(0), &mut a, &mut b, 3_200_000, 0.0, 0.0);
        // Traffic in the opposite direction is not blocked by a's TX.
        let mut a2 = a;
        let inbound = schedule_transfer(&net, t(0), &mut b, &mut a2, 3_200_000, 0.0, 0.0);
        assert_eq!(inbound.start, out.start, "full duplex");
    }

    #[test]
    fn receives_into_same_node_serialize() {
        let net = NetConfig::qdr_infiniband();
        let mut a = NodeNic::default();
        let mut b = NodeNic::default();
        let mut c = NodeNic::default();
        let t1 = schedule_transfer(&net, t(0), &mut a, &mut c, 3_200_000, 0.0, 0.0);
        let t2 = schedule_transfer(&net, t(0), &mut b, &mut c, 3_200_000, 0.0, 0.0);
        assert!(
            t2.arrival >= t1.arrival + SimTime::from_millis(1),
            "RX queued"
        );
    }

    #[test]
    fn busy_cpu_delays_transfers() {
        let net = NetConfig::qdr_infiniband();
        let mut a = NodeNic::default();
        let mut b = NodeNic::default();
        let idle = schedule_transfer(&net, t(0), &mut a, &mut b, 1000, 0.0, 0.0);
        let mut a2 = NodeNic::default();
        let mut b2 = NodeNic::default();
        let busy = schedule_transfer(&net, t(0), &mut a2, &mut b2, 1000, 1.0, 1.0);
        assert!(busy.arrival > idle.arrival);
        let extra = busy.arrival - idle.arrival;
        // 2 endpoints × 4×handling extra
        assert_eq!(extra, net.cpu_handling * 8);
    }
}
