//! # cashmere-netsim — cluster interconnect model
//!
//! Models the DAS-4's QDR InfiniBand fabric at the level the paper's
//! evaluation depends on: per-message latency, per-byte bandwidth,
//! full-duplex NIC serialization per node, and the CPU-contention coupling
//! the paper identifies as Satin's second scaling problem ("since all cores
//! on the CPUs are fully occupied with computation, communication and
//! load-balancing tasks suffer from the lack of available compute-power",
//! Sec. V-B).
//!
//! The model is deliberately topology-free (a non-blocking fat tree, which
//! QDR IB on DAS-4 approximates): contention happens at the endpoints, not
//! in the core.

pub mod nic;

pub use nic::{NodeNic, Transfer};

use cashmere_des::SimTime;
use serde::{Deserialize, Serialize};

/// Interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// One-way small-message latency.
    pub latency: SimTime,
    /// Per-direction link bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Per-message CPU handling cost on each endpoint (serialization,
    /// progress engine) when the host CPU is idle.
    pub cpu_handling: SimTime,
    /// How strongly busy CPU cores inflate message handling: handling time
    /// is multiplied by `1 + cpu_contention * busy_fraction`.
    pub cpu_contention: f64,
}

impl NetConfig {
    /// QDR InfiniBand as measured on DAS-4-class hardware: ~1.3 µs latency,
    /// ~3.2 GB/s sustained per direction (of the 4 GB/s signal rate).
    pub fn qdr_infiniband() -> NetConfig {
        NetConfig {
            latency: SimTime::from_nanos(1_300),
            bandwidth_gbs: 3.2,
            cpu_handling: SimTime::from_micros(2),
            cpu_contention: 4.0,
        }
    }

    /// Gigabit Ethernet, for slow-network ablations.
    pub fn gigabit_ethernet() -> NetConfig {
        NetConfig {
            latency: SimTime::from_micros(50),
            bandwidth_gbs: 0.117,
            cpu_handling: SimTime::from_micros(10),
            cpu_contention: 4.0,
        }
    }

    /// The same fabric virtually scaled by `factor` (advisor what-if):
    /// bandwidth multiplies, latency divides; endpoint CPU handling is a
    /// host-side cost and stays untouched.
    pub fn scaled(&self, factor: f64) -> NetConfig {
        assert!(factor.is_finite() && factor > 0.0, "bad network factor");
        NetConfig {
            latency: SimTime::from_secs_f64(self.latency.as_secs_f64() / factor),
            bandwidth_gbs: self.bandwidth_gbs * factor,
            ..*self
        }
    }

    /// Pure wire time of `bytes` (latency + serialization), no endpoint
    /// contention.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        let ser = bytes as f64 / (self.bandwidth_gbs * 1e9);
        self.latency + SimTime::from_secs_f64(ser)
    }

    /// Endpoint CPU handling time given the fraction of busy cores on that
    /// node. This is the mechanism behind Satin's reduced scalability: with
    /// all 8 cores computing, every steal request and reply is served late.
    pub fn handling_time(&self, busy_fraction: f64) -> SimTime {
        let f = busy_fraction.clamp(0.0, 1.0);
        SimTime::from_secs_f64(self.cpu_handling.as_secs_f64() * (1.0 + self.cpu_contention * f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_bytes() {
        let net = NetConfig::qdr_infiniband();
        let small = net.wire_time(0);
        assert_eq!(small, SimTime::from_nanos(1_300));
        let mb = net.wire_time(1_000_000);
        // 1 MB at 3.2 GB/s ≈ 312 µs + latency
        let expect = 1e6 / 3.2e9;
        assert!((mb.as_secs_f64() - (1.3e-6 + expect)).abs() < 1e-9);
    }

    #[test]
    fn handling_time_grows_with_cpu_business() {
        let net = NetConfig::qdr_infiniband();
        let idle = net.handling_time(0.0);
        let busy = net.handling_time(1.0);
        assert_eq!(idle, net.cpu_handling);
        assert_eq!(busy, net.cpu_handling * 5);
        // clamped
        assert_eq!(net.handling_time(7.0), busy);
    }

    #[test]
    fn scaled_fabric_halves_wire_time() {
        let net = NetConfig::qdr_infiniband();
        let fast = net.scaled(2.0);
        assert_eq!(fast.latency, SimTime::from_nanos(650));
        assert!((fast.bandwidth_gbs - 6.4).abs() < 1e-12);
        let w = net.wire_time(1_000_000).as_secs_f64();
        let wf = fast.wire_time(1_000_000).as_secs_f64();
        assert!((w / wf - 2.0).abs() < 1e-9, "{w} vs {wf}");
        // Handling cost is a CPU property, not a fabric one.
        assert_eq!(fast.cpu_handling, net.cpu_handling);
    }

    #[test]
    fn ethernet_is_much_slower() {
        let ib = NetConfig::qdr_infiniband();
        let eth = NetConfig::gigabit_ethernet();
        assert!(eth.wire_time(1_000_000) > ib.wire_time(1_000_000) * 20);
    }
}
