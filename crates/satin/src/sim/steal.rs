//! Steal-victim selection policies — the work-stealing half of the policy
//! arena.
//!
//! The engine historically hard-coded Satin's uniform-random victim pick
//! inside `initiate_steal`; this module extracts that decision behind a
//! [`StealPolicy`] trait object stored in the simulation `World`, so new
//! victim-selection strategies plug in without touching engine internals.
//!
//! Determinism contract: `pick_victim` must be a deterministic function of
//! its arguments, the policy's own internal state, and the passed
//! `StreamRng` (the engine's dedicated steal stream `0x57EA1`). A policy
//! that needs no randomness must not touch the rng at all, and a policy
//! that does must draw only the values it consumes on every code path —
//! random draws are part of the byte-determinism budget, so conditional
//! draws must be conditioned on deterministic state only. The default
//! [`UniformRandom`] policy reproduces the engine's historical 8-try loop
//! draw-for-draw, which keeps every committed provenance artifact
//! byte-identical across the refactor.
//!
//! Crash/rejoin victim-set maintenance stays in one place: the engine calls
//! [`StealPolicy::on_crash`] / [`StealPolicy::on_join`] from its single
//! crash/join entry points, and policies that cache victim identities (see
//! [`RecentVictim`]) invalidate there rather than sprinkling liveness
//! checks through the engine.

use cashmere_des::rng::StreamRng;
use serde::{Content, DeError, Deserialize, Serialize};

/// Which steal-victim policy the engine runs. The serializable spec tag —
/// construct the live policy with [`build_steal_policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealKind {
    /// Satin's classic random victim: up to 8 uniform draws, first live
    /// non-self node wins. The historical engine behaviour.
    #[default]
    UniformRandom,
    /// Locality-aware: retry the last node that fed this thief before
    /// falling back to the random pick. A victim that just had surplus
    /// work often still does, and a repeated pair keeps transfers on one
    /// warmed-up link.
    RecentVictim,
    /// Deterministic round-robin scan from a per-thief cursor; consumes no
    /// randomness at all.
    RoundRobinScan,
}

// Hand-written so the JSON form is the stable kebab-case CLI name, with
// aliases accepted and normalized on load (mirrors `Policy` in cashmere).
impl Serialize for StealKind {
    fn to_content(&self) -> Content {
        Content::Str(self.name().to_string())
    }
}

impl Deserialize for StealKind {
    fn from_content(content: &Content) -> Result<StealKind, DeError> {
        match content.as_str() {
            Some(s) => StealKind::parse(s).ok_or_else(|| DeError::unknown_variant(s, "StealKind")),
            None => Err(DeError::expected("string", "StealKind", content)),
        }
    }
}

impl StealKind {
    pub const ALL: [StealKind; 3] = [
        StealKind::UniformRandom,
        StealKind::RecentVictim,
        StealKind::RoundRobinScan,
    ];

    /// Stable CLI/JSON name (`uniform-random`, `recent-victim`,
    /// `round-robin-scan`).
    pub fn name(self) -> &'static str {
        match self {
            StealKind::UniformRandom => "uniform-random",
            StealKind::RecentVictim => "recent-victim",
            StealKind::RoundRobinScan => "round-robin-scan",
        }
    }

    /// Parse a steal-policy name. Aliases are normalized: the parsed value
    /// round-trips through [`StealKind::name`] as the canonical spelling.
    pub fn parse(s: &str) -> Option<StealKind> {
        match s.to_ascii_lowercase().as_str() {
            "uniform-random" | "uniform" | "random" => Some(StealKind::UniformRandom),
            "recent-victim" | "recent" | "locality" => Some(StealKind::RecentVictim),
            "round-robin-scan" | "rr-scan" | "scan" => Some(StealKind::RoundRobinScan),
            _ => None,
        }
    }
}

/// Victim selection for one steal attempt, plus the outcome/membership
/// hooks a stateful policy needs. One instance serves the whole cluster
/// (per-thief state is keyed by the `thief` argument).
pub trait StealPolicy: Send {
    /// Which [`StealKind`] this instance implements.
    fn kind(&self) -> StealKind;

    /// Pick a live victim for `thief`, or `None` to give up this round
    /// (the engine then polls again with backoff). `alive(v)` reports
    /// liveness for `v < nodes`; the returned victim must be live and
    /// differ from `thief`.
    fn pick_victim(
        &mut self,
        thief: usize,
        nodes: usize,
        alive: &dyn Fn(usize) -> bool,
        rng: &mut StreamRng,
    ) -> Option<usize>;

    /// `thief` received a job from `victim`.
    fn on_steal_ok(&mut self, _thief: usize, _victim: usize) {}

    /// `victim` refused `thief` (nothing stealable there right now).
    fn on_steal_fail(&mut self, _thief: usize, _victim: usize) {}

    /// `node` crashed and left every victim set.
    fn on_crash(&mut self, _node: usize) {}

    /// `node` (re)joined and is a victim candidate again.
    fn on_join(&mut self, _node: usize) {}

    fn clone_box(&self) -> Box<dyn StealPolicy>;
}

impl Clone for Box<dyn StealPolicy> {
    fn clone(&self) -> Box<dyn StealPolicy> {
        self.clone_box()
    }
}

/// Construct the live policy for a spec tag.
pub fn build_steal_policy(kind: StealKind) -> Box<dyn StealPolicy> {
    match kind {
        StealKind::UniformRandom => Box::new(UniformRandom),
        StealKind::RecentVictim => Box::new(RecentVictim { last: Vec::new() }),
        StealKind::RoundRobinScan => Box::new(RoundRobinScan { cursor: Vec::new() }),
    }
}

/// The historical engine behaviour, preserved draw-for-draw: up to 8
/// uniform draws from the steal stream; the first live non-self node wins.
#[derive(Debug, Clone)]
struct UniformRandom;

impl StealPolicy for UniformRandom {
    fn kind(&self) -> StealKind {
        StealKind::UniformRandom
    }

    fn pick_victim(
        &mut self,
        thief: usize,
        nodes: usize,
        alive: &dyn Fn(usize) -> bool,
        rng: &mut StreamRng,
    ) -> Option<usize> {
        for _ in 0..8 {
            let v = rng.below(nodes);
            if v != thief && alive(v) {
                return Some(v);
            }
        }
        None
    }

    fn clone_box(&self) -> Box<dyn StealPolicy> {
        Box::new(self.clone())
    }
}

/// Retry the last successful victim first; fall back to the uniform pick.
/// The cache is invalidated on refusal and — via [`StealPolicy::on_crash`]
/// — when the cached node leaves the cluster, so a stale entry can never
/// point at a dead victim.
#[derive(Debug, Clone)]
struct RecentVictim {
    /// `last[thief]` = node that most recently fed this thief.
    last: Vec<Option<usize>>,
}

impl RecentVictim {
    fn slot(&mut self, thief: usize) -> &mut Option<usize> {
        if self.last.len() <= thief {
            self.last.resize(thief + 1, None);
        }
        &mut self.last[thief]
    }
}

impl StealPolicy for RecentVictim {
    fn kind(&self) -> StealKind {
        StealKind::RecentVictim
    }

    fn pick_victim(
        &mut self,
        thief: usize,
        nodes: usize,
        alive: &dyn Fn(usize) -> bool,
        rng: &mut StreamRng,
    ) -> Option<usize> {
        if let Some(v) = *self.slot(thief) {
            if v != thief && v < nodes && alive(v) {
                return Some(v);
            }
            // Defensive: on_crash should already have cleared this.
            *self.slot(thief) = None;
        }
        for _ in 0..8 {
            let v = rng.below(nodes);
            if v != thief && alive(v) {
                return Some(v);
            }
        }
        None
    }

    fn on_steal_ok(&mut self, thief: usize, victim: usize) {
        *self.slot(thief) = Some(victim);
    }

    fn on_steal_fail(&mut self, thief: usize, victim: usize) {
        let slot = self.slot(thief);
        if *slot == Some(victim) {
            *slot = None;
        }
    }

    fn on_crash(&mut self, node: usize) {
        for slot in &mut self.last {
            if *slot == Some(node) {
                *slot = None;
            }
        }
    }

    fn clone_box(&self) -> Box<dyn StealPolicy> {
        Box::new(self.clone())
    }
}

/// Scan `thief+cursor+1, thief+cursor+2, …` modulo the cluster size and
/// take the first live node. Spreads steal pressure evenly and consumes no
/// randomness; crash/join need no bookkeeping because the scan re-checks
/// liveness every attempt.
#[derive(Debug, Clone)]
struct RoundRobinScan {
    /// `cursor[thief]` = offset (from `thief`) after the last pick.
    cursor: Vec<usize>,
}

impl StealPolicy for RoundRobinScan {
    fn kind(&self) -> StealKind {
        StealKind::RoundRobinScan
    }

    fn pick_victim(
        &mut self,
        thief: usize,
        nodes: usize,
        alive: &dyn Fn(usize) -> bool,
        _rng: &mut StreamRng,
    ) -> Option<usize> {
        if self.cursor.len() <= thief {
            self.cursor.resize(thief + 1, 0);
        }
        let start = self.cursor[thief];
        for step in 1..nodes {
            let off = (start + step) % nodes;
            let v = (thief + off) % nodes;
            if v != thief && alive(v) {
                self.cursor[thief] = off;
                return Some(v);
            }
        }
        None
    }

    fn clone_box(&self) -> Box<dyn StealPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StreamRng {
        StreamRng::new(7, 0x57EA1)
    }

    #[test]
    fn kind_names_round_trip_and_aliases_normalize() {
        for k in StealKind::ALL {
            assert_eq!(StealKind::parse(k.name()), Some(k));
        }
        assert_eq!(StealKind::parse("random"), Some(StealKind::UniformRandom));
        assert_eq!(StealKind::parse("locality"), Some(StealKind::RecentVictim));
        assert_eq!(StealKind::parse("scan"), Some(StealKind::RoundRobinScan));
        assert_eq!(StealKind::parse("nope"), None);
        let json = serde_json::to_string(&StealKind::RecentVictim).unwrap();
        assert_eq!(json, "\"recent-victim\"");
        let back: StealKind = serde_json::from_str("\"rr-scan\"").unwrap();
        assert_eq!(back, StealKind::RoundRobinScan);
    }

    #[test]
    fn uniform_random_matches_the_historical_inline_loop() {
        // The extracted policy must replay the exact draw sequence of the
        // old inline code: same stream, same number of draws per attempt.
        let nodes = 4;
        let alive = |_: usize| true;
        let mut policy_rng = rng();
        let mut p = build_steal_policy(StealKind::UniformRandom);
        let picks: Vec<_> = (0..64)
            .map(|i| p.pick_victim(i % nodes, nodes, &alive, &mut policy_rng))
            .collect();
        let mut inline_rng = rng();
        let inline: Vec<_> = (0..64)
            .map(|i| {
                let thief = i % nodes;
                let mut victim = None;
                for _ in 0..8 {
                    let v = inline_rng.below(nodes);
                    if v != thief {
                        victim = Some(v);
                        break;
                    }
                }
                victim
            })
            .collect();
        assert_eq!(picks, inline);
    }

    #[test]
    fn uniform_random_skips_dead_nodes_and_can_give_up() {
        let alive = |v: usize| v == 0;
        let mut r = rng();
        let mut p = build_steal_policy(StealKind::UniformRandom);
        for _ in 0..32 {
            // Only node 0 is alive, so thief 1 can only ever get 0.
            assert!(matches!(
                p.pick_victim(1, 4, &alive, &mut r),
                Some(0) | None
            ));
            // Thief 0 has no live victim at all.
            assert_eq!(p.pick_victim(0, 4, &alive, &mut r), None);
        }
    }

    #[test]
    fn recent_victim_prefers_cache_and_invalidates_on_crash_and_refusal() {
        let alive = |_: usize| true;
        let mut p = build_steal_policy(StealKind::RecentVictim);
        p.on_steal_ok(0, 3);
        // Cached victim wins (and, as the rr check below shows for the
        // scan policy, without consuming randomness).
        let mut fresh = rng();
        assert_eq!(p.pick_victim(0, 4, &alive, &mut fresh), Some(3));
        assert_eq!(p.pick_victim(0, 4, &alive, &mut fresh), Some(3));
        // A refusal by the cached victim drops it.
        p.on_steal_fail(0, 3);
        let v = p.pick_victim(0, 4, &alive, &mut fresh);
        assert!(v.is_some());
        // Crash invalidation: cache 2 for two thieves, crash it, and the
        // next pick may be anything live except 2.
        p.on_steal_ok(0, 2);
        p.on_steal_ok(1, 2);
        p.on_crash(2);
        let alive2 = |v: usize| v != 2;
        for thief in [0usize, 1] {
            if let Some(v) = p.pick_victim(thief, 4, &alive2, &mut fresh) {
                assert_ne!(v, 2);
                assert_ne!(v, thief);
            }
        }
    }

    #[test]
    fn round_robin_scan_cycles_live_peers_without_randomness() {
        let alive = |_: usize| true;
        let mut r = rng();
        let mut p = build_steal_policy(StealKind::RoundRobinScan);
        let picks: Vec<_> = (0..6)
            .map(|_| p.pick_victim(0, 4, &alive, &mut r))
            .collect();
        assert_eq!(
            picks,
            vec![Some(1), Some(2), Some(3), Some(1), Some(2), Some(3)]
        );
        // Node 2 dies: the cycle closes over the survivors.
        p.on_crash(2);
        let alive2 = |v: usize| v != 2;
        let picks: Vec<_> = (0..4)
            .map(|_| p.pick_victim(0, 4, &alive2, &mut r))
            .collect();
        assert_eq!(picks, vec![Some(1), Some(3), Some(1), Some(3)]);
        // The untouched rng proves no randomness was consumed.
        let mut fresh = rng();
        assert_eq!(r.below(1 << 30), fresh.below(1 << 30));
    }
}
