//! Run statistics reported by the simulated cluster.

use cashmere_des::SimTime;
use serde::{Deserialize, Serialize};

/// Counters collected over one or more root runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Wall time of the most recent root run.
    pub makespan: SimTime,
    /// Virtual time at the end of the last run (accumulates across
    /// iterations).
    pub total_time: SimTime,
    pub jobs_created: u64,
    pub divides: u64,
    pub leaves: u64,
    pub steal_attempts: u64,
    pub steals_ok: u64,
    pub bytes_stolen: u64,
    pub bytes_results: u64,
    pub bytes_broadcast: u64,
    pub crashes: u64,
    pub jobs_restarted: u64,
    /// Accumulated compute-busy time per node.
    pub node_busy: Vec<SimTime>,
}

impl RunReport {
    pub fn new(nodes: usize) -> RunReport {
        RunReport {
            makespan: SimTime::ZERO,
            total_time: SimTime::ZERO,
            jobs_created: 0,
            divides: 0,
            leaves: 0,
            steal_attempts: 0,
            steals_ok: 0,
            bytes_stolen: 0,
            bytes_results: 0,
            bytes_broadcast: 0,
            crashes: 0,
            jobs_restarted: 0,
            node_busy: vec![SimTime::ZERO; nodes],
        }
    }

    /// Steal success rate.
    pub fn steal_success_rate(&self) -> f64 {
        if self.steal_attempts == 0 {
            0.0
        } else {
            self.steals_ok as f64 / self.steal_attempts as f64
        }
    }

    /// Total bytes that crossed the interconnect.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_stolen + self.bytes_results + self.bytes_broadcast
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_totals() {
        let mut r = RunReport::new(2);
        assert_eq!(r.steal_success_rate(), 0.0);
        r.steal_attempts = 10;
        r.steals_ok = 4;
        r.bytes_stolen = 100;
        r.bytes_results = 50;
        r.bytes_broadcast = 25;
        assert!((r.steal_success_rate() - 0.4).abs() < 1e-12);
        assert_eq!(r.bytes_total(), 175);
        assert_eq!(r.node_busy.len(), 2);
    }
}
