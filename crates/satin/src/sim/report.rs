//! Run statistics reported by the simulated cluster, plus the shared text
//! renderers for the report printouts (failure accounting, critical path).

use cashmere_des::obs::CriticalPath;
use cashmere_des::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Minimal aligned label/value table used by every textual report section
/// (failure summary, critical-path summary): labels padded to a common
/// width, one row per line, no trailing newline.
pub fn text_table(rows: &[(String, String)]) -> String {
    let w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (i, (label, value)) in rows.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let _ = write!(out, "{label:<w$}  {value}");
    }
    out
}

/// Render a critical-path analysis against the run's makespan: a per-kind
/// breakdown plus the one-line attribution ("62% kernel / 23% ...") the
/// paper-style result readout uses.
pub fn critical_path_summary(cp: &CriticalPath, makespan: SimTime) -> String {
    if cp.total == SimTime::ZERO {
        return "critical path: no spans recorded".to_string();
    }
    let coverage = if makespan == SimTime::ZERO {
        100.0
    } else {
        cp.total.as_nanos() as f64 / makespan.as_nanos() as f64 * 100.0
    };
    let mut rows = vec![(
        "critical path".to_string(),
        format!(
            "{} over {} segments ({coverage:.1}% of makespan {makespan})",
            cp.total,
            cp.segments.len()
        ),
    )];
    let attribution = cp.attribution();
    for (kind, time, pct) in &attribution {
        rows.push((format!("  {kind}"), format!("{time:>12} {pct:5.1}%")));
    }
    let one_liner = attribution
        .iter()
        .map(|(kind, _, pct)| format!("{pct:.0}% {kind}"))
        .collect::<Vec<_>>()
        .join(" / ");
    rows.push(("  =".to_string(), one_liner));
    text_table(&rows)
}

/// Counters collected over one or more root runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Wall time of the most recent root run.
    pub makespan: SimTime,
    /// Virtual time at the end of the last run (accumulates across
    /// iterations).
    pub total_time: SimTime,
    pub jobs_created: u64,
    pub divides: u64,
    pub leaves: u64,
    pub steal_attempts: u64,
    pub steals_ok: u64,
    pub bytes_stolen: u64,
    pub bytes_results: u64,
    pub bytes_broadcast: u64,
    pub crashes: u64,
    pub jobs_restarted: u64,
    /// Nodes that (re)joined the cluster mid-run.
    pub joins: u64,
    // --- kernel measurement path ---
    /// Sampled kernel measurements served from the launch memo table.
    pub kernel_memo_hits: u64,
    /// Sampled kernel measurements actually interpreted (then memoized).
    pub kernel_memo_misses: u64,
    // --- orphan-result reuse (graceful recovery) ---
    /// Completed subtree results salvaged into the global result table when
    /// their subtree was orphaned by a crash.
    pub orphans_harvested: u64,
    /// Salvaged results reused instead of re-executing their subtree.
    pub orphans_reused: u64,
    /// Salvaged results dropped because their holder crashed (or the run
    /// ended) before they could be reused.
    pub orphans_expired: u64,
    /// Bytes moved to fetch reused orphan results from their holders.
    pub bytes_orphans: u64,
    // --- failure accounting (fault-injection subsystem) ---
    /// Devices permanently lost to injected failures.
    pub devices_lost: u64,
    /// Transient kernel-launch faults the device runtime retried.
    pub launch_retries: u64,
    /// Device jobs aborted in flight by a device death.
    pub device_aborts: u64,
    /// Device jobs degraded to the CPU leaf because faults left no usable
    /// device (all devices dead, or the launch-retry budget exhausted).
    pub fault_cpu_fallbacks: u64,
    /// Messages dropped by injected link faults.
    pub messages_lost: u64,
    /// Latency spikes applied to delivered messages.
    pub latency_spikes: u64,
    /// Steal attempts abandoned by timeout (request or reply lost).
    pub steal_timeouts: u64,
    /// Retransmissions of result-return messages after a loss.
    pub result_retransmits: u64,
    /// Steal-loop polls that found no live victim (most of the cluster
    /// dead); these back off exponentially rather than busy-poll.
    pub no_victim_polls: u64,
    /// Virtual time spent redoing work: compute of re-executed subtrees
    /// plus device time lost in aborted jobs.
    pub recovery_time: SimTime,
    /// Wall (virtual) time during which at least one crash-restarted
    /// subtree was still outstanding: how long the run took to return to a
    /// fully recovered state.
    pub time_to_recover: SimTime,
    /// Accumulated compute-busy time per node.
    pub node_busy: Vec<SimTime>,
}

impl RunReport {
    pub fn new(nodes: usize) -> RunReport {
        RunReport {
            makespan: SimTime::ZERO,
            total_time: SimTime::ZERO,
            jobs_created: 0,
            divides: 0,
            leaves: 0,
            steal_attempts: 0,
            steals_ok: 0,
            bytes_stolen: 0,
            bytes_results: 0,
            bytes_broadcast: 0,
            crashes: 0,
            jobs_restarted: 0,
            joins: 0,
            kernel_memo_hits: 0,
            kernel_memo_misses: 0,
            orphans_harvested: 0,
            orphans_reused: 0,
            orphans_expired: 0,
            bytes_orphans: 0,
            devices_lost: 0,
            launch_retries: 0,
            device_aborts: 0,
            fault_cpu_fallbacks: 0,
            messages_lost: 0,
            latency_spikes: 0,
            steal_timeouts: 0,
            result_retransmits: 0,
            no_victim_polls: 0,
            recovery_time: SimTime::ZERO,
            time_to_recover: SimTime::ZERO,
            node_busy: vec![SimTime::ZERO; nodes],
        }
    }

    /// Did the run observe any injected failure at all?
    pub fn saw_failures(&self) -> bool {
        self.crashes > 0
            || self.joins > 0
            || self.devices_lost > 0
            || self.launch_retries > 0
            || self.messages_lost > 0
            || self.steal_timeouts > 0
    }

    /// Human-readable failure-accounting section (run-report printout).
    pub fn failure_summary(&self) -> String {
        text_table(&[
            (
                "failures".to_string(),
                format!(
                    "{} crashes, {} joins, {} devices lost, {} jobs re-executed",
                    self.crashes, self.joins, self.devices_lost, self.jobs_restarted
                ),
            ),
            (
                "orphan results".to_string(),
                format!(
                    "{} harvested, {} reused, {} expired",
                    self.orphans_harvested, self.orphans_reused, self.orphans_expired
                ),
            ),
            (
                "device path".to_string(),
                format!(
                    "{} launch retries, {} aborted jobs, {} CPU fallbacks",
                    self.launch_retries, self.device_aborts, self.fault_cpu_fallbacks
                ),
            ),
            (
                "network".to_string(),
                format!(
                    "{} messages lost, {} latency spikes, {} steal timeouts, {} retransmits",
                    self.messages_lost,
                    self.latency_spikes,
                    self.steal_timeouts,
                    self.result_retransmits
                ),
            ),
            (
                "recovery virtual-time cost".to_string(),
                format!(
                    "{} redone work, {} to recover",
                    self.recovery_time, self.time_to_recover
                ),
            ),
        ])
    }

    /// Steal success rate.
    pub fn steal_success_rate(&self) -> f64 {
        if self.steal_attempts == 0 {
            0.0
        } else {
            self.steals_ok as f64 / self.steal_attempts as f64
        }
    }

    /// Total bytes that crossed the interconnect.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_stolen + self.bytes_results + self.bytes_broadcast
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_totals() {
        let mut r = RunReport::new(2);
        assert_eq!(r.steal_success_rate(), 0.0);
        r.steal_attempts = 10;
        r.steals_ok = 4;
        r.bytes_stolen = 100;
        r.bytes_results = 50;
        r.bytes_broadcast = 25;
        assert!((r.steal_success_rate() - 0.4).abs() < 1e-12);
        assert_eq!(r.bytes_total(), 175);
        assert_eq!(r.node_busy.len(), 2);
    }

    #[test]
    fn failure_accounting_starts_clean() {
        let mut r = RunReport::new(1);
        assert!(!r.saw_failures());
        r.devices_lost = 1;
        r.launch_retries = 2;
        assert!(r.saw_failures());
        let s = r.failure_summary();
        assert!(s.contains("1 devices lost"), "{s}");
        assert!(s.contains("2 launch retries"), "{s}");
    }

    #[test]
    fn text_table_aligns_labels() {
        let s = text_table(&[
            ("a".to_string(), "1".to_string()),
            ("long label".to_string(), "2".to_string()),
        ]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        let col = lines[0].find('1').unwrap();
        assert_eq!(lines[1].find('2').unwrap(), col, "{s}");
        assert!(!s.ends_with('\n'));
    }

    #[test]
    fn critical_path_summary_reads_like_the_paper() {
        use cashmere_des::trace::{SpanKind, Trace};
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let l = tr.add_lane("l");
        tr.record(
            l,
            SpanKind::Kernel,
            "k",
            SimTime::ZERO,
            SimTime::from_micros(70),
        );
        tr.record(
            l,
            SpanKind::Network,
            "n",
            SimTime::from_micros(70),
            SimTime::from_micros(100),
        );
        let cp = CriticalPath::compute(&tr);
        let s = critical_path_summary(&cp, SimTime::from_micros(100));
        assert!(s.contains("critical path"), "{s}");
        assert!(s.contains("kernel"), "{s}");
        assert!(s.contains("70% kernel / 30% network"), "{s}");
        assert!(s.contains("100.0% of makespan"), "{s}");
    }

    #[test]
    fn empty_critical_path_summary() {
        let cp = CriticalPath::default();
        let s = critical_path_summary(&cp, SimTime::ZERO);
        assert!(s.contains("no spans"), "{s}");
    }
}
