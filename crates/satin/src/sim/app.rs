//! The divide-and-conquer application interface for the simulated cluster.
//!
//! An application is expressed exactly as in the paper's Fig. 1 skeleton:
//! a `step` decides whether a job is small enough for a leaf computation or
//! divides into child jobs; `combine` merges child results after the
//! `sync`. Inputs/outputs carry their serialized sizes so the engine can
//! charge the network for steals and result returns.
//!
//! Leaf execution is pluggable via [`LeafRuntime`]: plain Satin runs leaves
//! on one CPU core ([`CpuLeafRuntime`]); Cashmere (in the `cashmere` crate)
//! plans leaves onto the node's many-core devices and returns an
//! asynchronous completion time, which is how transfer/kernel overlap and
//! the device load balancer enter the simulation.

use crate::sim::report::RunReport;
use cashmere_des::fault::FaultInjector;
use cashmere_des::obs::MetricsRegistry;
use cashmere_des::trace::{LaneId, SpanId, Trace};
use cashmere_des::SimTime;

/// Outcome of inspecting a job: divide further or run a leaf.
#[derive(Debug, Clone)]
pub enum DcStep<I> {
    Divide(Vec<I>),
    Leaf,
}

/// A divide-and-conquer application.
pub trait ClusterApp: 'static {
    type Input: Clone + 'static;
    type Output: Clone + 'static;

    /// Decide whether `input` divides (into child inputs) or is a leaf.
    fn step(&self, input: &Self::Input) -> DcStep<Self::Input>;

    /// Cheap classification used by the node scheduler to limit concurrent
    /// leaf executions. Must agree with [`ClusterApp::step`].
    fn is_leaf(&self, input: &Self::Input) -> bool {
        matches!(self.step(input), DcStep::Leaf)
    }

    /// Combine child outputs (in child order) into this job's output.
    fn combine(&self, input: &Self::Input, children: Vec<Self::Output>) -> Self::Output;

    /// Serialized size of a job input (charged when the job is stolen).
    fn input_bytes(&self, input: &Self::Input) -> u64;

    /// Serialized size of a job output (charged when returned to the
    /// parent's node).
    fn output_bytes(&self, output: &Self::Output) -> u64;

    /// CPU time to divide a job (spawning is cheap but not free).
    fn divide_cost(&self, _input: &Self::Input) -> SimTime {
        SimTime::from_micros(5)
    }

    /// CPU time to combine child outputs.
    fn combine_cost(&self, _input: &Self::Input) -> SimTime {
        SimTime::from_micros(5)
    }
}

/// How a leaf executes, as planned by a [`LeafRuntime`].
#[derive(Debug, Clone)]
pub enum LeafPlan<O> {
    /// Occupies one CPU core for `compute`, then completes.
    Cpu { compute: SimTime, output: O },
    /// Occupies one CPU core for `submit` (management thread), then
    /// completes asynchronously at absolute time `done` (device path).
    Async {
        submit: SimTime,
        done: SimTime,
        output: O,
    },
}

/// Everything the engine hands a [`LeafRuntime`] for one leaf plan: where
/// and when the leaf starts, tracing hooks, the fault injector the runtime
/// must consult (device deaths, transient launch faults), and the run
/// report it accounts failures to.
pub struct LeafCtx<'a> {
    /// Node the leaf executes on.
    pub node: usize,
    /// Virtual time at which planning starts.
    pub now: SimTime,
    pub trace: &'a mut Trace,
    /// Metrics registry (latency histograms, device queue gauges).
    pub metrics: &'a mut MetricsRegistry,
    /// The node's CPU trace lane.
    pub cpu_lane: LaneId,
    /// The node-level leaf span; device spans recorded by the runtime
    /// should parent to it ([`SpanId::NONE`] when tracing is off).
    pub parent_span: SpanId,
    /// Injected-fault decisions (deterministic; inactive when the plan is
    /// empty).
    pub faults: &'a mut FaultInjector,
    /// Failure accounting (device losses, retries, fallbacks).
    pub report: &'a mut RunReport,
}

/// Pluggable leaf executor.
pub trait LeafRuntime<A: ClusterApp>: 'static {
    /// Plan the execution of leaf `input` in context `ctx`. `app` gives
    /// access to application callbacks (device-level division, kernel
    /// descriptions).
    fn plan(&mut self, app: &A, input: &A::Input, ctx: LeafCtx<'_>) -> LeafPlan<A::Output>;

    /// Node `node` crashed at `at`: discard any per-node runtime state
    /// (device timelines, pending work, resident buffers). Default: no-op,
    /// correct for stateless CPU leaf runtimes.
    fn on_node_crash(&mut self, _node: usize, _at: SimTime) {}

    /// Node `node` (re)joined at `at`: bring its per-node runtime state
    /// back up (re-register devices, rebuild the balancer). Default: no-op.
    fn on_node_join(&mut self, _node: usize, _at: SimTime) {}

    /// Flight-recorder hook: append runtime-specific `(column, value)`
    /// gauges to one probe sample (e.g. Cashmere's cumulative placement
    /// mix per device class). Must be read-only — no randomness, no state
    /// mutation — and emit the same columns every call so the series stays
    /// rectangular. Default: no extra columns, correct for plain CPU leaf
    /// runtimes.
    fn probe(&self, _out: &mut Vec<(String, f64)>) {}
}

/// Plain Satin: every leaf is a single-threaded CPU computation.
///
/// The wrapped closure maps `(node, input, now)` to `(cpu_time, output)` —
/// applications provide real computation plus a modelled duration.
pub struct CpuLeafRuntime<F>(pub F);

impl<A, F> LeafRuntime<A> for CpuLeafRuntime<F>
where
    A: ClusterApp,
    F: FnMut(usize, &A::Input, SimTime) -> (SimTime, A::Output) + 'static,
{
    fn plan(&mut self, _app: &A, input: &A::Input, ctx: LeafCtx<'_>) -> LeafPlan<A::Output> {
        let (compute, output) = (self.0)(ctx.node, input, ctx.now);
        LeafPlan::Cpu { compute, output }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Summing a range by divide-and-conquer — the test app used across the
    /// engine's test suite.
    pub struct SumApp {
        pub grain: u64,
    }

    impl ClusterApp for SumApp {
        type Input = (u64, u64);
        type Output = u64;

        fn step(&self, &(lo, hi): &(u64, u64)) -> DcStep<(u64, u64)> {
            if hi - lo <= self.grain {
                DcStep::Leaf
            } else {
                let mid = lo + (hi - lo) / 2;
                DcStep::Divide(vec![(lo, mid), (mid, hi)])
            }
        }

        fn combine(&self, _i: &(u64, u64), children: Vec<u64>) -> u64 {
            children.into_iter().sum()
        }

        fn input_bytes(&self, _i: &(u64, u64)) -> u64 {
            16
        }

        fn output_bytes(&self, _o: &u64) -> u64 {
            8
        }
    }

    #[test]
    fn sum_app_divides_and_combines() {
        let app = SumApp { grain: 10 };
        match app.step(&(0, 100)) {
            DcStep::Divide(ch) => assert_eq!(ch, vec![(0, 50), (50, 100)]),
            DcStep::Leaf => panic!("should divide"),
        }
        assert!(matches!(app.step(&(0, 10)), DcStep::Leaf));
        assert_eq!(app.combine(&(0, 100), vec![3, 4]), 7);
    }

    #[test]
    fn cpu_leaf_runtime_wraps_closure() {
        let mut rt = CpuLeafRuntime(|_n: usize, &(lo, hi): &(u64, u64), _now: SimTime| {
            (SimTime::from_micros(hi - lo), (lo..hi).sum::<u64>())
        });
        let mut trace = Trace::new();
        let mut metrics = MetricsRegistry::new();
        let lane = trace.add_lane("cpu");
        let mut faults = FaultInjector::disabled(0);
        let mut report = RunReport::new(1);
        let app = SumApp { grain: 10 };
        let plan = <CpuLeafRuntime<_> as LeafRuntime<SumApp>>::plan(
            &mut rt,
            &app,
            &(0, 4),
            LeafCtx {
                node: 0,
                now: SimTime::ZERO,
                trace: &mut trace,
                metrics: &mut metrics,
                cpu_lane: lane,
                parent_span: SpanId::NONE,
                faults: &mut faults,
                report: &mut report,
            },
        );
        match plan {
            LeafPlan::Cpu { compute, output } => {
                assert_eq!(compute, SimTime::from_micros(4));
                assert_eq!(output, 6);
            }
            LeafPlan::Async { .. } => panic!("cpu runtime must be sync"),
        }
    }
}
